//! End-to-end pipeline test: dataset generation → (optional) probability
//! learning → MRR sampling → optimization → forward-simulation validation.
//!
//! This is the "would a downstream user get sane answers" test: every
//! crate participates, and the final check is against the generative
//! model itself, not against another estimator.

use oipa::core::{BabConfig, BranchAndBound, OipaInstance};
use oipa::datasets::actionlog::{simulate_logs, LogParams};
use oipa::datasets::{lastfm_like, tweet_like, Scale};
use oipa::sampler::{simulate, MrrPool};
use oipa::topics::tic::{learn_edge_probs, TicParams};
use oipa::topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn solve_then_validate_by_forward_simulation() {
    let dataset = lastfm_like(Scale::Tiny, 31);
    let mut rng = StdRng::seed_from_u64(31);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
    let model = LogisticAdoption::from_ratio(0.5);
    let pool = MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 60_000, 31, 2);
    let promoters = OipaInstance::sample_promoters(&mut rng, dataset.graph.node_count(), 0.2);
    let instance = OipaInstance::new(&pool, model, promoters, 6).unwrap();
    let sol = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(8),
            ..BabConfig::bab_p(0.5)
        },
    )
    .solve();
    assert!(sol.plan.size() <= 6);
    assert!(sol.utility > 0.0);

    let simulated = simulate::simulate_adoption(
        &mut StdRng::seed_from_u64(32),
        &dataset.graph,
        &dataset.table,
        &campaign,
        &sol.plan.to_vecs(),
        model,
        2500,
    );
    let rel = (sol.utility - simulated).abs() / simulated.max(0.5);
    assert!(
        rel < 0.15,
        "estimated {} vs simulated {} (rel {rel})",
        sol.utility,
        simulated
    );
}

#[test]
fn learned_probabilities_are_solvable() {
    // lastfm preparation path: plant → log → learn → optimize on the
    // *learned* table. The solver must return a valid plan whose utility
    // under the learned model is positive and budget-feasible.
    let dataset = lastfm_like(Scale::Tiny, 77);
    let mut rng = StdRng::seed_from_u64(77);
    let logs = simulate_logs(
        &mut rng,
        &dataset.graph,
        &dataset.table,
        LogParams {
            cascades: 400,
            seeds_per_cascade: 3,
            one_hot_fraction: 0.8,
        },
    );
    let learned =
        learn_edge_probs(&dataset.graph, dataset.topics, &logs, TicParams::default()).unwrap();
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 2);
    let pool = MrrPool::generate(&dataset.graph, &learned, &campaign, 30_000, 78);
    let promoters = OipaInstance::sample_promoters(&mut rng, dataset.graph.node_count(), 0.3);
    let instance =
        OipaInstance::new(&pool, LogisticAdoption::from_ratio(0.5), promoters, 4).unwrap();
    let sol = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(6),
            ..BabConfig::bab()
        },
    )
    .solve();
    assert!(sol.plan.size() <= 4);
    assert!(sol.utility >= 0.0);
    assert!(sol.upper_bound + 1e-9 >= sol.utility);
}

#[test]
fn sparse_tweet_instance_runs_whole_stack() {
    let dataset = tweet_like(Scale::Tiny, 13);
    let mut rng = StdRng::seed_from_u64(13);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 5);
    let model = LogisticAdoption::from_ratio(0.3);
    let pool = MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 30_000, 13, 2);
    let promoters = OipaInstance::sample_promoters(&mut rng, dataset.graph.node_count(), 0.1);
    let instance = OipaInstance::new(&pool, model, promoters, 8).unwrap();
    for config in [BabConfig::bab(), BabConfig::bab_p(0.5)] {
        let sol = BranchAndBound::new(
            &instance,
            BabConfig {
                max_nodes: Some(6),
                ..config
            },
        )
        .solve();
        assert!(sol.plan.size() <= 8);
        assert!(sol.utility.is_finite() && sol.utility >= 0.0);
    }
}

#[test]
fn estimator_unbiasedness_band_on_dataset() {
    // Lemma 2 in practice: the MRR estimate of a fixed plan sits inside a
    // loose Monte-Carlo band of the true utility.
    let dataset = lastfm_like(Scale::Tiny, 55);
    let mut rng = StdRng::seed_from_u64(55);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
    let model = LogisticAdoption::from_ratio(0.7);
    let pool = MrrPool::generate(&dataset.graph, &dataset.table, &campaign, 80_000, 56);
    let mut est = oipa::core::AuEstimator::new(&pool, model);
    let plan = oipa::core::AssignmentPlan::from_sets(vec![vec![0, 5], vec![9], vec![17, 23]]);
    let est_sigma = est.evaluate(&plan);
    let truth = simulate::simulate_adoption(
        &mut StdRng::seed_from_u64(57),
        &dataset.graph,
        &dataset.table,
        &campaign,
        &plan.to_vecs(),
        model,
        3000,
    );
    let rel = (est_sigma - truth).abs() / truth.max(0.5);
    assert!(rel < 0.15, "est {est_sigma} vs truth {truth} (rel {rel})");
}
