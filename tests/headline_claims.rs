//! Qualitative reproduction of the paper's headline claims (§I, §VI) at
//! CI scale:
//!
//! * BAB and BAB-P beat the IM and TIM baselines on adoption utility,
//!   with large margins in the regimes the paper highlights (sparse topic
//!   support, hard adoption);
//! * BAB-P needs far fewer τ evaluations than BAB (the source of the
//!   paper's up-to-24× speedup);
//! * utility grows with k, with ℓ, and with β/α (the monotone trends of
//!   Figures 4–6).

use oipa::baselines::{im_baseline, paper::collapsed_pool, tim_baseline};
use oipa::core::{AuEstimator, BabConfig, BranchAndBound, OipaInstance};
use oipa::datasets::{tweet_like, Scale};
use oipa::sampler::MrrPool;
use oipa::topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Bench {
    pool: MrrPool,
    flat: oipa::sampler::RrPool,
    promoters: Vec<u32>,
    model: LogisticAdoption,
}

fn tweet_bench(ell: usize, ratio: f64, theta: usize) -> Bench {
    let dataset = tweet_like(Scale::Tiny, 404);
    let mut rng = StdRng::seed_from_u64(404);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, ell);
    let pool = MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, theta, 404, 2);
    let flat = collapsed_pool(&dataset.graph, &dataset.table, theta, 404);
    let promoters = OipaInstance::sample_promoters(&mut rng, dataset.graph.node_count(), 0.1);
    Bench {
        pool,
        flat,
        promoters,
        model: LogisticAdoption::from_ratio(ratio),
    }
}

fn run_methods(b: &Bench, k: usize) -> (f64, f64, f64, f64, u64, u64) {
    let mut est = AuEstimator::new(&b.pool, b.model);
    let im = im_baseline(&b.flat, &b.pool, &mut est, &b.promoters, k);
    let tim = tim_baseline(&b.pool, &mut est, &b.promoters, k);
    let instance = OipaInstance::new(&b.pool, b.model, b.promoters.clone(), k).unwrap();
    let bab = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(8),
            ..BabConfig::bab()
        },
    )
    .solve();
    let bab_p = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(8),
            ..BabConfig::bab_p(0.5)
        },
    )
    .solve();
    (
        im.utility,
        tim.utility,
        bab.utility,
        bab_p.utility,
        bab.stats.tau_evaluations,
        bab_p.stats.tau_evaluations,
    )
}

/// The §VI-D regime: many pieces, sparse topics, hard adoption. The paper
/// reports ≥ 215% improvement over baselines; we require a clear win.
#[test]
fn proposed_methods_beat_baselines_decisively() {
    let bench = tweet_bench(5, 0.3, 25_000);
    let (im, tim, bab, bab_p, _, _) = run_methods(&bench, 10);
    assert!(
        bab >= 1.5 * im.max(0.01),
        "BAB {bab} should beat IM {im} by a wide margin"
    );
    assert!(bab + 1e-9 >= tim, "BAB {bab} should not lose to TIM {tim}");
    assert!(
        bab_p >= 0.85 * bab,
        "BAB-P {bab_p} should be competitive with BAB {bab}"
    );
}

/// The efficiency claim behind the 24× speedup: the progressive bound
/// slashes τ evaluations relative to the paper's plain greedy rescan
/// (Algorithm 2 as printed — our default BAB already folds in CELF, which
/// removes most of the same waste, so the honest comparison is against
/// the plain variant the paper describes).
#[test]
fn progressive_cuts_tau_evaluations() {
    let bench = tweet_bench(3, 0.5, 25_000);
    let k = 10;
    let instance = OipaInstance::new(&bench.pool, bench.model, bench.promoters.clone(), k).unwrap();
    let plain = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(8),
            method: oipa::core::BoundMethod::PlainGreedy,
            ..BabConfig::bab()
        },
    )
    .solve();
    let prog = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(8),
            ..BabConfig::bab_p(0.5)
        },
    )
    .solve();
    assert!(
        prog.stats.tau_evaluations * 2 <= plain.stats.tau_evaluations,
        "expected ≥2× fewer evaluations: plain {} vs progressive {}",
        plain.stats.tau_evaluations,
        prog.stats.tau_evaluations
    );
    // And the quality stays competitive while doing far less work.
    assert!(prog.utility >= 0.8 * plain.utility);
}

/// Figure-4 trend: utility grows with k.
#[test]
fn utility_monotone_in_k() {
    let bench = tweet_bench(3, 0.5, 20_000);
    let mut prev = 0.0;
    for k in [4usize, 8, 16] {
        let (_, _, bab, _, _, _) = run_methods(&bench, k);
        assert!(
            bab + 0.05 >= prev,
            "utility dropped from {prev} to {bab} at k={k}"
        );
        prev = bab;
    }
}

/// Figure-6 trend: utility grows with β/α (easier adoption).
#[test]
fn utility_monotone_in_beta_over_alpha() {
    let mut prev = 0.0;
    for ratio in [0.3, 0.5, 0.7] {
        let bench = tweet_bench(3, ratio, 20_000);
        let (_, _, bab, _, _, _) = run_methods(&bench, 8);
        assert!(
            bab + 0.05 >= prev,
            "utility dropped from {prev} to {bab} at β/α={ratio}"
        );
        prev = bab;
    }
}
