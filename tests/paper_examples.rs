//! Integration tests reproducing the paper's worked examples through the
//! umbrella crate's public API: Example 1 (σ = 1.05), Example 2
//! (non-submodularity), Example 3 / Table II (the MRR estimator), and the
//! §IV-B reduction behaviour.

use oipa::core::{AssignmentPlan, AuEstimator, BabConfig, BranchAndBound, OipaInstance};
use oipa::sampler::testkit::fig1;
use oipa::sampler::MrrPool;
use oipa::topics::LogisticAdoption;

/// Example 1: the optimal plan {{a}, {e}} has utility 1.05 (α=3, β=1).
#[test]
fn example1_sigma_and_optimal_plan() {
    let (g, table, campaign) = fig1();
    let pool = MrrPool::generate(&g, &table, &campaign, 150_000, 2024);
    let model = LogisticAdoption::example();
    let mut est = AuEstimator::new(&pool, model);
    let plan = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
    let sigma = est.evaluate(&plan);
    // Exact value: 2·σ(1) + 3·σ(2) = 2·0.1192 + 3·0.2689 = 1.0452 ≈ 1.05.
    assert!((sigma - 1.045).abs() < 0.02, "σ̂ = {sigma}");

    // And branch-and-bound finds exactly that plan at k = 2.
    let instance = OipaInstance::new(&pool, model, (0..5).collect(), 2).unwrap();
    let sol = BranchAndBound::new(
        &instance,
        BabConfig {
            gap: 0.0,
            ..BabConfig::bab()
        },
    )
    .solve();
    assert_eq!(sol.plan, plan);
}

/// Example 2: σ is not submodular — δ_{S̄y}(S̄) = 0.57 > δ_{S̄x}(S̄) = 0.48
/// although S̄x ⊆ S̄y.
#[test]
fn example2_non_submodularity_witness() {
    let (g, table, campaign) = fig1();
    let pool = MrrPool::generate(&g, &table, &campaign, 150_000, 7);
    let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
    let x = AssignmentPlan::empty(2);
    let y = AssignmentPlan::from_sets(vec![vec![0], vec![]]);
    let s = AssignmentPlan::from_sets(vec![vec![], vec![4]]);
    let delta_y = est.evaluate(&y.union(&s)) - est.evaluate(&y);
    let delta_x = est.evaluate(&x.union(&s)) - est.evaluate(&x);
    assert!(
        (delta_y - 0.57).abs() < 0.03,
        "δ_y = {delta_y} (paper: 0.57)"
    );
    assert!(
        (delta_x - 0.48).abs() < 0.03,
        "δ_x = {delta_x} (paper: 0.48)"
    );
    assert!(delta_y > delta_x, "submodularity would demand δ_y ≤ δ_x");
}

/// Example 3 / Table II: the MRR estimator is the root-weighted average of
/// per-root adoption probabilities. On the deterministic Fig. 1 graph the
/// per-root values under {{a},{e}} are p(a)=p(e)=0.1192 and
/// p(b)=p(c)=p(d)=0.2689; Table II's four-sample draw (c, a, b, c) gives
/// 5/4 · (0.27 + 0.12 + 0.27 + 0.27) = 1.16.
#[test]
fn example3_mrr_estimator_decomposes_by_root() {
    let (g, table, campaign) = fig1();
    let model = LogisticAdoption::example();
    let pool = MrrPool::generate(&g, &table, &campaign, 50_000, 99);
    let mut est = AuEstimator::new(&pool, model);
    let plan = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
    let sigma = est.evaluate(&plan);

    // Closed form from the actual root histogram.
    let p_root = [
        model.adoption_prob(1), // a: receives t1 only
        model.adoption_prob(2), // b
        model.adoption_prob(2), // c
        model.adoption_prob(2), // d
        model.adoption_prob(1), // e: receives t2 only
    ];
    let mut counts = [0usize; 5];
    for &r in pool.roots() {
        counts[r as usize] += 1;
    }
    let expected: f64 = counts
        .iter()
        .zip(&p_root)
        .map(|(&c, &p)| c as f64 * p)
        .sum::<f64>()
        * pool.scale();
    assert!(
        (sigma - expected).abs() < 1e-9,
        "estimator {sigma} vs closed form {expected}"
    );

    // Table II's literal arithmetic.
    let table2: f64 = 5.0 / 4.0 * (0.27 + 0.12 + 0.27 + 0.27);
    assert!((table2 - 1.1625).abs() < 1e-9);
}

/// §IV reduction sanity via the gadget crate: solving the OIPA instance
/// built from a known Max-Clique input recovers a clique-consistent plan.
#[test]
fn hardness_gadget_solved_by_bab() {
    // Triangle {0,1,2} plus pendant 3.
    let gadget = oipa::datasets::hardness::build_gadget(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
    let pool = MrrPool::generate(&gadget.graph, &gadget.table, &gadget.campaign, 40_000, 5);
    let instance =
        OipaInstance::new(&pool, gadget.model, gadget.promoters.clone(), gadget.budget).unwrap();
    let sol = BranchAndBound::new(
        &instance,
        BabConfig {
            gap: 0.0,
            ..BabConfig::bab()
        },
    )
    .solve();
    // Each piece must be assigned (all n pieces needed for any utility).
    for j in 0..4 {
        assert!(
            !sol.plan.set(j).is_empty(),
            "piece {j} unassigned: {}",
            sol.plan
        );
    }
    // Utility ≈ (number of full receivers)/2 + tiny terms; the triangle
    // allows 3 full receivers ⇒ ≈ 1.5. Any non-clique-aware plan gets < 1.
    assert!(
        sol.utility > 1.0,
        "BAB should exploit the clique: utility {}",
        sol.utility
    );
}
