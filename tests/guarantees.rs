//! Property-based guarantees over random instances (proptest).
//!
//! Each property targets a theorem or invariant of the paper:
//! monotonicity of σ (§IV-A), dominance + submodularity of τ
//! (Definition 6), the branch-and-bound guarantee vs enumeration
//! (Theorem 2), and determinism/consistency invariants of the sampling
//! substrate.

use oipa::core::brute::brute_force_best;
use oipa::core::greedy::{compute_bound_celf, compute_bound_plain};
use oipa::core::tau::TauState;
use oipa::core::{
    AssignmentPlan, AuEstimator, BabConfig, BranchAndBound, OipaInstance, TangentTable,
};
use oipa::sampler::testkit::small_random_instance;
use oipa::sampler::MrrPool;
use oipa::topics::LogisticAdoption;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small random instance keyed by a proptest-drawn seed.
fn instance(seed: u64, ell: usize) -> (MrrPool, LogisticAdoption) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, table, campaign) = small_random_instance(&mut rng, 30, 140, 4, ell);
    let model = LogisticAdoption::new(2.0, 1.0);
    let pool = MrrPool::generate(&g, &table, &campaign, 8_000, seed ^ 0xbeef);
    (pool, model)
}

/// Random plan over `n` nodes with ≤ `max_size` assignments.
fn plan_strategy(ell: usize, n: u32, max_size: usize) -> impl Strategy<Value = AssignmentPlan> {
    proptest::collection::vec((0..ell, 0..n), 0..=max_size).prop_map(move |pairs| {
        let mut plan = AssignmentPlan::empty(ell);
        for (j, v) in pairs {
            plan.insert(j, v);
        }
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// σ is monotone under plan containment (§IV-A).
    #[test]
    fn sigma_monotone_under_union(seed in 0u64..500, extra in plan_strategy(2, 30, 3)) {
        let (pool, model) = instance(seed, 2);
        let mut est = AuEstimator::new(&pool, model);
        let base = AssignmentPlan::from_sets(vec![vec![seed as u32 % 30], vec![]]);
        let bigger = base.union(&extra);
        prop_assert!(base.contained_in(&bigger));
        prop_assert!(est.evaluate(&base) <= est.evaluate(&bigger) + 1e-9);
    }

    /// τ dominates σ on every reachable plan and its gains shrink as the
    /// plan grows (Definition 6: monotone submodular majorant).
    #[test]
    fn tau_dominates_and_is_submodular(seed in 0u64..500, plan in plan_strategy(2, 30, 4)) {
        let (pool, model) = instance(seed, 2);
        let table = TangentTable::new(model, 2);
        let mut state = TauState::new(&pool, &table, model);
        state.reset_to(&AssignmentPlan::empty(2));
        let probe = (1usize, (seed % 30) as u32);
        let mut last_gain = f64::INFINITY;
        for (j, v) in plan.assignments() {
            let g = state.gain(probe.0, probe.1);
            prop_assert!(g <= last_gain + 1e-9, "probe gain grew: {last_gain} -> {g}");
            last_gain = g;
            state.add(j, v);
            prop_assert!(state.tau_total() + 1e-9 >= state.sigma_total());
        }
    }

    /// CELF and plain greedy are one algorithm (lazy evaluation is exact
    /// for submodular gains).
    #[test]
    fn celf_equals_plain_greedy(seed in 0u64..500) {
        let (pool, model) = instance(seed, 2);
        let table = TangentTable::new(model, 2);
        let promoters: Vec<u32> = (0..12).collect();
        let empty = AssignmentPlan::empty(2);
        let mut s1 = TauState::new(&pool, &table, model);
        s1.reset_to(&empty);
        let a = compute_bound_celf(&mut s1, &empty, &promoters, &Default::default(), 4);
        let mut s2 = TauState::new(&pool, &table, model);
        s2.reset_to(&empty);
        let b = compute_bound_plain(&mut s2, &empty, &promoters, &Default::default(), 4);
        prop_assert_eq!(a.plan, b.plan);
        prop_assert!((a.tau - b.tau).abs() < 1e-9);
    }

    /// Theorem 2 empirically: BAB ≥ (1 − 1/e) · OPT(enumeration) on
    /// instances small enough to enumerate.
    #[test]
    fn bab_guarantee_vs_enumeration(seed in 0u64..200) {
        let (pool, model) = instance(seed, 2);
        let promoters: Vec<u32> = vec![0, 3, 7, 11, 19, 23];
        let mut est = AuEstimator::new(&pool, model);
        let (_, opt) = brute_force_best(&mut est, &promoters, 2, 2);
        let inst = OipaInstance::new(&pool, model, promoters, 2).unwrap();
        let sol = BranchAndBound::new(&inst, BabConfig { gap: 0.0, ..BabConfig::bab() }).solve();
        let ratio = 1.0 - std::f64::consts::E.recip();
        prop_assert!(
            sol.utility + 1e-6 >= ratio * opt,
            "BAB {} < (1-1/e)·{}", sol.utility, opt
        );
        // In practice BAB with exact gap should match the enumerated
        // optimum on these tiny instances almost always; allow tiny slack.
        prop_assert!(sol.utility <= opt + 1e-6);
    }

    /// Theorem 3 empirically for BAB-P at ε = 0.5.
    #[test]
    fn bab_p_guarantee_vs_enumeration(seed in 0u64..200) {
        let (pool, model) = instance(seed, 2);
        let promoters: Vec<u32> = vec![1, 4, 9, 14, 21, 27];
        let mut est = AuEstimator::new(&pool, model);
        let (_, opt) = brute_force_best(&mut est, &promoters, 2, 2);
        let inst = OipaInstance::new(&pool, model, promoters, 2).unwrap();
        let sol =
            BranchAndBound::new(&inst, BabConfig { gap: 0.0, ..BabConfig::bab_p(0.5) }).solve();
        let ratio = 1.0 - std::f64::consts::E.recip() - 0.5;
        prop_assert!(
            sol.utility + 1e-6 >= ratio * opt,
            "BAB-P {} < (1-1/e-ε)·{}", sol.utility, opt
        );
    }

    /// Estimator evaluations are pure: same plan, same answer, regardless
    /// of interleaved queries.
    #[test]
    fn estimator_is_pure(seed in 0u64..500,
                         a in plan_strategy(2, 30, 3),
                         b in plan_strategy(2, 30, 3)) {
        let (pool, model) = instance(seed, 2);
        let mut est = AuEstimator::new(&pool, model);
        let first = est.evaluate(&a);
        let _ = est.evaluate(&b);
        prop_assert_eq!(first, est.evaluate(&a));
    }
}
