//! Dataset-preparation pipeline: how the paper's inputs are made.
//!
//! The OIPA algorithms consume a graph plus topic-wise edge probabilities
//! `p(e|z)`. The paper builds those three different ways; this example
//! walks all three end to end:
//!
//! 1. **lastfm path** — learn `p(e|z)` from an action log with TIC EM
//!    (we simulate the log against a planted ground truth first);
//! 2. **tweet path** — run LDA over users' hashtag documents to get
//!    interest profiles, then derive edge probabilities from shared
//!    interests;
//! 3. **dblp path** — direct synthesis from block-structured profiles
//!    (research fields as topics).
//!
//! Each path finishes by solving a small OIPA instance on the produced
//! table, proving the artifacts are consumable.
//!
//! ```text
//! cargo run --release --example dataset_pipeline
//! ```

use oipa::core::{BabConfig, BranchAndBound, OipaInstance};
use oipa::datasets::actionlog::{simulate_logs, LogParams};
use oipa::datasets::{lastfm_like, Scale};
use oipa::sampler::MrrPool;
use oipa::topics::lda::{LdaModel, LdaParams};
use oipa::topics::tic::{learn_edge_probs, TicParams};
use oipa::topics::{from_user_profiles, Campaign, EdgeTopicProbs, LogisticAdoption};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn solve_small(graph: &oipa::graph::DiGraph, table: &EdgeTopicProbs, label: &str, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topics = table.topic_count();
    let campaign = Campaign::sample_one_hot(&mut rng, topics, 2);
    let pool = MrrPool::generate(graph, table, &campaign, 20_000, seed);
    let promoters = OipaInstance::sample_promoters(&mut rng, graph.node_count(), 0.2);
    let instance =
        OipaInstance::new(&pool, LogisticAdoption::from_ratio(0.5), promoters, 4).unwrap();
    let sol = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(8),
            ..BabConfig::bab_p(0.5)
        },
    )
    .solve();
    println!(
        "  [{label}] OIPA on the produced table: utility {:.2}, plan {}",
        sol.utility, sol.plan
    );
}

fn main() {
    let seed = 99;

    // ---------------------------------------------------------------
    // Path 1: lastfm — TIC learning from (simulated) action logs.
    // ---------------------------------------------------------------
    println!("== lastfm path: action log -> TIC EM -> p(e|z) ==");
    let planted = lastfm_like(Scale::Tiny, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let logs = simulate_logs(
        &mut rng,
        &planted.graph,
        &planted.table,
        LogParams {
            cascades: 600,
            seeds_per_cascade: 3,
            one_hot_fraction: 0.8,
        },
    );
    let total_activations: usize = logs.iter().map(|c| c.activations.len()).sum();
    println!(
        "  simulated {} cascades, {} activations",
        logs.len(),
        total_activations
    );
    let learned = learn_edge_probs(&planted.graph, planted.topics, &logs, TicParams::default())
        .expect("dimensions match");
    println!(
        "  learned table: {} non-zero entries over {} edges (mean p = {:.3})",
        learned.nnz(),
        learned.edge_count(),
        learned.mean_nonzero_prob()
    );
    solve_small(&planted.graph, &learned, "lastfm/learned", seed);

    // ---------------------------------------------------------------
    // Path 2: tweet — LDA over hashtag documents -> user profiles.
    // ---------------------------------------------------------------
    println!("\n== tweet path: hashtag docs -> LDA -> profiles -> p(e|z) ==");
    let graph =
        oipa::graph::generators::power_law_configuration(&mut rng, 300, 2.3, 1.0, Some(600), None);
    // Synthetic hashtag documents: two latent communities with distinct
    // vocabularies plus noise.
    let vocab = 40u32;
    let docs: Vec<Vec<u32>> = (0..graph.node_count())
        .map(|u| {
            let community = u % 2 == 0;
            (0..30)
                .map(|_| {
                    if rng.gen_bool(0.85) {
                        if community {
                            rng.gen_range(0..vocab / 2)
                        } else {
                            rng.gen_range(vocab / 2..vocab)
                        }
                    } else {
                        rng.gen_range(0..vocab)
                    }
                })
                .collect()
        })
        .collect();
    let lda = LdaModel::fit(
        &mut rng,
        &docs,
        vocab as usize,
        LdaParams {
            topics: 4,
            iterations: 60,
            ..LdaParams::default()
        },
    );
    let profiles = lda.doc_topics();
    println!(
        "  LDA fitted: {} users x {} topics (doc 0 profile: {:?})",
        profiles.len(),
        lda.topic_count(),
        profiles[0]
            .as_slice()
            .iter()
            .map(|p| (p * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    let table = from_user_profiles(&graph, &profiles, 2.0, 2).expect("profiles cover all nodes");
    println!(
        "  derived table: avg support {:.2}, mean p = {:.3}",
        table.avg_support(),
        table.mean_nonzero_prob()
    );
    solve_small(&graph, &table, "tweet/lda", seed + 1);

    // ---------------------------------------------------------------
    // Path 3: dblp — field-block profiles, direct derivation.
    // ---------------------------------------------------------------
    println!("\n== dblp path: research-field profiles -> p(e|z) ==");
    let graph = oipa::graph::generators::barabasi_albert(&mut rng, 400, 4);
    let fields = 9usize;
    let profiles: Vec<oipa::topics::TopicVector> = (0..graph.node_count())
        .map(|u| {
            // Each author works mostly in one field with a secondary one.
            let main = u % fields;
            let side = (u / fields) % fields;
            let mut v = vec![0.05f32 / fields as f32; fields];
            v[main] += 0.7;
            v[side] += 0.25;
            oipa::topics::TopicVector::new(v).expect("valid profile")
        })
        .collect();
    let table = from_user_profiles(&graph, &profiles, 3.0, 3).expect("profiles cover all nodes");
    println!(
        "  derived table: avg support {:.2}, mean p = {:.3}",
        table.avg_support(),
        table.mean_nonzero_prob()
    );
    solve_small(&graph, &table, "dblp/fields", seed + 2);

    println!("\ndataset-pipeline checks passed ✓");
}
