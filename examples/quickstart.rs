//! Quickstart: the paper's running example (Fig. 1 / Example 1) in ~60
//! lines.
//!
//! Builds the 5-user, 2-topic network, samples MRR sets, and solves the
//! OIPA instance at budget k = 2. The optimal plan assigns the "tax"
//! piece to user `a` and the "healthcare" piece to user `e`, with
//! adoption utility ≈ 1.05 — exactly Example 1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oipa::core::{AuEstimator, BabConfig, BranchAndBound, OipaInstance};
use oipa::sampler::testkit::{fig1, FIG1_NAMES};
use oipa::sampler::MrrPool;
use oipa::topics::LogisticAdoption;

fn main() {
    // 1. The running-example network: users a..e, topics {tax, healthcare},
    //    deterministic topic-tagged edges (Fig. 1a).
    let (graph, table, campaign) = fig1();
    println!(
        "graph: {} users, {} edges, {} topics, campaign of {} pieces",
        graph.node_count(),
        graph.edge_count(),
        table.topic_count(),
        campaign.len()
    );

    // 2. Sample multi-reverse-reachable sets (§V-A). θ = 200k is overkill
    //    for 5 nodes but instant.
    let pool = MrrPool::generate(&graph, &table, &campaign, 200_000, 42);
    println!("sampled {} MRR sets per piece", pool.theta());

    // 3. The adoption model of Example 1: α = 3, β = 1.
    let model = LogisticAdoption::example();

    // 4. Solve OIPA with branch-and-bound at budget k = 2; every user is
    //    an eligible promoter here.
    let instance = OipaInstance::new(&pool, model, (0..5).collect(), 2).unwrap();
    let solution = BranchAndBound::new(&instance, BabConfig::bab()).solve();

    // 5. Report.
    println!("\noptimal assignment plan:");
    for (j, piece) in campaign.pieces().iter().enumerate() {
        let names: Vec<&str> = solution
            .plan
            .set(j)
            .iter()
            .map(|&v| FIG1_NAMES[v as usize])
            .collect();
        println!("  piece {:12} -> promoters {:?}", piece.name, names);
    }
    println!(
        "estimated adoption utility: {:.3}  (paper's Example 1: 1.05)",
        solution.utility
    );
    println!(
        "certified upper bound:      {:.3}  (gap {:.2}%)",
        solution.upper_bound,
        100.0 * (solution.upper_bound - solution.utility) / solution.utility
    );

    // 6. Cross-check against a direct estimator evaluation of the plan.
    let mut estimator = AuEstimator::new(&pool, model);
    let direct = estimator.evaluate(&solution.plan);
    assert!((direct - solution.utility).abs() < 1e-9);
    assert_eq!(solution.plan.set(0), &[0], "t1 should go to a");
    assert_eq!(solution.plan.set(1), &[4], "t2 should go to e");
    println!("\nquickstart checks passed ✓");
}
