//! A remote planning session over HTTP: spawn the `oipa-server` front
//! door in-process, then act as its client — solve cold, solve warm,
//! read `/stats` — all over a real loopback socket.
//!
//! In production the server runs standalone (`oipa-server --graph g.bin
//! --probs p.bin --store-dir pools/`) and clients are anything that can
//! speak HTTP; this example plays both sides in one process so it runs
//! without fixtures. The wire types are exactly the service types:
//! `SolveRequest` in, `SolveResponse` out, `StatsBody` (identity header
//! + `StatsSnapshot`) from `/stats`.
//!
//! ```text
//! cargo run --release --example http_session
//! ```

use oipa::server::{Server, ServerConfig, StatsBody};
use oipa::service::{Method, PlannerService, SolveRequest, SolveResponse};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, RwLock};
use std::time::Instant;

fn main() {
    // Server side: the paper's Fig. 1 instance behind an ephemeral port.
    let (graph, probs, campaign) = oipa::sampler::testkit::fig1();
    let service = Arc::new(RwLock::new(
        PlannerService::new(graph, probs).expect("consistent inputs"),
    ));
    let handle = Server::spawn(Arc::clone(&service), ServerConfig::default())
        .expect("binding a loopback port");
    let addr = handle.addr();
    println!("serving on http://{addr}");

    // Client side: describe the query — OIPA at budget k = 2.
    let mut request = SolveRequest::new(Method::Bab, 2);
    request.campaign = Some(campaign);
    request.theta = Some(20_000);
    request.promoters = Some((0..5).collect());
    let body = serde_json::to_string(&request).expect("request serializes");

    // Query 1: cold — the server samples the pool before solving.
    let t = Instant::now();
    let cold: SolveResponse = post_solve(addr, &body);
    println!(
        "cold  {} k={}: σ̂ = {:.2} users in {:.1} ms (cache hit: {})",
        cold.method,
        cold.k,
        cold.utility,
        t.elapsed().as_secs_f64() * 1e3,
        cold.pool_cache_hit,
    );
    assert_eq!(cold.plan.set(0), &[0], "Example 1's optimum: t1 -> a");
    assert_eq!(cold.plan.set(1), &[4], "                     t2 -> e");

    // Query 2: warm — same campaign key, served from the pool store.
    let t = Instant::now();
    let warm: SolveResponse = post_solve(addr, &body);
    println!(
        "warm  {} k={}: σ̂ = {:.2} users in {:.1} ms (cache hit: {})",
        warm.method,
        warm.k,
        warm.utility,
        t.elapsed().as_secs_f64() * 1e3,
        warm.pool_cache_hit,
    );
    assert!(warm.pool_cache_hit, "the repeat must hit the pool store");
    assert_eq!(warm.plan, cold.plan, "the cached pool changed the answer");

    // The observability endpoint: typed arena counters over the wire,
    // under the serving build's identity header.
    let stats: StatsBody = get_json(addr, "/stats");
    println!(
        "stats {} ({} v{}): {} lookups = {} hits + {} misses",
        stats.store.schema,
        stats.server.service,
        stats.server.version,
        stats.store.mem.lookups,
        stats.store.mem.hits,
        stats.store.mem.misses,
    );
    assert!(stats.store.schema_ok());

    // Graceful drain: in-flight work finishes, then every thread joins.
    handle.shutdown();
    println!("drained cleanly");
}

/// POSTs a `SolveRequest` body to `/solve` and parses the answer.
fn post_solve(addr: std::net::SocketAddr, body: &str) -> SolveResponse {
    let text = round_trip(
        addr,
        &format!(
            "POST /solve HTTP/1.1\r\nHost: example\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    serde_json::from_str(&text).expect("a SolveResponse body")
}

/// GETs a path and parses the JSON answer.
fn get_json<T: serde::Deserialize>(addr: std::net::SocketAddr, path: &str) -> T {
    let text = round_trip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n"),
    );
    serde_json::from_str(&text).expect("a JSON body")
}

/// One `Connection: close` round-trip; returns the response body.
fn round_trip(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connecting to the example server");
    stream
        .write_all(request.as_bytes())
        .expect("writing the request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("reading the response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("a complete HTTP response");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "unexpected response: {head}"
    );
    body.to_string()
}
