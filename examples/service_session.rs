//! A multi-query planning session through the `PlannerService`.
//!
//! The one-shot pipeline (sample θ MRR sets, solve once) pays sampling on
//! every query. A session amortizes it: the service's pool arena caches
//! sampled pools under a (campaign, θ, seed) key, so a stream of queries
//! with different budgets, methods, and adoption models shares one pool —
//! the serving-engine workload the ROADMAP's north star describes.
//!
//! ```text
//! cargo run --release --example service_session
//! ```

use oipa::service::{Method, PlannerService, SolveRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // A seeded mid-size instance: 300 users, 2400 edges, 3 viral pieces.
    let mut rng = StdRng::seed_from_u64(23);
    let (graph, table, campaign) =
        oipa::sampler::testkit::small_random_instance(&mut rng, 300, 2400, 4, 3);
    let service = PlannerService::new(graph, table).expect("consistent inputs");

    let mut base = SolveRequest::new(Method::BabP, 4);
    base.campaign = Some(campaign);
    base.theta = Some(20_000);
    base.seed = Some(23);
    base.promoter_fraction = Some(0.2);
    base.max_nodes = Some(40);

    // Query 1: cold — the service samples the pool first.
    let t = Instant::now();
    let cold = service.solve(&base).expect("solvable");
    println!(
        "cold  bab-p k=4: σ̂ = {:6.2} users in {:5.1} ms (cache hit: {})",
        cold.utility,
        t.elapsed().as_secs_f64() * 1e3,
        cold.pool_cache_hit
    );
    assert!(!cold.pool_cache_hit);

    // Queries 2..: warm — same pool key, different questions.
    for (label, request) in [
        ("warm  bab-p k=4", base.clone()),
        (
            "warm  greedy k=4",
            SolveRequest {
                method: Method::Greedy,
                ..base.clone()
            },
        ),
        (
            "warm  bab-p k=8",
            SolveRequest {
                budget: 8,
                ..base.clone()
            },
        ),
        (
            "warm  tim   k=4",
            SolveRequest {
                method: Method::Tim,
                ..base.clone()
            },
        ),
        (
            "warm  bab-p k=4 ratio=0.8",
            SolveRequest {
                ratio: Some(0.8),
                ..base.clone()
            },
        ),
    ] {
        let t = Instant::now();
        let response = service.solve(&request).expect("solvable");
        println!(
            "{label}: σ̂ = {:6.2} users in {:5.1} ms (cache hit: {})",
            response.utility,
            t.elapsed().as_secs_f64() * 1e3,
            response.pool_cache_hit
        );
        assert!(response.pool_cache_hit, "same pool key must hit the arena");
    }

    let stats = service.arena_stats();
    println!(
        "arena: {} pool(s), {:.1} MiB resident, {} hits / {} misses",
        stats.entries,
        stats.bytes as f64 / (1 << 20) as f64,
        stats.hits,
        stats.misses
    );
    assert_eq!(stats.entries, 1, "all six queries shared one pool");

    // Serving is concurrent: `solve` takes `&self`, so the same session
    // answers from any number of threads — here four workers share the
    // warm pool, and every answer matches the single-threaded one.
    let service = std::sync::Arc::new(service);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let service = std::sync::Arc::clone(&service);
            let request = base.clone();
            scope.spawn(move || {
                let response = service.solve(&request).expect("solvable");
                assert!(response.pool_cache_hit, "worker {worker} missed the pool");
                assert_eq!(response.utility.to_bits(), cold.utility.to_bits());
            });
        }
    });
    println!(
        "concurrent: 4 workers answered in {:5.1} ms total (same plan, same pool)",
        t.elapsed().as_secs_f64() * 1e3
    );
}
