//! The §IV hardness construction, end to end.
//!
//! Builds the OIPA instance Π_b from a Max-Clique instance Π_a
//! (Lemma 1's reduction), solves it with branch-and-bound, and reads the
//! clique back out of the optimal assignment plan — demonstrating both
//! the reduction bookkeeping and why OIPA is inapproximable in general:
//! a constant-factor OIPA oracle would locate maximum cliques.
//!
//! ```text
//! cargo run --release --example hardness_gadget
//! ```

use oipa::core::{BabConfig, BranchAndBound, OipaInstance};
use oipa::datasets::hardness::{build_gadget, plan_utility_for_subset};
use oipa::sampler::MrrPool;

fn main() {
    // Π_a: a 5-vertex graph whose maximum clique is {0, 1, 2} (size 3),
    // plus edges that form misleading near-cliques.
    let n = 5;
    let clique_edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)];
    println!("Max-Clique instance: {n} vertices, edges {clique_edges:?}");
    println!("true maximum clique: {{0, 1, 2}} (size 3)\n");

    // Π_b: the OIPA gadget — 3n vertices, n one-hot pieces, promoters
    // {x_i} ∪ {y_i}, budget n, α = 2n·ln(2n), β = 2·ln(2n).
    let gadget = build_gadget(n, &clique_edges);
    println!(
        "OIPA gadget: {} vertices, {} edges, {} pieces, budget {}",
        gadget.graph.node_count(),
        gadget.graph.edge_count(),
        gadget.campaign.len(),
        gadget.budget
    );
    println!(
        "logistic parameters: α = {:.2}, β = {:.2} (full coverage ⇒ p = 1/2, partial ⇒ ≤ {:.4})",
        gadget.model.alpha,
        gadget.model.beta,
        1.0 / (1.0 + (2.0 * n as f64).powi(2))
    );

    // Solve with BAB. The gadget is deterministic, so a modest θ suffices.
    let pool = MrrPool::generate(&gadget.graph, &gadget.table, &gadget.campaign, 60_000, 11);
    let instance =
        OipaInstance::new(&pool, gadget.model, gadget.promoters.clone(), gadget.budget).unwrap();
    let solution = BranchAndBound::new(
        &instance,
        BabConfig {
            gap: 0.0,
            ..BabConfig::bab()
        },
    )
    .solve();

    // Decode: piece i assigned to x_i means "vertex i is in the clique".
    let mut recovered: Vec<usize> = Vec::new();
    for i in 0..n {
        let set = solution.plan.set(i);
        let choice = if set.contains(&gadget.x(i)) {
            recovered.push(i);
            format!("x{i} (in clique)")
        } else if set.contains(&gadget.y(i)) {
            format!("y{i}")
        } else {
            "unassigned".to_string()
        };
        println!("piece t{i} -> {choice}");
    }
    println!(
        "\nrecovered clique candidate: {recovered:?}, σ̂ = {:.3}",
        solution.utility
    );

    // Verify against the analytic utility and Lemma 1's sandwich.
    let analytic =
        plan_utility_for_subset(&gadget, &recovered) - n as f64 * gadget.model.adoption_prob(1);
    println!("analytic receiver utility of that plan: {analytic:.3}");
    let clique_size = recovered.len() as f64;
    println!(
        "Lemma 1 check: 2·OPT(Πb) − 1/n = {:.3} ≤ ω = {clique_size} ≤ 2·OPT(Πb) = {:.3}",
        2.0 * analytic - 1.0 / n as f64,
        2.0 * analytic
    );
    assert!(
        recovered == vec![0, 1, 2],
        "solver should recover the maximum clique, got {recovered:?}"
    );
    println!("\nhardness-gadget checks passed ✓");
}
