//! Heterogeneous audience: the general model of the paper's Table I.
//!
//! The paper's notation reserves per-user adoption parameters (`β_v`,
//! `r_v`) but its algorithms use global (α, β). This example runs the
//! extension: an audience split into *enthusiasts* (adopt after ~1 piece)
//! and *skeptics* (need ~3), solved with the class-aware greedy
//! (`oipa::core::hetero`) and compared against planning as if everyone
//! were average.
//!
//! ```text
//! cargo run --release --example heterogeneous_audience
//! ```

use oipa::core::hetero::{greedy_hetero, HeteroState};
use oipa::core::{BabConfig, BranchAndBound, OipaInstance};
use oipa::datasets::{lastfm_like, Scale};
use oipa::sampler::MrrPool;
use oipa::topics::hetero::HeterogeneousAdoption;
use oipa::topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 606;
    let dataset = lastfm_like(Scale::Full, seed);
    let n = dataset.graph.node_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 3);
    let pool =
        MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, 80_000, seed, 4);
    let promoters = OipaInstance::sample_promoters(&mut rng, n, 0.10);
    let k = 20;

    // 30% enthusiasts (α = 1), 70% skeptics (α = 3).
    let enthusiast = LogisticAdoption::new(1.0, 1.0);
    let skeptic = LogisticAdoption::new(3.0, 1.0);
    let audience = HeterogeneousAdoption::two_segment(enthusiast, skeptic, 0.3, n);
    println!(
        "audience: {} users — {:.0}% enthusiasts (α=1), rest skeptics (α=3)",
        n,
        100.0 * (0..n as u32).filter(|&v| audience.class_of(v) == 0).count() as f64 / n as f64
    );

    // Class-aware plan.
    let aware = greedy_hetero(&pool, &audience, &promoters, k, &Default::default());
    println!(
        "\nclass-aware greedy:   {:.1} expected adopters (τ certificate {:.1})",
        aware.utility, aware.tau
    );

    // "Average-user" plan: solve with one homogeneous α fitted to the mix,
    // then score it against the real heterogeneous audience.
    let avg_alpha = 0.3 * 1.0 + 0.7 * 3.0;
    let average = LogisticAdoption::new(avg_alpha, 1.0);
    let instance = OipaInstance::new(&pool, average, promoters.clone(), k).unwrap();
    let homogeneous = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(16),
            ..BabConfig::bab_p(0.5)
        },
    )
    .solve();
    let state = HeteroState::new(&pool, &audience);
    let homogeneous_scored = state.evaluate(&homogeneous.plan);
    println!(
        "average-user plan:    {:.1} expected adopters (α fixed at {avg_alpha:.1})",
        homogeneous_scored
    );

    let lift = 100.0 * (aware.utility - homogeneous_scored) / homogeneous_scored.max(1e-9);
    println!("\nclass-aware planning lift: {lift:+.1}%");
    assert!(
        aware.utility + 1e-9 >= homogeneous_scored * 0.95,
        "class-aware greedy should not lose badly to the average-user plan"
    );
    println!("heterogeneous-audience checks passed ✓");
}
