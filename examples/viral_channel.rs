//! Viral channel: the paper's second motivating scenario (§I).
//!
//! A YouTube channel pushes ℓ = 5 videos through a sparse Twitter-like
//! network. A user only subscribes after watching several of the
//! channel's videos (short-lived SM content fades from memory — the
//! logistic adoption curve). On `tweet`-shaped data the per-edge topic
//! support is tiny (≈1.5 of 50 topics), which is exactly where
//! single-piece baselines collapse (§VI-D). We sweep the budget k and
//! watch the subscriber counts.
//!
//! ```text
//! cargo run --release --example viral_channel
//! ```

use oipa::baselines::{im_baseline, paper::collapsed_pool, tim_baseline};
use oipa::core::{AuEstimator, BabConfig, BranchAndBound, OipaInstance};
use oipa::datasets::{tweet_like, Scale};
use oipa::sampler::MrrPool;
use oipa::topics::{Campaign, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 777;
    // Twitter-shaped: very sparse, 50 topics, ≈1.5 topic entries/edge.
    let dataset = tweet_like(Scale::Small, seed);
    let stats = dataset.stats();
    println!(
        "network: {} users, {} retweet edges (avg degree {:.2}), avg topic support {:.2}",
        stats.nodes,
        stats.edges,
        stats.avg_degree,
        dataset.avg_topic_support()
    );

    // Five videos, each with its own (sampled) topic.
    let mut rng = StdRng::seed_from_u64(seed);
    let campaign = Campaign::sample_one_hot(&mut rng, dataset.topics, 5);
    println!("campaign: {} videos", campaign.len());

    // Subscribing is hard: β/α = 0.3 ⇒ users want ≥ 3 videos.
    let model = LogisticAdoption::from_ratio(0.3);

    let theta = 60_000;
    let pool =
        MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, theta, seed, 4);
    let promoters = OipaInstance::sample_promoters(&mut rng, stats.nodes, 0.10);
    let flat = collapsed_pool(&dataset.graph, &dataset.table, theta, seed);

    println!("\n   k   IM        TIM       BAB-P     (expected subscribers)");
    let mut last = (0.0, 0.0, 0.0);
    for k in [10usize, 20, 40] {
        let mut estimator = AuEstimator::new(&pool, model);
        let im = im_baseline(&flat, &pool, &mut estimator, &promoters, k);
        let tim = tim_baseline(&pool, &mut estimator, &promoters, k);
        let instance = OipaInstance::new(&pool, model, promoters.clone(), k).unwrap();
        let bab_p = BranchAndBound::new(
            &instance,
            BabConfig {
                max_nodes: Some(16),
                ..BabConfig::bab_p(0.5)
            },
        )
        .solve();
        println!(
            "{k:>4}   {:<9.2} {:<9.2} {:<9.2}",
            im.utility, tim.utility, bab_p.utility
        );
        last = (im.utility, tim.utility, bab_p.utility);
    }

    let (im_u, tim_u, bab_u) = last;
    println!(
        "\nat k = 40: BAB-P gains {:+.0}% over IM and {:+.0}% over TIM",
        100.0 * (bab_u - im_u) / im_u.max(1e-9),
        100.0 * (bab_u - tim_u) / tim_u.max(1e-9)
    );
    assert!(
        bab_u >= tim_u * 0.99 && bab_u >= im_u * 0.99,
        "multifaceted planning should dominate on sparse-topic networks"
    );
    println!("viral-channel checks passed ✓");
}
