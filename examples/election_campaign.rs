//! Election campaign: the paper's motivating scenario (§I).
//!
//! A candidate runs a multifaceted campaign with three policy pieces —
//! taxation, immigration, healthcare — over a lastfm-scale social
//! network. Voters only commit after hearing *several* facets (the
//! logistic model), so the planner must route each piece through the
//! promoters best positioned for its topic. We compare the naive
//! single-piece strategies (IM, TIM) against OIPA's BAB/BAB-P and verify
//! the chosen plan with a forward Monte-Carlo election simulation.
//!
//! ```text
//! cargo run --release --example election_campaign
//! ```

use oipa::baselines::{im_baseline, paper::collapsed_pool, tim_baseline};
use oipa::core::{AuEstimator, BabConfig, BranchAndBound, OipaInstance};
use oipa::datasets::{lastfm_like, Scale};
use oipa::sampler::{simulate, MrrPool};
use oipa::topics::{Campaign, LogisticAdoption, Piece, TopicVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 2024;
    // A 1.3K-user power-law network with 20 interest topics.
    let dataset = lastfm_like(Scale::Full, seed);
    let stats = dataset.stats();
    println!(
        "electorate: {} voters, {} follow edges (avg degree {:.1})",
        stats.nodes, stats.edges, stats.avg_degree
    );

    // Three policy pieces, each pinned to one interest topic.
    let campaign = Campaign::new(vec![
        Piece::new("taxation", TopicVector::one_hot(20, 3).unwrap()),
        Piece::new("immigration", TopicVector::one_hot(20, 7).unwrap()),
        Piece::new("healthcare", TopicVector::one_hot(20, 12).unwrap()),
    ])
    .unwrap();

    // Voters need ≥ 2 facets before the adoption odds turn meaningful:
    // β/α = 0.5 ⇒ α = 2, β = 1.
    let model = LogisticAdoption::from_ratio(0.5);

    let theta = 100_000;
    let pool =
        MrrPool::generate_parallel(&dataset.graph, &dataset.table, &campaign, theta, seed, 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let promoters = OipaInstance::sample_promoters(&mut rng, stats.nodes, 0.10);
    println!(
        "{} eligible promoters (10% of users), budget k = 20, θ = {theta}\n",
        promoters.len()
    );

    let k = 20;
    let mut estimator = AuEstimator::new(&pool, model);

    // Baselines.
    let flat = collapsed_pool(&dataset.graph, &dataset.table, theta, seed);
    let im = im_baseline(&flat, &pool, &mut estimator, &promoters, k);
    let tim = tim_baseline(&pool, &mut estimator, &promoters, k);

    // Proposed methods.
    let instance = OipaInstance::new(&pool, model, promoters, k).unwrap();
    let bab = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(32),
            ..BabConfig::bab()
        },
    )
    .solve();
    let bab_p = BranchAndBound::new(
        &instance,
        BabConfig {
            max_nodes: Some(32),
            ..BabConfig::bab_p(0.5)
        },
    )
    .solve();

    println!("method   expected adopters   strategy");
    println!(
        "IM       {:>12.1}        all budget on '{}'",
        im.utility,
        campaign.piece(im.chosen_piece).name
    );
    println!(
        "TIM      {:>12.1}        all budget on '{}'",
        tim.utility,
        campaign.piece(tim.chosen_piece).name
    );
    let split = |plan: &oipa::core::AssignmentPlan| -> String {
        (0..campaign.len())
            .map(|j| format!("{}:{}", campaign.piece(j).name, plan.set(j).len()))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("BAB      {:>12.1}        {}", bab.utility, split(&bab.plan));
    println!(
        "BAB-P    {:>12.1}        {}",
        bab_p.utility,
        split(&bab_p.plan)
    );

    // Forward-simulate the BAB plan as a sanity check on the estimator.
    let simulated = simulate::simulate_adoption(
        &mut StdRng::seed_from_u64(seed ^ 1),
        &dataset.graph,
        &dataset.table,
        &campaign,
        &bab.plan.to_vecs(),
        model,
        300,
    );
    println!(
        "\nMonte-Carlo check of the BAB plan: {simulated:.1} adopters \
         (estimator said {:.1}, {:+.1}%)",
        bab.utility,
        100.0 * (bab.utility - simulated) / simulated
    );
    assert!(
        bab.utility >= im.utility && bab.utility >= tim.utility * 0.99,
        "multifaceted optimization should not lose to single-piece strategies"
    );
    println!("election-campaign checks passed ✓");
}
