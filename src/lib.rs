//! # oipa — Maximizing Multifaceted Network Influence
//!
//! Umbrella crate re-exporting the full public API of the OIPA workspace, a
//! from-scratch Rust reproduction of *Maximizing Multifaceted Network
//! Influence* (Li, Fan, Ovchinnikov, Karras — ICDE 2019).
//!
//! The typical pipeline is:
//!
//! 1. build or generate a social graph ([`graph`]),
//! 2. attach topic-aware edge probabilities, either synthetic or learned
//!    from action logs ([`topics`]),
//! 3. hand both to a [`service::PlannerService`] session and stream
//!    [`service::SolveRequest`]s at it — the service samples
//!    multi-reverse-reachable (MRR) pools ([`sampler`]), caches them in a
//!    tiered pool store ([`store`]: byte-bounded memory arena, optional
//!    persistent disk tier), and dispatches to any registered solver:
//!    branch-and-bound ([`core`]), the relaxation heuristic, exact
//!    enumeration, or the paper's `IM`/`TIM` baselines ([`baselines`]).
//!
//! See `examples/quickstart.rs` and `examples/service_session.rs` for the
//! 60-second versions. In miniature — one session, many queries, sampling
//! paid once:
//!
//! ```
//! use oipa::service::{Method, PlannerService, SolveRequest};
//!
//! // 1–2. graph + probabilities (here: the paper's Fig. 1 fixture).
//! let (graph, probs, campaign) = oipa::sampler::testkit::fig1();
//! let service = PlannerService::new(graph, probs).unwrap();
//!
//! // 3. describe the query: solve OIPA at budget k = 2 over 20k samples.
//! let mut request = SolveRequest::new(Method::Bab, 2);
//! request.campaign = Some(campaign);
//! request.theta = Some(20_000);
//! request.promoters = Some((0..5).collect());
//!
//! let first = service.solve(&request).unwrap();   // samples the pool
//! assert_eq!(first.plan.set(0), &[0]); // Example 1's optimum: t1 -> a
//! assert_eq!(first.plan.set(1), &[4]); //                      t2 -> e
//!
//! // Same session, different method: the pool is already cached.
//! request.method = Method::Greedy;
//! let second = service.solve(&request).unwrap();
//! assert!(second.pool_cache_hit);
//! assert_eq!(second.plan, first.plan);
//! ```
//!
//! Lower-level entry points remain available — `core::BranchAndBound`
//! solves a hand-built `core::OipaInstance` directly, and the service's
//! answers are bitwise-identical to those direct calls.

pub use oipa_baselines as baselines;
pub use oipa_core as core;
pub use oipa_datasets as datasets;
pub use oipa_graph as graph;
pub use oipa_obs as obs;
pub use oipa_sampler as sampler;
pub use oipa_server as server;
pub use oipa_service as service;
pub use oipa_store as store;
pub use oipa_topics as topics;
