//! # oipa — Maximizing Multifaceted Network Influence
//!
//! Umbrella crate re-exporting the full public API of the OIPA workspace, a
//! from-scratch Rust reproduction of *Maximizing Multifaceted Network
//! Influence* (Li, Fan, Ovchinnikov, Karras — ICDE 2019).
//!
//! The typical pipeline is:
//!
//! 1. build or generate a social graph ([`graph`]),
//! 2. attach topic-aware edge probabilities, either synthetic or learned
//!    from action logs ([`topics`]),
//! 3. sample multi-reverse-reachable (MRR) sets ([`sampler`]),
//! 4. solve the Optimal Influential Pieces Assignment problem with
//!    branch-and-bound ([`core`]), and
//! 5. compare against the paper's `IM`/`TIM` baselines ([`baselines`]).
//!
//! See `examples/quickstart.rs` for the 60-second version. In miniature:
//!
//! ```
//! use oipa::core::{BabConfig, BranchAndBound, OipaInstance};
//! use oipa::sampler::MrrPool;
//! use oipa::topics::LogisticAdoption;
//!
//! // 1–2. graph + probabilities (here: the paper's Fig. 1 fixture).
//! let (graph, probs, campaign) = oipa::sampler::testkit::fig1();
//! // 3. sample MRR sets.
//! let pool = MrrPool::generate(&graph, &probs, &campaign, 20_000, 42);
//! // 4. solve OIPA at budget k = 2.
//! let instance = OipaInstance::new(&pool, LogisticAdoption::example(), (0..5).collect(), 2);
//! let solution = BranchAndBound::new(&instance, BabConfig::bab()).solve();
//! assert_eq!(solution.plan.set(0), &[0]); // Example 1's optimum
//! assert_eq!(solution.plan.set(1), &[4]);
//! ```

pub use oipa_baselines as baselines;
pub use oipa_core as core;
pub use oipa_datasets as datasets;
pub use oipa_graph as graph;
pub use oipa_sampler as sampler;
pub use oipa_topics as topics;
