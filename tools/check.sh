#!/usr/bin/env bash
# One-command pre-push check: release build, the full workspace test
# suite, and the black-box /metrics protocol suite (the observability
# wire format is frozen — see CHANGES.md — so it gets its own explicit
# gate). Mirrors the tier-1 CI steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== cargo test --release -p oipa-server --test metrics"
cargo test --release -p oipa-server --test metrics

echo "all checks passed"
