//! Test configuration and the deterministic per-test RNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG handed to strategies. A concrete type (not a trait object) so
/// strategies stay object-simple.
pub type TestRng = SmallRng;

/// Number of cases to run per property (the only knob the workspace uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configures `cases` runs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for a named test: the seed is an FNV-1a hash of the
/// test name, so each property gets an unrelated but reproducible stream.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(hash)
}
