//! First-party, dependency-free shim of the `proptest` API surface used
//! by the OIPA workspace.
//!
//! The build environment has no crates-registry access (see
//! `shims/README.md`), so this crate reimplements the subset the
//! workspace's property tests use: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, range / tuple / [`strategy::Just`] /
//! [`collection::vec()`] strategies, `prop_map` / `prop_flat_map`
//! combinators, and the `prop_assert*` macros.
//!
//! Differences from upstream: **no shrinking** (a failing case reports its
//! inputs via the panic message but is not minimized) and no persisted
//! failure regressions. Case generation is deterministic per test (the
//! RNG is seeded from the test's name), so failures reproduce exactly.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs a block of property tests.
///
/// Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                { $body }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
