//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
