//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification for [`vec()`]: an exact length or a half-open /
/// inclusive range, mirroring upstream's `SizeRange` conversions.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            lo: len,
            hi_inclusive: len,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            lo: range.start,
            hi_inclusive: range.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            lo: *range.start(),
            hi_inclusive: *range.end(),
        }
    }
}

/// A strategy producing `Vec`s whose length is drawn from `sizes` and
/// whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        sizes: sizes.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.sizes.lo..=self.sizes.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
