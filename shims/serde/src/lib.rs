//! First-party, dependency-free shim of the `serde` API surface used by
//! the OIPA workspace.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors minimal implementations of its external dependencies (see
//! `shims/README.md`). Unlike real serde's zero-copy visitor architecture,
//! this shim routes everything through an owned JSON-like [`Value`] tree:
//!
//! * [`Serialize`] — `fn to_value(&self) -> Value`;
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, Error>`;
//! * derive macros for both, supporting named-field structs and unit-only
//!   enums (the shapes the workspace uses);
//! * the `serde_json` shim then renders/parses [`Value`] as JSON text.
//!
//! The derive macros are re-exported here so `use serde::{Serialize,
//! Deserialize}` imports trait and macro together, exactly like upstream
//! with the `derive` feature.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod de;

/// An owned, order-preserving JSON-like value tree.
///
/// Object fields keep insertion order (a `Vec` of pairs, not a map), so
/// serialized output matches declaration order like upstream serde_json.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every integer the workspace serializes).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name; `None` for other variants or
    /// missing fields.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short human-readable description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A (de)serialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Creates an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into an owned value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error(format!("{u} out of range for {}", stringify!($t))))?,
                    other => return Err(Error(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match v {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error(format!("{i} out of range for {}", stringify!($t))))?,
                    Value::UInt(u) => *u,
                    other => return Err(Error(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64);
impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error(format!(
                "expected 2-element array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
