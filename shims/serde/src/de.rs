//! Deserialization helpers mirroring the `serde::de` module paths the
//! workspace imports.

use crate::{Deserialize, Error, Value};

/// Owned deserialization — with this shim's owned [`Value`] model every
/// [`Deserialize`] type qualifies, mirroring upstream's blanket rule.
pub trait DeserializeOwned: Deserialize {}

impl<T: Deserialize> DeserializeOwned for T {}

/// Extracts and deserializes the field `name` from an object value.
///
/// Missing fields deserialize from [`Value::Null`], so `Option` fields
/// tolerate absence while mandatory fields produce a clear error. Used by
/// the `#[derive(Deserialize)]` expansion.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(_) => {
            let slot = v.get(name).unwrap_or(&Value::Null);
            T::from_value(slot).map_err(|e| Error(format!("field `{name}`: {e}")))
        }
        other => Err(Error(format!("expected object, found {}", other.kind()))),
    }
}
