//! Derive macros for the first-party `serde` shim.
//!
//! The offline build environment has neither `syn` nor `quote`, so these
//! macros parse the derive input token stream by hand. Supported shapes —
//! the only ones the OIPA workspace derives:
//!
//! * structs with named fields (any field visibility), no generics;
//! * enums whose variants are all unit variants, no generics.
//!
//! Unsupported shapes panic at compile time with a pointed message rather
//! than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input parsed into.
enum Shape {
    /// Struct name + named-field identifiers in declaration order.
    Struct(String, Vec<String>),
    /// Enum name + unit-variant identifiers.
    Enum(String, Vec<String>),
}

/// Derives `serde::Serialize` (shim): structs become `Value::Object` with
/// fields in declaration order, unit enums become `Value::String` of the
/// variant name.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let __variant = match self {{ {arms} }};\n\
                         ::serde::Value::String(__variant.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives `serde::Deserialize` (shim): the inverse of the `Serialize`
/// expansion, with per-field error context.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__v, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {arms}\n\
                                 __other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                                     \"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                                 \"expected string for {name}, found {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Parses a derive input into a [`Shape`], panicking (= compile error at
/// the derive site) on anything outside the supported subset.
fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
                "serde shim derive: generic type `{name}` is unsupported; \
                 write the impls by hand or extend shims/serde_derive"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => panic!(
                "serde shim derive: tuple/unit struct `{name}` is unsupported; \
                 use named fields or write the impls by hand"
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => panic!(
                "serde shim derive: tuple struct `{name}` is unsupported; \
                 use named fields or write the impls by hand"
            ),
            Some(_) => continue,
            None => panic!("serde shim derive: no body found for `{name}`"),
        }
    };
    match keyword.as_str() {
        "struct" => Shape::Struct(name, parse_named_fields(body.stream())),
        "enum" => Shape::Enum(name, parse_unit_variants(body.stream())),
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Skips leading outer attributes (`#[...]`, including expanded doc
/// comments) and a visibility modifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }
}

/// Extracts field names from the contents of a named-field struct body.
/// Types are skipped wholesale (tracking `<`/`>` depth so commas inside
/// generics don't end a field early) — the generated code never needs
/// them, since trait dispatch resolves via inference.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde shim derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        fields.push(name);
        // Skip the type up to a top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => return fields,
            }
        }
    }
    fields
}

/// Extracts variant names from a unit-variant-only enum body.
fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(name);
                break;
            }
            other => panic!(
                "serde shim derive: variant `{name}` is not a unit variant \
                 (found {other:?}); extend shims/serde_derive to support it"
            ),
        }
        variants.push(name);
    }
    variants
}
