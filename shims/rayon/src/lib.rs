//! First-party, dependency-free shim of the `rayon` API surface used by
//! the OIPA workspace.
//!
//! The build environment has no crates-registry access (see
//! `shims/README.md`), so this crate provides the slice-parallel subset
//! the samplers need, built on `std::thread::scope`:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — an **order-preserving**
//!   parallel map: output index `i` always holds `f(&slice[i])`, which is
//!   what makes the samplers' chunked generation bitwise deterministic
//!   under any thread count;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — scoped thread-count
//!   control (a thread-local override here, not a real persistent pool);
//! * [`current_num_threads`].
//!
//! Work distribution is dynamic (an atomic cursor over items), so uneven
//! per-item cost still balances across workers, like real rayon's stealing.

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! Traits that make `.par_iter()` available on slices and vectors.
    pub use crate::IntoParallelRefIterator;
}

thread_local! {
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel operations will use on this
/// thread: the innermost [`ThreadPool::install`] override, or the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(Cell::get);
    if overridden > 0 {
        overridden
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Builder for a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count; `0` means machine parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible here; the `Result` mirrors rayon's
    /// signature so call sites read identically.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (never produced by
/// this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count context. Unlike real rayon there are no
/// persistent workers; [`ThreadPool::install`] pins the thread count that
/// parallel operations inside `op` will spawn.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        THREAD_OVERRIDE.with(|cell| {
            let previous = cell.get();
            cell.set(self.num_threads);
            let result = op();
            cell.set(previous);
            result
        })
    }

    /// The configured thread count (0 = machine parallelism).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Conversion into a parallel iterator over `&T` items, implemented for
/// slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by reference.
    type Item: 'a;

    /// Returns a parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` in parallel, preserving order.
    pub fn map<O, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&T) -> O + Sync,
        O: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]: a lazy parallel map, executed by
/// [`ParMap::collect`].
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, O> ParMap<'a, T, F>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    /// Executes the map and collects results **in input order**.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }
}

/// Order-preserving parallel map: dynamic scheduling via an atomic item
/// cursor, results reassembled by index.
fn par_map_vec<T: Sync, O: Send>(items: &[T], f: &(impl Fn(&T) -> O + Sync)) -> Vec<O> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, O)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("rayon shim worker panicked"));
        }
    });
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, value) in per_worker.into_iter().flatten() {
        out[i] = Some(value);
    }
    out.into_iter()
        .map(|slot| slot.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        let nested = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            nested.install(|| assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let input: Vec<u64> = (0..5000).collect();
        let reference: Vec<u64> = input.iter().map(|x| x.wrapping_mul(0x9e3779b9)).collect();
        for threads in [1, 2, 5, 16] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<u64> = pool.install(|| {
                input
                    .par_iter()
                    .map(|x| x.wrapping_mul(0x9e3779b9))
                    .collect()
            });
            assert_eq!(got, reference);
        }
    }
}
