//! First-party, dependency-free shim of the `serde_json` API surface used
//! by the OIPA workspace: JSON text rendering and parsing over the shim
//! `serde`'s owned [`Value`] tree.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). Numbers parse to `Int`/`UInt` when they are
//! lossless integers and `Float` otherwise. Non-finite floats serialize as
//! `null`, like upstream serde_json.

#![warn(missing_docs)]

pub use serde::Value;

use serde::de::DeserializeOwned;
use serde::Serialize;

pub use serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Converts an already-parsed [`Value`] into a deserializable type.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` prints the shortest representation that round-trips.
                let mut s = x.to_string();
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    s.push_str(".0");
                }
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs: decode the low half if present.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| Error("truncated surrogate".to_string()))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| Error("bad surrogate".to_string()))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| Error("bad surrogate".to_string()))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".to_string()))?);
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if text.is_empty() || text == "-" {
            return Err(Error(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            (
                "name".to_string(),
                Value::String("tax \"reform\"\n".to_string()),
            ),
            ("k".to_string(), Value::Int(20)),
            ("utility".to_string(), Value::Float(123.5)),
            ("bound".to_string(), Value::Null),
            (
                "sets".to_string(),
                Value::Array(vec![
                    Value::Array(vec![Value::Int(1), Value::Int(2)]),
                    Value::Array(vec![]),
                ]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#"{"s": "aé\t\\\"😀"}"#).unwrap();
        assert_eq!(v.get("s"), Some(&Value::String("aé\t\\\"😀".to_string())));
    }

    #[test]
    fn float_roundtrips_exactly() {
        let x = 0.1f64 + 0.2;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
