//! Concrete generators: [`SmallRng`] and [`StdRng`], both xoshiro256++.
//!
//! Upstream `rand` uses different algorithms for the two types; here they
//! share xoshiro256++ (Blackman & Vigna), which passes BigCrush and is
//! plenty for Monte-Carlo sampling. They are distinct types so call sites
//! keep their upstream meaning (`SmallRng` = speed, `StdRng` = quality).

use crate::{splitmix64, RngCore, SeedableRng};

#[derive(Debug, Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but keep the guard for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256PlusPlus { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A small, fast generator (xoshiro256++ here).
#[derive(Debug, Clone)]
pub struct SmallRng(Xoshiro256PlusPlus);

impl SeedableRng for SmallRng {
    #[inline]
    fn seed_from_u64(state: u64) -> Self {
        SmallRng(Xoshiro256PlusPlus::seed_from_u64(state))
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// The "statistically strong" generator (also xoshiro256++, domain-separated
/// from [`SmallRng`] so the two never produce identical streams for the
/// same seed).
#[derive(Debug, Clone)]
pub struct StdRng(Xoshiro256PlusPlus);

impl SeedableRng for StdRng {
    #[inline]
    fn seed_from_u64(state: u64) -> Self {
        StdRng(Xoshiro256PlusPlus::seed_from_u64(
            state ^ 0x5851_f42d_4c95_7f2d,
        ))
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let f = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(f32::EPSILON..=1.0);
            assert!(g > 0.0 && g <= 1.0);
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
