//! The `Distribution` trait and integer `Uniform` distribution.

use crate::{RngCore, SampleRange};

/// Types that can produce samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// A uniform distribution over `[low, high)`, pre-constructed so repeated
/// sampling avoids re-validating bounds.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// Creates a uniform distribution over the half-open range
    /// `[low, high)`. Panics if the range is empty.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new called with empty range");
        Uniform { low, high }
    }
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Uniform<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                (self.low..self.high).sample_single(rng)
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize);
