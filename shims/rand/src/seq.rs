//! Sequence helpers: in-place shuffling and index sampling without
//! replacement.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Index sampling without replacement.
pub mod index {
    use super::*;

    /// A set of distinct indices in `0..length`, in sampling order.
    #[derive(Debug, Clone)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// The sampled indices as a vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices uniformly from `0..length` via a
    /// partial Fisher–Yates shuffle. Panics if `amount > length`.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from 0..{length}"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..length);
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::StdRng;
        use crate::SeedableRng;

        #[test]
        fn distinct_and_in_range() {
            let mut rng = StdRng::seed_from_u64(1);
            let picked = sample(&mut rng, 100, 30).into_vec();
            assert_eq!(picked.len(), 30);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 30);
            assert!(picked.iter().all(|&i| i < 100));
        }
    }
}
