//! First-party, dependency-free shim of the `rand` 0.8 API surface used by
//! the OIPA workspace.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors minimal implementations of its external dependencies
//! (see `shims/README.md`). This crate reimplements exactly the subset of
//! `rand` 0.8 the workspace calls:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits (`gen_range`,
//!   `gen_bool`, `seed_from_u64`);
//! * [`rngs::SmallRng`] and [`rngs::StdRng`], both backed by
//!   xoshiro256++ seeded via SplitMix64;
//! * [`distributions::Uniform`] over the integer types the workspace uses;
//! * [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].
//!
//! Numeric streams differ from upstream `rand`; no workspace test depends
//! on upstream-exact streams, only on determinism and statistical quality.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// The minimal core-RNG interface: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit word.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirroring `rand`'s design).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; the workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, expanding it through
    /// SplitMix64 so nearby seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 mantissa bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(word: u64) -> f32 {
    // 24 mantissa bits -> [0, 1).
    ((word >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Unbiased uniform draw from `[0, span)` by rejection.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let limit = u64::MAX - u64::MAX % span;
    loop {
        let x = rng.next_u64();
        if x < limit {
            return x % span;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                assert!(span != 0, "full-width inclusive ranges are unsupported");
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + (end - start) * unit
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f32(rng.next_u64())
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit = ((rng.next_u64() >> 40) as u32) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        start + (end - start) * unit
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
