//! Hand-rolled HTTP/1.1 framing over blocking `std::net` sockets.
//!
//! The offline build environment has no hyper/tokio, so this module
//! implements exactly the protocol subset the OIPA front door needs:
//! request-line + header parsing, `Content-Length`-framed bodies,
//! keep-alive, and response writing. Every malformed input maps to a
//! typed [`HttpError`] carrying the 4xx/5xx status and a machine-readable
//! `kind`, so the connection loop can always answer with a structured
//! JSON error body instead of panicking or hanging.
//!
//! Reads are sliced into short socket-timeout quanta
//! ([`POLL_QUANTUM`]): between quanta the reader checks the caller's
//! abort flag (graceful shutdown) and its own deadline, which is how a
//! client that sends half a request and stalls gets a `408` instead of
//! parking a worker thread forever.

use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Socket-timeout slice used between abort-flag checks.
pub const POLL_QUANTUM: Duration = Duration::from_millis(50);

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method token (`GET`, `POST`, …), verbatim.
    pub method: String,
    /// The request target (path only; any `?query` is preserved).
    pub path: String,
    /// `true` when the request (or an explicit `Connection` header)
    /// allows the connection to serve another request afterwards.
    pub keep_alive: bool,
    /// The body, exactly `Content-Length` bytes (empty when absent).
    pub body: Vec<u8>,
}

/// A protocol-level failure: the HTTP status to answer with, a stable
/// machine-readable kind, and a human-readable message.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// The 4xx/5xx status code.
    pub status: u16,
    /// Stable error kind (`bad_request`, `length_required`, …).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl HttpError {
    /// Builds an error from its parts.
    pub fn new(status: u16, kind: &'static str, message: impl Into<String>) -> Self {
        HttpError {
            status,
            kind,
            message: message.into(),
        }
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The typed JSON error body every non-2xx response carries
/// (round-trips through serde, so clients can match on `kind`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// The HTTP status, echoed in the body for log-friendly clients.
    pub status: u16,
    /// The error detail.
    pub error: ErrorDetail,
}

/// The `error` half of an [`ErrorBody`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorDetail {
    /// Stable machine-readable kind.
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

impl ErrorBody {
    /// The body for an [`HttpError`].
    pub fn from_error(e: &HttpError) -> Self {
        ErrorBody {
            status: e.status,
            error: ErrorDetail {
                kind: e.kind.to_string(),
                message: e.message.clone(),
            },
        }
    }
}

/// What one attempt to read a request produced.
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed (or never wrote) before sending any byte —
    /// a clean end of the connection, not an error.
    Closed,
    /// The abort flag was raised before any byte of a new request
    /// arrived (graceful shutdown of an idle keep-alive connection).
    Aborted,
}

/// A buffered reader over one connection that survives keep-alive
/// request boundaries (pipelined bytes are preserved between calls).
pub struct ConnReader {
    buf: Vec<u8>,
    pos: usize,
}

impl Default for ConnReader {
    fn default() -> Self {
        ConnReader {
            buf: Vec::with_capacity(1024),
            pos: 0,
        }
    }
}

impl ConnReader {
    /// Unconsumed bytes already read from the socket.
    fn buffered(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Drops consumed bytes when the buffer gets lopsided.
    fn compact(&mut self) {
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Pulls more bytes from the socket, honoring the quantum timeout.
    /// Returns `Ok(0)` on EOF, `Err(WouldBlock)`-mapped `Ok(None)` style
    /// is folded into the caller's loop via `FillResult`.
    fn fill(&mut self, stream: &mut TcpStream) -> std::io::Result<FillResult> {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => Ok(FillResult::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(FillResult::Progress)
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                Ok(FillResult::TimedOut)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(FillResult::TimedOut),
            Err(e) => Err(e),
        }
    }

    /// Reads one full request: head until `\r\n\r\n`, then exactly
    /// `Content-Length` body bytes. `read_timeout` bounds each of the
    /// two stages; `abort` is only honored *between* requests (a request
    /// whose first byte arrived is always read to completion or error).
    /// A `Content-Length` above `max_body_bytes` is rejected with `413`
    /// before a single body byte is read.
    pub fn read_request(
        &mut self,
        stream: &mut TcpStream,
        read_timeout: Duration,
        max_body_bytes: usize,
        abort: &AtomicBool,
    ) -> Result<ReadOutcome, HttpError> {
        self.compact();
        stream
            .set_read_timeout(Some(POLL_QUANTUM))
            .map_err(internal_io)?;

        // Stage 1: the head. No deadline until the first byte arrives —
        // an idle keep-alive connection is allowed to sit quietly until
        // `read_timeout` from the moment we started waiting.
        let wait_start = Instant::now();
        let mut first_byte_at: Option<Instant> = None;
        let head_end = loop {
            if let Some(end) = find_head_end(self.buffered()) {
                break end;
            }
            if self.buffered().len() > MAX_HEAD_BYTES {
                return Err(HttpError::new(
                    431,
                    "head_too_large",
                    format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                ));
            }
            let started = !self.buffered().is_empty();
            if started && first_byte_at.is_none() {
                first_byte_at = Some(Instant::now());
            }
            if !started && abort.load(Ordering::SeqCst) {
                return Ok(ReadOutcome::Aborted);
            }
            let elapsed = match first_byte_at {
                Some(t) => t.elapsed(),
                None => wait_start.elapsed(),
            };
            if elapsed > read_timeout {
                if started {
                    return Err(HttpError::new(
                        408,
                        "request_timeout",
                        "request head did not arrive within the read timeout",
                    ));
                }
                return Ok(ReadOutcome::Closed); // idle keep-alive expiry
            }
            match self.fill(stream).map_err(internal_io)? {
                FillResult::Eof => {
                    if started {
                        return Err(HttpError::new(
                            400,
                            "bad_request",
                            "connection closed mid-request-head",
                        ));
                    }
                    return Ok(ReadOutcome::Closed);
                }
                FillResult::Progress | FillResult::TimedOut => {}
            }
        };

        let head = String::from_utf8_lossy(&self.buffered()[..head_end]).into_owned();
        self.pos += head_end + 4; // consume the \r\n\r\n too
        let (method, path, keep_alive_default) = parse_request_line(&head)?;
        let headers = parse_headers(&head)?;
        let keep_alive = match header(&headers, "connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => keep_alive_default,
        };

        if header(&headers, "transfer-encoding").is_some() {
            return Err(HttpError::new(
                501,
                "not_implemented",
                "transfer-encoding is not supported; frame the body with Content-Length",
            ));
        }

        // Stage 2: the body. POST requires an explicit length; other
        // methods may carry one (read and framed correctly either way).
        let content_length = match header(&headers, "content-length") {
            Some(raw) => Some(raw.trim().parse::<usize>().map_err(|_| {
                HttpError::new(
                    400,
                    "bad_request",
                    format!("unparseable Content-Length {raw:?}"),
                )
            })?),
            None => None,
        };
        let body_len = match (method.as_str(), content_length) {
            (_, Some(n)) => n,
            ("POST" | "PUT" | "PATCH", None) => {
                return Err(HttpError::new(
                    411,
                    "length_required",
                    format!("{method} requires a Content-Length header"),
                ));
            }
            (_, None) => 0,
        };
        if body_len > max_body_bytes {
            return Err(HttpError::new(
                413,
                "body_too_large",
                format!("Content-Length {body_len} exceeds the {max_body_bytes}-byte limit"),
            ));
        }

        let body_deadline = Instant::now() + read_timeout;
        while self.buffered().len() < body_len {
            if Instant::now() > body_deadline {
                return Err(HttpError::new(
                    408,
                    "request_timeout",
                    format!(
                        "body truncated: Content-Length {body_len} but only {} bytes arrived \
                         within the read timeout",
                        self.buffered().len()
                    ),
                ));
            }
            match self.fill(stream).map_err(internal_io)? {
                FillResult::Eof => {
                    return Err(HttpError::new(
                        400,
                        "bad_request",
                        format!(
                            "connection closed mid-body: Content-Length {body_len} but only \
                             {} bytes arrived",
                            self.buffered().len()
                        ),
                    ));
                }
                FillResult::Progress | FillResult::TimedOut => {}
            }
        }
        let body = self.buffered()[..body_len].to_vec();
        self.pos += body_len;

        Ok(ReadOutcome::Request(Request {
            method,
            path,
            keep_alive,
            body,
        }))
    }
}

enum FillResult {
    Progress,
    TimedOut,
    Eof,
}

fn internal_io(e: std::io::Error) -> HttpError {
    HttpError::new(500, "io", format!("socket read failed: {e}"))
}

/// Index of `\r\n\r\n` in `bytes`, if present.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses `METHOD SP TARGET SP HTTP/1.x`; returns the method, path, and
/// the version's default keep-alive.
fn parse_request_line(head: &str) -> Result<(String, String, bool), HttpError> {
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(
            400,
            "bad_request",
            format!("malformed request line {line:?}"),
        ));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::new(
            400,
            "bad_request",
            format!("malformed method token {method:?}"),
        ));
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(HttpError::new(
            400,
            "bad_request",
            format!("request target {target:?} must be an absolute path"),
        ));
    }
    let keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::new(
                400,
                "bad_request",
                format!("unsupported protocol version {other:?}"),
            ));
        }
    };
    Ok((method.to_string(), target.to_string(), keep_alive))
}

/// Parses the header block into lowercase-name pairs.
fn parse_headers(head: &str) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    for line in head.lines().skip(1) {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(
                400,
                "bad_request",
                format!("malformed header line {line:?}"),
            ));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(
                400,
                "bad_request",
                format!("malformed header name {name:?}"),
            ));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

/// First value of a (lowercase) header name.
fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Seconds clients are told to wait before retrying a `503`/`408`
/// (the `Retry-After` header those statuses carry).
pub const RETRY_AFTER_SECONDS: u32 = 1;

/// The `Content-Type` every JSON response carries.
pub const CONTENT_TYPE_JSON: &str = "application/json";

/// Writes one HTTP/1.1 response with a JSON body. `keep_alive` controls
/// the `Connection` header; the caller closes the stream when false.
/// Transient rejections (`503` overload, `408` client timeout) carry a
/// `Retry-After` header so well-behaved clients back off instead of
/// hammering an overloaded accept loop.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with_type(stream, status, CONTENT_TYPE_JSON, body, keep_alive)
}

/// [`write_response`] with an explicit `Content-Type` — the `/metrics`
/// endpoint serves Prometheus text exposition, not JSON.
pub fn write_response_with_type(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let retry_after = match status {
        503 | 408 => format!("Retry-After: {RETRY_AFTER_SECONDS}\r\n"),
        _ => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         {retry_after}Connection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Serializes an [`HttpError`] into its response body.
pub fn error_body_json(e: &HttpError) -> String {
    serde_json::to_string(&ErrorBody::from_error(e))
        .unwrap_or_else(|_| format!("{{\"status\":{},\"error\":{{}}}}", e.status))
}

/// Best-effort error response (the connection is being torn down; a
/// failed write changes nothing).
pub fn write_error(stream: &mut TcpStream, e: &HttpError) {
    let _ = write_response(stream, e.status, &error_body_json(e), false);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_grammar() {
        assert!(parse_request_line("GET / HTTP/1.1\r\n").is_ok());
        let (m, p, ka) = parse_request_line("POST /solve HTTP/1.1").unwrap();
        assert_eq!((m.as_str(), p.as_str(), ka), ("POST", "/solve", true));
        let (_, _, ka) = parse_request_line("GET /healthz HTTP/1.0").unwrap();
        assert!(!ka);
        for bad in [
            "",
            "GET",
            "GET /",
            "GET / HTTP/1.1 extra",
            "get / HTTP/1.1",
            "GET nopath HTTP/1.1",
            "GET / SPDY/3",
        ] {
            let e = parse_request_line(bad).unwrap_err();
            assert_eq!(e.status, 400, "{bad:?} must be a 400");
        }
    }

    #[test]
    fn header_grammar() {
        let head = "POST /solve HTTP/1.1\r\nContent-Length: 12\r\nX-Thing: a: b";
        let headers = parse_headers(head).unwrap();
        assert_eq!(header(&headers, "content-length"), Some("12"));
        assert_eq!(header(&headers, "x-thing"), Some("a: b"));
        assert!(parse_headers("GET / HTTP/1.1\r\nno colon here").is_err());
        assert!(parse_headers("GET / HTTP/1.1\r\nbad name: x").is_err());
    }

    #[test]
    fn error_body_round_trips() {
        let e = HttpError::new(413, "body_too_large", "too big");
        let body: ErrorBody = serde_json::from_str(&error_body_json(&e)).unwrap();
        assert_eq!(body.status, 413);
        assert_eq!(body.error.kind, "body_too_large");
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
