//! `oipa-server` — serve a `PlannerService` session over HTTP/1.1.
//!
//! ```text
//! oipa-server --graph g.bin --probs p.bin [--store-dir DIR]
//!             [--addr 127.0.0.1:7878] [--threads N]
//!             [--max-connections N] [--read-timeout-ms N]
//!             [--mem-bytes N] [--slow-ms MS]
//! oipa-server --pool pool.bin [--addr ...]
//! ```
//!
//! The session is configured exactly like `oipa-cli solve`: a graph +
//! probability table (requests may then carry any campaign), or a
//! pre-sampled injected pool. With `--store-dir`, pools persist across
//! restarts (disk-warm serving).
//!
//! SIGINT/SIGTERM trigger a graceful drain: the listener stops
//! admitting, in-flight requests complete, and the pool store's batched
//! LRU recency is flushed to the manifest before exit.

use oipa_sampler::binio as pool_io;
use oipa_server::{Server, ServerConfig};
use oipa_service::{PlannerService, StoreConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler; polled by the main thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Hand-rolled: the environment has no signal-handling crate. The
    // handler only stores to an atomic (async-signal-safe); the main
    // thread does the actual drain.
    unsafe extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        let handler = on_signal as unsafe extern "C" fn(i32) as usize;
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {
    eprintln!("note: no signal handling on this platform; stop with the process manager");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut graph_path: Option<String> = None;
    let mut probs_path: Option<String> = None;
    let mut pool_path: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut mem_bytes: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--graph" => graph_path = Some(value("--graph")),
            "--probs" => probs_path = Some(value("--probs")),
            "--pool" => pool_path = Some(value("--pool")),
            "--store-dir" => store_dir = Some(value("--store-dir")),
            "--addr" => config.addr = value("--addr"),
            "--threads" => {
                config.threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| die("--threads needs a positive integer"));
                if config.threads == 0 {
                    die("--threads must be at least 1");
                }
            }
            "--max-connections" => {
                config.max_connections = value("--max-connections")
                    .parse()
                    .unwrap_or_else(|_| die("--max-connections needs a positive integer"));
                if config.max_connections == 0 {
                    die("--max-connections must be at least 1");
                }
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--read-timeout-ms needs an integer"));
                config.read_timeout = Duration::from_millis(ms.max(1));
            }
            "--mem-bytes" => {
                mem_bytes = Some(
                    value("--mem-bytes")
                        .parse()
                        .unwrap_or_else(|_| die("--mem-bytes needs an integer")),
                );
            }
            "--slow-ms" => {
                config.slow_ms = Some(
                    value("--slow-ms")
                        .parse()
                        .unwrap_or_else(|_| die("--slow-ms needs an integer (milliseconds)")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "oipa-server: HTTP front door for the OIPA PlannerService\n\n\
                     usage: oipa-server (--graph FILE --probs FILE | --pool FILE)\n\
                     \x20      [--store-dir DIR] [--addr HOST:PORT] [--threads N]\n\
                     \x20      [--max-connections N] [--read-timeout-ms N] [--mem-bytes N]\n\
                     \x20      [--slow-ms MS]\n\n\
                     endpoints: POST /solve, POST /delta, GET /healthz, GET /stats, GET /metrics\n\
                     --slow-ms MS logs requests slower than MS as JSONL to stderr"
                );
                return;
            }
            other => die(&format!("unknown flag {other:?} (try --help)")),
        }
    }

    // Build the session exactly like the CLI would.
    let mut service = match (&graph_path, &probs_path, &pool_path) {
        (Some(g), Some(p), None) => {
            let graph = oipa_graph::binio::read_graph_file(g)
                .unwrap_or_else(|e| die(&format!("reading graph {g}: {e}")));
            let table = oipa_topics::binio::read_table_file(p)
                .unwrap_or_else(|e| die(&format!("reading probabilities {p}: {e}")));
            PlannerService::new(graph, table).unwrap_or_else(|e| die(&e.to_string()))
        }
        (None, None, Some(path)) => {
            let pool = pool_io::read_pool_file(path)
                .unwrap_or_else(|e| die(&format!("reading pool {path}: {e}")));
            PlannerService::from_pool(pool)
        }
        _ => die("give either --graph FILE --probs FILE or --pool FILE"),
    };
    if let Some(dir) = &store_dir {
        let mut store = StoreConfig::new(dir);
        store.mem_bytes = mem_bytes;
        service
            .attach_store(store)
            .unwrap_or_else(|e| die(&format!("attaching store {dir}: {e}")));
    } else if let Some(bytes) = mem_bytes {
        service = service.with_arena_capacity(bytes);
    }

    install_signal_handlers();
    let service = Arc::new(std::sync::RwLock::new(service));
    let handle = Server::spawn(Arc::clone(&service), config.clone())
        .unwrap_or_else(|e| die(&format!("binding {}: {e}", config.addr)));
    println!(
        "oipa-server listening on http://{} ({} workers, cap {} connections{})",
        handle.addr(),
        config.threads,
        config.max_connections,
        match &store_dir {
            Some(d) => format!(", store {d}"),
            None => String::new(),
        }
    );

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("draining: in-flight requests complete, new connects are refused…");
    handle.shutdown();
    // The handle held the last worker references; dropping our service
    // Arc now flushes the store's batched recency stamps (drop-flush),
    // so a restart over the same --store-dir keeps the LRU order.
    drop(service);
    println!("drained cleanly");
}
