//! # oipa-server
//!
//! The network front door of the OIPA serving stack: an HTTP/1.1 server
//! over blocking `std::net` sockets (the offline environment has no
//! hyper/tokio — see [`http`] for the hand-rolled framing) that exposes
//! one shared, `Send + Sync` [`PlannerService`] to any number of remote
//! clients.
//!
//! ## Endpoint contract
//!
//! | route | method | body | answer |
//! |---|---|---|---|
//! | `/solve` | POST | [`SolveRequest`] JSON | 200 [`SolveResponse`](oipa_service::SolveResponse) JSON |
//! | `/healthz` | GET | — | 200 `{"status":"ok"}` (or `"degraded"` + disk-tier detail while the store rides out a disk fault) |
//! | `/stats` | GET | — | 200 [`StatsSnapshot`](oipa_store::StatsSnapshot) JSON (arena + disk counters) |
//!
//! Every non-2xx answer is a typed [`http::ErrorBody`]: malformed
//! request lines are `400`, unknown paths `404`, wrong methods `405`,
//! missing `Content-Length` on POST `411`, oversized bodies `413`,
//! truncated bodies `408` (after the read timeout — a stalled client
//! can never park a worker forever), unknown method tokens `501`, and
//! domain errors from the solver ([`oipa_core::OipaError`]) `422`. A
//! handler panic answers `500` and poisons nothing: the service's locks
//! recover, and the worker moves to the next connection.
//!
//! ## Backpressure and shutdown
//!
//! Admission control is a hard connection cap
//! ([`ServerConfig::max_connections`]): accepted-but-unfinished
//! connections above it are answered `503` and closed immediately,
//! so overload degrades into fast, explicit rejections instead of
//! unbounded queueing. [`ServerHandle::shutdown`] drains gracefully —
//! the listener stops admitting, queued and in-flight requests complete
//! (idle keep-alive connections are told `Connection: close`), workers
//! join, and dropping the service afterwards flushes the pool store's
//! batched recency stamps to disk (restart-persistent LRU).
//!
//! ```no_run
//! use oipa_server::{Server, ServerConfig};
//! use oipa_service::PlannerService;
//! use std::sync::Arc;
//!
//! let (graph, probs, _) = oipa_sampler::testkit::fig1();
//! let service = Arc::new(PlannerService::new(graph, probs).unwrap());
//! let handle = Server::spawn(service, ServerConfig::default()).unwrap();
//! println!("serving on http://{}", handle.addr());
//! handle.shutdown();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod http;

pub use http::{ErrorBody, ErrorDetail, HttpError};

use http::{ConnReader, ReadOutcome, Request};
use oipa_service::{PlannerService, SolveRequest};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration. `Default` binds an ephemeral loopback port
/// with 4 workers and a 64-connection cap.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Hard cap on accepted-but-unfinished connections; everything above
    /// it is answered `503` at accept time.
    pub max_connections: usize,
    /// Per-stage read timeout: how long a client may take to deliver a
    /// request head (from its first byte) or a `Content-Length` body
    /// before the server answers `408` and closes. Also the idle
    /// keep-alive lifetime.
    pub read_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            max_connections: 64,
            read_timeout: Duration::from_secs(10),
            max_body_bytes: 16 << 20,
        }
    }
}

/// Monotonic counters the server keeps about itself (distinct from the
/// pool-store counters `/stats` reports).
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    rejected_503: AtomicU64,
    requests: AtomicU64,
}

struct Shared {
    service: Arc<PlannerService>,
    config: ServerConfig,
    shutting_down: AtomicBool,
    /// Accepted-but-unfinished connections (queued + in-flight).
    active: AtomicUsize,
    counters: Counters,
}

/// The server factory; see [`Server::spawn`].
pub struct Server;

impl Server {
    /// Binds the listener and starts the accept thread plus
    /// [`ServerConfig::threads`] workers over one shared service.
    /// Returns a handle owning every thread.
    pub fn spawn(
        service: Arc<PlannerService>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        assert!(config.threads > 0, "a server needs at least one worker");
        assert!(
            config.max_connections > 0,
            "a connection cap of 0 would reject every request"
        );
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config,
            shutting_down: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            counters: Counters::default(),
        });

        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers: Vec<JoinHandle<()>> = (0..shared.config.threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || worker_loop(&shared, &receiver))
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener, sender))
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// A running server: its bound address and the threads serving it.
/// Dropping the handle without [`ServerHandle::shutdown`] aborts the
/// process-exit way (threads are detached); call `shutdown` for the
/// graceful path.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (including ones answered `503`).
    pub fn accepted(&self) -> u64 {
        self.shared.counters.accepted.load(Ordering::SeqCst)
    }

    /// Connections rejected with `503` by the admission cap.
    pub fn rejected_503(&self) -> u64 {
        self.shared.counters.rejected_503.load(Ordering::SeqCst)
    }

    /// Requests answered (any status) by the worker pool.
    pub fn requests(&self) -> u64 {
        self.shared.counters.requests.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop admitting, let queued and in-flight requests
    /// complete, join every thread. Idle keep-alive connections are
    /// closed at their next poll quantum, so the drain is bounded by the
    /// slowest in-flight request plus one [`http::POLL_QUANTUM`] — not
    /// by the read timeout.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept thread: it re-checks the flag per
        // connection, and a failed connect means it already exited.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept thread dropped the sender on exit; workers drain
        // whatever was queued, then see the disconnect and stop.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The accept loop: admission control happens here, before any worker
/// is involved, so an overloaded server rejects in microseconds.
fn accept_loop(shared: &Shared, listener: &TcpListener, sender: mpsc::Sender<TcpStream>) {
    loop {
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // New connects during a drain are refused (the wake-up
            // connect from `shutdown` lands here too).
            return;
        }
        shared.counters.accepted.fetch_add(1, Ordering::SeqCst);
        // Admission control: claim a slot; over the cap, give it back
        // and answer 503 without touching the worker pool.
        let was_active = shared.active.fetch_add(1, Ordering::SeqCst);
        if was_active >= shared.config.max_connections {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.counters.rejected_503.fetch_add(1, Ordering::SeqCst);
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            http::write_error(
                &mut stream,
                &HttpError::new(
                    503,
                    "overloaded",
                    format!(
                        "connection cap {} reached; retry with backoff",
                        shared.config.max_connections
                    ),
                ),
            );
            continue;
        }
        if sender.send(stream).is_err() {
            // Workers are gone (shutdown raced us); the slot dies here.
            shared.active.fetch_sub(1, Ordering::SeqCst);
            return;
        }
    }
}

/// One worker: pull connections until the accept thread hangs up, then
/// drain what is already queued and exit.
fn worker_loop(shared: &Shared, receiver: &Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        let stream = {
            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                handle_connection(shared, stream);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(_) => return, // sender dropped: graceful drain complete
        }
    }
}

/// Serves one connection: a keep-alive loop of read → dispatch → write.
/// Every protocol error answers with a typed body and closes; a clean
/// close or an abort (graceful shutdown between requests) just closes.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout.max(Duration::from_secs(1))));
    let mut reader = ConnReader::default();
    loop {
        match reader.read_request(
            &mut stream,
            shared.config.read_timeout,
            shared.config.max_body_bytes,
            &shared.shutting_down,
        ) {
            Ok(ReadOutcome::Request(request)) => {
                shared.counters.requests.fetch_add(1, Ordering::SeqCst);
                let draining = shared.shutting_down.load(Ordering::SeqCst);
                let keep_alive = request.keep_alive && !draining;
                match dispatch(shared, &request) {
                    Ok(body) => {
                        if http::write_response(&mut stream, 200, &body, keep_alive).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        http::write_error(&mut stream, &e);
                        return;
                    }
                }
                if !keep_alive {
                    return;
                }
            }
            Ok(ReadOutcome::Closed | ReadOutcome::Aborted) => return,
            Err(e) => {
                http::write_error(&mut stream, &e);
                return;
            }
        }
    }
}

/// Routes one request. `Ok` carries the 200 body; `Err` the typed
/// failure (including a 500 for a caught panic).
fn dispatch(shared: &Shared, request: &Request) -> Result<String, HttpError> {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/stats") => serde_json::to_string(&shared.service.stats_snapshot())
            .map_err(|e| HttpError::new(500, "serialize", e.to_string())),
        ("POST", "/solve") => solve(shared, &request.body),
        ("GET" | "POST", "/healthz" | "/stats" | "/solve") => Err(HttpError::new(
            405,
            "method_not_allowed",
            format!(
                "{} does not accept {}; /solve takes POST, /healthz and /stats take GET",
                path, request.method
            ),
        )),
        ("GET" | "POST", _) => Err(HttpError::new(
            404,
            "not_found",
            format!("{path:?} is not a route; try POST /solve, GET /healthz, GET /stats"),
        )),
        (other, _) => Err(HttpError::new(
            501,
            "not_implemented",
            format!("method {other:?} is not implemented; use GET or POST"),
        )),
    }
}

/// The `/healthz` body: process liveness plus the disk tier's health.
/// `disk` is `null` on memory-only deployments.
#[derive(serde::Serialize)]
struct HealthzBody {
    status: String,
    service: String,
    disk: Option<oipa_store::TierHealthSnapshot>,
}

/// The `/healthz` handler. Always `200` while the process serves — a
/// degraded disk tier is an operating mode, not an outage — but the
/// body says which: `"ok"` when every tier is healthy, `"degraded"`
/// (with the tier's error detail) while the store is riding out a disk
/// fault on its memory/resample fallback.
fn healthz(shared: &Shared) -> Result<String, HttpError> {
    let disk = shared.service.health();
    let status = match &disk {
        Some(h) if !h.is_healthy() => "degraded",
        _ => "ok",
    };
    let body = HealthzBody {
        status: status.to_string(),
        service: "oipa-server".to_string(),
        disk,
    };
    serde_json::to_string(&body).map_err(|e| HttpError::new(500, "serialize", e.to_string()))
}

/// The `/solve` handler: JSON in, JSON out, panics contained.
fn solve(shared: &Shared, body: &[u8]) -> Result<String, HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpError::new(400, "bad_json", "body is not valid UTF-8"))?;
    let request: SolveRequest = serde_json::from_str(text)
        .map_err(|e| HttpError::new(400, "bad_json", format!("unparseable SolveRequest: {e}")))?;
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| shared.service.solve(&request)))
        .map_err(|_| {
            HttpError::new(
                500,
                "panic",
                "the solver panicked; the request was dropped and the server kept serving",
            )
        })?;
    let response = outcome.map_err(|e| HttpError::new(422, "solve_error", e.to_string()))?;
    serde_json::to_string(&response).map_err(|e| HttpError::new(500, "serialize", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The handle must be shareable with a shutdown-watcher thread.
    #[test]
    fn server_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ServerHandle>();
        assert_send::<ServerConfig>();
    }
}
