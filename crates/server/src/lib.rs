//! # oipa-server
//!
//! The network front door of the OIPA serving stack: an HTTP/1.1 server
//! over blocking `std::net` sockets (the offline environment has no
//! hyper/tokio — see [`http`] for the hand-rolled framing) that exposes
//! one shared, `Send + Sync` [`PlannerService`] to any number of remote
//! clients.
//!
//! ## Endpoint contract
//!
//! | route | method | body | answer |
//! |---|---|---|---|
//! | `/solve` | POST | [`SolveRequest`] JSON | 200 [`SolveResponse`](oipa_service::SolveResponse) JSON |
//! | `/delta` | POST | [`GraphDelta`] JSON | 200 [`DeltaReport`](oipa_service::DeltaReport) JSON |
//! | `/healthz` | GET | — | 200 `{"status":"ok"}` + build/uptime identity (or `"degraded"` + disk-tier detail while the store rides out a disk fault) |
//! | `/stats` | GET | — | 200 [`StatsBody`] JSON: a [`ServerIdentity`] header plus the [`StatsSnapshot`](oipa_store::StatsSnapshot) (arena + disk counters) |
//! | `/metrics` | GET | — | 200 Prometheus text exposition (`text/plain; version=0.0.4`) of the whole [`oipa_obs::Registry`] |
//!
//! ## Observability
//!
//! Every server owns an [`oipa_obs::Registry`] (inject a shared one via
//! [`ServerConfig::registry`]): per-endpoint/per-status request counters
//! and latency histograms, an in-flight gauge, overload/timeout
//! counters, solver-phase timings (the service is attached to the same
//! registry), and scrape-time bridges for the pool store's counters —
//! `/stats` and `/metrics` read the same atomics and cannot drift.
//! [`ServerConfig::slow_ms`] turns on structured JSONL slow-request
//! logging to stderr, one line per offending request with its
//! per-phase spans.
//!
//! Every non-2xx answer is a typed [`http::ErrorBody`]: malformed
//! request lines are `400`, unknown paths `404`, wrong methods `405`,
//! missing `Content-Length` on POST `411`, oversized bodies `413`,
//! truncated bodies `408` (after the read timeout — a stalled client
//! can never park a worker forever), unknown method tokens `501`, and
//! domain errors from the solver ([`oipa_core::OipaError`]) `422`. A
//! handler panic answers `500` and poisons nothing: the service's locks
//! recover, and the worker moves to the next connection.
//!
//! ## Backpressure and shutdown
//!
//! Admission control is a hard connection cap
//! ([`ServerConfig::max_connections`]): accepted-but-unfinished
//! connections above it are answered `503` and closed immediately,
//! so overload degrades into fast, explicit rejections instead of
//! unbounded queueing. [`ServerHandle::shutdown`] drains gracefully —
//! the listener stops admitting, queued and in-flight requests complete
//! (idle keep-alive connections are told `Connection: close`), workers
//! join, and dropping the service afterwards flushes the pool store's
//! batched recency stamps to disk (restart-persistent LRU).
//!
//! ## Graph deltas
//!
//! `POST /delta` mutates the session graph behind the service lock: the
//! server holds every `/solve` behind a shared (read) lock and takes the
//! exclusive (write) side for the delta, so a delta waits for in-flight
//! solves to drain and no solve ever observes a half-applied graph.
//! Cached pools are not thrown away — they go stale and delta-repair
//! lazily on their next request (see `oipa_service::PlannerService::apply_delta`).
//!
//! ```no_run
//! use oipa_server::{Server, ServerConfig};
//! use oipa_service::PlannerService;
//! use std::sync::{Arc, RwLock};
//!
//! let (graph, probs, _) = oipa_sampler::testkit::fig1();
//! let service = Arc::new(RwLock::new(PlannerService::new(graph, probs).unwrap()));
//! let handle = Server::spawn(service, ServerConfig::default()).unwrap();
//! println!("serving on http://{}", handle.addr());
//! handle.shutdown();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod http;

pub use http::{ErrorBody, ErrorDetail, HttpError};
pub use oipa_obs::{Registry, EXPOSITION_CONTENT_TYPE, METRICS_SCHEMA};

use http::{ConnReader, ReadOutcome, Request};
use oipa_obs::{Counter, Gauge, Histogram, MetricKind, PromText, Trace};
use oipa_service::{GraphDelta, PlannerService, SolveRequest};
use serde::{Deserialize, Serialize};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The service as the server shares it: `/solve` and the read-only
/// endpoints take the shared side, `POST /delta` (and any other session
/// rewiring) takes the exclusive side — which is exactly the drain
/// barrier deltas need.
pub type SharedService = Arc<RwLock<PlannerService>>;

/// Read-locks the service, recovering from poisoning (handler panics are
/// already contained per request; the session state is still coherent).
fn read_service(service: &RwLock<PlannerService>) -> RwLockReadGuard<'_, PlannerService> {
    service.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-locks the service (see [`read_service`] on poisoning).
fn write_service(service: &RwLock<PlannerService>) -> RwLockWriteGuard<'_, PlannerService> {
    service.write().unwrap_or_else(|e| e.into_inner())
}

/// Server configuration. `Default` binds an ephemeral loopback port
/// with 4 workers and a 64-connection cap.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Hard cap on accepted-but-unfinished connections; everything above
    /// it is answered `503` at accept time.
    pub max_connections: usize,
    /// Per-stage read timeout: how long a client may take to deliver a
    /// request head (from its first byte) or a `Content-Length` body
    /// before the server answers `408` and closes. Also the idle
    /// keep-alive lifetime.
    pub read_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Slow-request threshold in milliseconds: requests at or above it
    /// are logged to stderr as one JSONL line each (trace id, endpoint,
    /// status, total latency, per-phase spans). `None` (the default)
    /// disables the log entirely.
    pub slow_ms: Option<u64>,
    /// The metrics registry the server reports into. `None` (the
    /// default) gives the server a fresh private registry — inject one
    /// to aggregate several servers or to scrape without HTTP.
    pub registry: Option<Registry>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            max_connections: 64,
            read_timeout: Duration::from_secs(10),
            max_body_bytes: 16 << 20,
            slow_ms: None,
            registry: None,
        }
    }
}

/// Monotonic counters the server keeps about itself (distinct from the
/// pool-store counters `/stats` reports).
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    rejected_503: AtomicU64,
    requests: AtomicU64,
}

/// Endpoint labels the request grid is pre-registered for. Anything
/// else (404 paths, pre-route failures) lands under `"other"`.
const ENDPOINTS: [&str; 6] = [
    "/solve", "/delta", "/healthz", "/stats", "/metrics", "other",
];

/// Status codes this server emits, pre-registered so the hot path is a
/// plain array index into `Arc<Counter>` handles — no lock, no map.
const STATUSES: [u16; 12] = [200, 400, 404, 405, 408, 411, 413, 422, 431, 500, 501, 503];

const REQUESTS_NAME: &str = "oipa_http_requests_total";
const REQUESTS_HELP: &str = "Requests answered, by endpoint and status.";

/// Pre-registered handles into the server's registry. Built once at
/// spawn; the per-request path is array lookups into relaxed atomics.
struct ServerMetrics {
    registry: Registry,
    /// `requests[endpoint][status]` over [`ENDPOINTS`] × [`STATUSES`].
    requests: Vec<Vec<Arc<Counter>>>,
    /// Request latency per endpoint (nanoseconds in, seconds out).
    latency: Vec<Arc<Histogram>>,
    /// Requests currently being dispatched.
    inflight: Arc<Gauge>,
    /// Connections rejected `503` by the admission cap.
    rejected_503: Arc<Counter>,
    /// Requests that timed out (`408`) while being read.
    timeouts: Arc<Counter>,
    /// Requests at or above the `--slow-ms` threshold.
    slow_requests: Arc<Counter>,
}

impl ServerMetrics {
    fn new(registry: Registry) -> ServerMetrics {
        let requests = ENDPOINTS
            .iter()
            .map(|endpoint| {
                STATUSES
                    .iter()
                    .map(|status| {
                        registry.counter(
                            REQUESTS_NAME,
                            REQUESTS_HELP,
                            &[("endpoint", endpoint), ("status", &status.to_string())],
                        )
                    })
                    .collect()
            })
            .collect();
        let latency = ENDPOINTS
            .iter()
            .map(|endpoint| {
                registry.histogram(
                    "oipa_http_request_seconds",
                    "Request latency from parsed request to handler return.",
                    &[("endpoint", endpoint)],
                )
            })
            .collect();
        ServerMetrics {
            requests,
            latency,
            inflight: registry.gauge(
                "oipa_http_inflight",
                "Requests currently being dispatched.",
                &[],
            ),
            rejected_503: registry.counter(
                "oipa_http_rejected_503_total",
                "Connections rejected at accept time by the admission cap.",
                &[],
            ),
            timeouts: registry.counter(
                "oipa_http_timeouts_total",
                "Requests that timed out (408) while being read.",
                &[],
            ),
            slow_requests: registry.counter(
                "oipa_http_slow_requests_total",
                "Requests at or above the slow-request threshold.",
                &[],
            ),
            registry,
        }
    }

    /// The grid row a request path belongs to.
    fn endpoint_index(path: &str) -> usize {
        ENDPOINTS
            .iter()
            .position(|e| *e == path)
            .unwrap_or(ENDPOINTS.len() - 1)
    }

    /// Counts one answered request and records its latency. Unknown
    /// statuses fall back to registry get-or-create (cold path only —
    /// every status the server emits is pre-registered).
    fn record(&self, endpoint_index: usize, status: u16, elapsed: Duration) {
        match STATUSES.iter().position(|s| *s == status) {
            Some(i) => self.requests[endpoint_index][i].inc(),
            None => self
                .registry
                .counter(
                    REQUESTS_NAME,
                    REQUESTS_HELP,
                    &[
                        ("endpoint", ENDPOINTS[endpoint_index]),
                        ("status", &status.to_string()),
                    ],
                )
                .inc(),
        }
        self.latency[endpoint_index].record_duration(elapsed);
    }
}

struct Shared {
    service: SharedService,
    config: ServerConfig,
    shutting_down: AtomicBool,
    /// Accepted-but-unfinished connections (queued + in-flight).
    active: AtomicUsize,
    counters: Counters,
    metrics: ServerMetrics,
    /// When the server was spawned (uptime reporting).
    started: Instant,
}

/// Registers the build/uptime identity collector:
/// `oipa_build_info{service,version} 1` plus `oipa_uptime_seconds`.
fn register_identity_collector(registry: &Registry, started: Instant) {
    registry.register_collector(move |w| {
        w.family(
            "oipa_build_info",
            MetricKind::Gauge,
            "Build identity carried in the labels; the value is always 1.",
        );
        w.sample_u64(
            "oipa_build_info",
            &[
                ("service", "oipa-server"),
                ("version", env!("CARGO_PKG_VERSION")),
            ],
            1,
        );
        w.family(
            "oipa_uptime_seconds",
            MetricKind::Gauge,
            "Seconds since the server was spawned.",
        );
        w.sample_f64("oipa_uptime_seconds", &[], started.elapsed().as_secs_f64());
    });
}

/// One unlabeled family with a single integer sample (collector helper).
fn bridge(w: &mut PromText, name: &str, kind: MetricKind, help: &str, value: u64) {
    w.family(name, kind, help);
    w.sample_u64(name, &[], value);
}

/// Bridges the pool store's counters into `/metrics` at scrape time.
/// The store's own atomics stay the single source of truth — `/stats`
/// serializes the same snapshot — so the two endpoints cannot drift.
fn register_store_collector(registry: &Registry, service: SharedService) {
    use MetricKind::{Counter, Gauge};
    registry.register_collector(move |w| {
        let snap = read_service(&service).stats_snapshot();
        let mem = &snap.mem;
        bridge(
            w,
            "oipa_store_mem_entries",
            Gauge,
            "Pools resident in the memory arena.",
            mem.entries as u64,
        );
        bridge(
            w,
            "oipa_store_mem_bytes",
            Gauge,
            "Bytes resident in the memory arena.",
            mem.bytes as u64,
        );
        bridge(
            w,
            "oipa_store_mem_capacity_bytes",
            Gauge,
            "Configured memory-arena byte budget.",
            mem.capacity_bytes as u64,
        );
        bridge(
            w,
            "oipa_store_mem_lookups_total",
            Counter,
            "Memory-arena lookups (hits + misses).",
            mem.lookups,
        );
        bridge(
            w,
            "oipa_store_mem_hits_total",
            Counter,
            "Memory-arena lookups answered from cache.",
            mem.hits,
        );
        bridge(
            w,
            "oipa_store_mem_misses_total",
            Counter,
            "Memory-arena lookups that missed.",
            mem.misses,
        );
        bridge(
            w,
            "oipa_store_mem_evictions_total",
            Counter,
            "Pools evicted from the memory arena.",
            mem.evictions,
        );
        if let Some(disk) = &snap.disk {
            bridge(
                w,
                "oipa_store_disk_entries",
                Gauge,
                "Pool entries indexed on disk.",
                disk.entries as u64,
            );
            bridge(
                w,
                "oipa_store_disk_bytes",
                Gauge,
                "Live bytes indexed on disk.",
                disk.bytes,
            );
            bridge(
                w,
                "oipa_store_disk_dead_bytes",
                Gauge,
                "Committed-but-dead bytes awaiting GC.",
                disk.dead_bytes,
            );
            bridge(
                w,
                "oipa_store_disk_hits_total",
                Counter,
                "Lookups served from disk.",
                disk.hits,
            );
            bridge(
                w,
                "oipa_store_disk_misses_total",
                Counter,
                "Disk lookups that found no usable entry.",
                disk.misses,
            );
            bridge(
                w,
                "oipa_store_disk_spills_total",
                Counter,
                "Pools written to disk.",
                disk.spills,
            );
            bridge(
                w,
                "oipa_store_disk_evictions_total",
                Counter,
                "Disk entries dropped for the byte budget.",
                disk.evictions,
            );
            bridge(
                w,
                "oipa_store_disk_write_errors_total",
                Counter,
                "Best-effort disk writes that failed.",
                disk.write_errors,
            );
            bridge(
                w,
                "oipa_store_disk_degraded_skips_total",
                Counter,
                "Operations short-circuited while degraded.",
                disk.degraded_skips,
            );
            bridge(
                w,
                "oipa_store_disk_gc_runs_total",
                Counter,
                "GC passes run.",
                disk.gc_runs,
            );
            w.family(
                "oipa_store_disk_gc_seconds_total",
                Counter,
                "Wall-clock seconds spent in GC passes.",
            );
            w.sample_f64(
                "oipa_store_disk_gc_seconds_total",
                &[],
                disk.gc_duration_ns as f64 / 1e9,
            );
        }
        if let Some(health) = &snap.disk_health {
            bridge(
                w,
                "oipa_store_disk_degraded",
                Gauge,
                "1 while the disk tier is degraded, else 0.",
                u64::from(!health.is_healthy()),
            );
            bridge(
                w,
                "oipa_store_disk_errors_total",
                Counter,
                "Cumulative disk-tier I/O errors.",
                health.errors,
            );
            bridge(
                w,
                "oipa_store_disk_degradations_total",
                Counter,
                "Healthy → degraded transitions.",
                health.degradations,
            );
            bridge(
                w,
                "oipa_store_disk_recoveries_total",
                Counter,
                "Degraded → healthy transitions.",
                health.recoveries,
            );
        }
    });
}

/// The server factory; see [`Server::spawn`].
pub struct Server;

impl Server {
    /// Binds the listener and starts the accept thread plus
    /// [`ServerConfig::threads`] workers over one shared service.
    /// Returns a handle owning every thread.
    pub fn spawn(service: SharedService, config: ServerConfig) -> std::io::Result<ServerHandle> {
        assert!(config.threads > 0, "a server needs at least one worker");
        assert!(
            config.max_connections > 0,
            "a connection cap of 0 would reject every request"
        );
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let registry = config.registry.clone().unwrap_or_default();
        let started = Instant::now();
        // The service reports solver-phase timings and pool-outcome
        // counters into the same registry the server scrapes.
        read_service(&service).attach_obs(&registry);
        register_identity_collector(&registry, started);
        register_store_collector(&registry, Arc::clone(&service));
        let shared = Arc::new(Shared {
            service,
            config,
            shutting_down: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            counters: Counters::default(),
            metrics: ServerMetrics::new(registry),
            started,
        });

        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers: Vec<JoinHandle<()>> = (0..shared.config.threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || worker_loop(&shared, &receiver))
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener, sender))
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// A running server: its bound address and the threads serving it.
/// Dropping the handle without [`ServerHandle::shutdown`] aborts the
/// process-exit way (threads are detached); call `shutdown` for the
/// graceful path.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (including ones answered `503`).
    pub fn accepted(&self) -> u64 {
        self.shared.counters.accepted.load(Ordering::SeqCst)
    }

    /// Connections rejected with `503` by the admission cap.
    pub fn rejected_503(&self) -> u64 {
        self.shared.counters.rejected_503.load(Ordering::SeqCst)
    }

    /// Requests answered (any status) by the worker pool.
    pub fn requests(&self) -> u64 {
        self.shared.counters.requests.load(Ordering::SeqCst)
    }

    /// The metrics registry this server reports into (the one behind
    /// `GET /metrics`). Clone-cheap; render it directly for in-process
    /// scraping without a socket.
    pub fn registry(&self) -> Registry {
        self.shared.metrics.registry.clone()
    }

    /// Graceful drain: stop admitting, let queued and in-flight requests
    /// complete, join every thread. Idle keep-alive connections are
    /// closed at their next poll quantum, so the drain is bounded by the
    /// slowest in-flight request plus one [`http::POLL_QUANTUM`] — not
    /// by the read timeout.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept thread: it re-checks the flag per
        // connection, and a failed connect means it already exited.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept thread dropped the sender on exit; workers drain
        // whatever was queued, then see the disconnect and stop.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The accept loop: admission control happens here, before any worker
/// is involved, so an overloaded server rejects in microseconds.
fn accept_loop(shared: &Shared, listener: &TcpListener, sender: mpsc::Sender<TcpStream>) {
    loop {
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // New connects during a drain are refused (the wake-up
            // connect from `shutdown` lands here too).
            return;
        }
        shared.counters.accepted.fetch_add(1, Ordering::SeqCst);
        // Admission control: claim a slot; over the cap, give it back
        // and answer 503 without touching the worker pool.
        let was_active = shared.active.fetch_add(1, Ordering::SeqCst);
        if was_active >= shared.config.max_connections {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.counters.rejected_503.fetch_add(1, Ordering::SeqCst);
            shared.metrics.rejected_503.inc();
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            http::write_error(
                &mut stream,
                &HttpError::new(
                    503,
                    "overloaded",
                    format!(
                        "connection cap {} reached; retry with backoff",
                        shared.config.max_connections
                    ),
                ),
            );
            continue;
        }
        if sender.send(stream).is_err() {
            // Workers are gone (shutdown raced us); the slot dies here.
            shared.active.fetch_sub(1, Ordering::SeqCst);
            return;
        }
    }
}

/// One worker: pull connections until the accept thread hangs up, then
/// drain what is already queued and exit.
fn worker_loop(shared: &Shared, receiver: &Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        let stream = {
            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                handle_connection(shared, stream);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(_) => return, // sender dropped: graceful drain complete
        }
    }
}

/// Serves one connection: a keep-alive loop of read → dispatch → write.
/// Every protocol error answers with a typed body and closes; a clean
/// close or an abort (graceful shutdown between requests) just closes.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout.max(Duration::from_secs(1))));
    let mut reader = ConnReader::default();
    loop {
        match reader.read_request(
            &mut stream,
            shared.config.read_timeout,
            shared.config.max_body_bytes,
            &shared.shutting_down,
        ) {
            Ok(ReadOutcome::Request(request)) => {
                shared.counters.requests.fetch_add(1, Ordering::SeqCst);
                let draining = shared.shutting_down.load(Ordering::SeqCst);
                let keep_alive = request.keep_alive && !draining;
                let endpoint =
                    ServerMetrics::endpoint_index(request.path.split('?').next().unwrap_or(""));
                let trace = Trace::new();
                shared.metrics.inflight.inc();
                let outcome = dispatch(shared, &request, &trace);
                shared.metrics.inflight.dec();
                let status = match &outcome {
                    Ok(_) => 200,
                    Err(e) => e.status,
                };
                shared.metrics.record(endpoint, status, trace.elapsed());
                maybe_log_slow(shared, &trace, ENDPOINTS[endpoint], status);
                match outcome {
                    Ok(reply) => {
                        let write = http::write_response_with_type(
                            &mut stream,
                            200,
                            reply.content_type,
                            &reply.body,
                            keep_alive,
                        );
                        if write.is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        http::write_error(&mut stream, &e);
                        return;
                    }
                }
                if !keep_alive {
                    return;
                }
            }
            Ok(ReadOutcome::Closed | ReadOutcome::Aborted) => return,
            Err(e) => {
                // Pre-route failure: no endpoint was resolved, so the
                // grid charges it to "other" with zero handler latency.
                if e.status == 408 {
                    shared.metrics.timeouts.inc();
                }
                shared
                    .metrics
                    .record(ENDPOINTS.len() - 1, e.status, Duration::ZERO);
                http::write_error(&mut stream, &e);
                return;
            }
        }
    }
}

/// Emits the one-line JSONL slow-request event when the request's total
/// latency is at or above the configured threshold.
fn maybe_log_slow(shared: &Shared, trace: &Trace, endpoint: &str, status: u16) {
    let Some(slow_ms) = shared.config.slow_ms else {
        return;
    };
    let elapsed = trace.elapsed();
    if elapsed.as_millis() < u128::from(slow_ms) {
        return;
    }
    shared.metrics.slow_requests.inc();
    eprintln!(
        "{}",
        trace.event_jsonl(
            "slow_request",
            &[
                ("endpoint", oipa_obs::json_string(endpoint)),
                ("status", status.to_string()),
                (
                    "total_ms",
                    oipa_obs::json_number(elapsed.as_secs_f64() * 1e3),
                ),
            ],
        )
    );
}

/// A successful dispatch: the 200 body and its content type (JSON for
/// every endpoint except the Prometheus exposition on `/metrics`).
struct Reply {
    body: String,
    content_type: &'static str,
}

impl Reply {
    fn json(body: String) -> Reply {
        Reply {
            body,
            content_type: http::CONTENT_TYPE_JSON,
        }
    }
}

/// Routes one request. `Ok` carries the 200 reply; `Err` the typed
/// failure (including a 500 for a caught panic).
fn dispatch(shared: &Shared, request: &Request, trace: &Trace) -> Result<Reply, HttpError> {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => healthz(shared).map(Reply::json),
        ("GET", "/stats") => stats(shared).map(Reply::json),
        ("GET", "/metrics") => Ok(Reply {
            body: shared.metrics.registry.render(),
            content_type: oipa_obs::EXPOSITION_CONTENT_TYPE,
        }),
        ("POST", "/solve") => solve(shared, &request.body, trace).map(Reply::json),
        ("POST", "/delta") => delta(shared, &request.body, trace).map(Reply::json),
        ("GET" | "POST", "/healthz" | "/stats" | "/metrics" | "/solve" | "/delta") => {
            Err(HttpError::new(
                405,
                "method_not_allowed",
                format!(
                    "{} does not accept {}; /solve and /delta take POST, /healthz, /stats \
                     and /metrics take GET",
                    path, request.method
                ),
            ))
        }
        ("GET" | "POST", _) => Err(HttpError::new(
            404,
            "not_found",
            format!(
                "{path:?} is not a route; try POST /solve, POST /delta, GET /healthz, \
                 GET /stats, GET /metrics"
            ),
        )),
        (other, _) => Err(HttpError::new(
            501,
            "not_implemented",
            format!("method {other:?} is not implemented; use GET or POST"),
        )),
    }
}

/// The `/healthz` body: process liveness, build identity, and the disk
/// tier's health. `disk` is `null` on memory-only deployments.
#[derive(serde::Serialize)]
struct HealthzBody {
    status: String,
    service: String,
    version: String,
    uptime_seconds: f64,
    disk: Option<oipa_store::TierHealthSnapshot>,
}

/// The `/healthz` handler. Always `200` while the process serves — a
/// degraded disk tier is an operating mode, not an outage — but the
/// body says which: `"ok"` when every tier is healthy, `"degraded"`
/// (with the tier's error detail) while the store is riding out a disk
/// fault on its memory/resample fallback.
fn healthz(shared: &Shared) -> Result<String, HttpError> {
    let disk = read_service(&shared.service).health();
    let status = match &disk {
        Some(h) if !h.is_healthy() => "degraded",
        _ => "ok",
    };
    let body = HealthzBody {
        status: status.to_string(),
        service: "oipa-server".to_string(),
        version: env!("CARGO_PKG_VERSION").to_string(),
        uptime_seconds: shared.started.elapsed().as_secs_f64(),
        disk,
    };
    serde_json::to_string(&body).map_err(|e| HttpError::new(500, "serialize", e.to_string()))
}

/// The identity header `GET /stats` carries alongside the snapshot:
/// which build answered, which schemas it speaks, how long it has been
/// up. Round-trips through serde so clients can assert on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerIdentity {
    /// Always `"oipa-server"`.
    pub service: String,
    /// The crate version of the serving build.
    pub version: String,
    /// The [`oipa_store::STATS_SCHEMA`] this build stamps snapshots with.
    pub stats_schema: String,
    /// The [`oipa_obs::METRICS_SCHEMA`] governing `/metrics` (frozen,
    /// additive-only).
    pub metrics_schema: String,
    /// Seconds since the server was spawned.
    pub uptime_seconds: f64,
}

/// The full `GET /stats` body: identity header + store snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsBody {
    /// Who is answering (build/schema/uptime identity).
    pub server: ServerIdentity,
    /// The pool store's two-tier counter snapshot.
    pub store: oipa_store::StatsSnapshot,
}

/// The `/stats` handler: the store snapshot under an identity header.
fn stats(shared: &Shared) -> Result<String, HttpError> {
    let body = StatsBody {
        server: ServerIdentity {
            service: "oipa-server".to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            stats_schema: oipa_store::STATS_SCHEMA.to_string(),
            metrics_schema: oipa_obs::METRICS_SCHEMA.to_string(),
            uptime_seconds: shared.started.elapsed().as_secs_f64(),
        },
        store: read_service(&shared.service).stats_snapshot(),
    };
    serde_json::to_string(&body).map_err(|e| HttpError::new(500, "serialize", e.to_string()))
}

/// The `/solve` handler: JSON in, JSON out, panics contained, phase
/// spans recorded into the request's trace.
fn solve(shared: &Shared, body: &[u8], trace: &Trace) -> Result<String, HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpError::new(400, "bad_json", "body is not valid UTF-8"))?;
    let request: SolveRequest = serde_json::from_str(text)
        .map_err(|e| HttpError::new(400, "bad_json", format!("unparseable SolveRequest: {e}")))?;
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        read_service(&shared.service).solve_traced(&request, Some(trace))
    }))
    .map_err(|_| {
        HttpError::new(
            500,
            "panic",
            "the solver panicked; the request was dropped and the server kept serving",
        )
    })?;
    let response = outcome.map_err(|e| HttpError::new(422, "solve_error", e.to_string()))?;
    serde_json::to_string(&response).map_err(|e| HttpError::new(500, "serialize", e.to_string()))
}

/// The `/delta` handler: a [`GraphDelta`] JSON body in, a
/// [`oipa_service::DeltaReport`] out. Takes the service's exclusive
/// (write) lock, so the mutation waits for every in-flight solve to
/// drain and no solve overlaps a half-applied graph.
fn delta(shared: &Shared, body: &[u8], trace: &Trace) -> Result<String, HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpError::new(400, "bad_json", "body is not valid UTF-8"))?;
    let delta: GraphDelta = serde_json::from_str(text)
        .map_err(|e| HttpError::new(400, "bad_json", format!("unparseable GraphDelta: {e}")))?;
    let started = Instant::now();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        write_service(&shared.service).apply_delta(&delta)
    }))
    .map_err(|_| {
        HttpError::new(
            500,
            "panic",
            "applying the delta panicked; the session was not modified",
        )
    })?;
    trace.record_span("delta", started, Instant::now());
    let report = outcome.map_err(|e| HttpError::new(422, "delta_error", e.to_string()))?;
    serde_json::to_string(&report).map_err(|e| HttpError::new(500, "serialize", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The handle must be shareable with a shutdown-watcher thread.
    #[test]
    fn server_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ServerHandle>();
        assert_send::<ServerConfig>();
    }
}
