//! Black-box protocol suite for `GET /metrics`: the exposition must
//! parse, the request counters must be monotone across scrapes, the
//! histogram invariants must hold, and `/stats` and `/metrics` must
//! never disagree about the store counters they both report.

mod common;

use common::{request, solve_over_wire, spawn};
use oipa_server::ServerConfig;
use std::net::SocketAddr;

/// One parsed exposition scrape: samples in file order plus a lookup map
/// keyed by the full `name{labels}` series string.
struct Scrape {
    /// `(series, value)` in exposition order.
    samples: Vec<(String, f64)>,
}

impl Scrape {
    fn get(&self, series: &str) -> f64 {
        self.samples
            .iter()
            .find(|(name, _)| name == series)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| {
                let all: Vec<&str> = self.samples.iter().map(|(n, _)| n.as_str()).collect();
                panic!("series {series:?} not in the scrape; present: {all:#?}")
            })
    }

    fn has(&self, series: &str) -> bool {
        self.samples.iter().any(|(name, _)| name == series)
    }

    /// All samples whose series string starts with `prefix`, in file
    /// (= bucket-ladder) order.
    fn with_prefix(&self, prefix: &str) -> Vec<(String, f64)> {
        self.samples
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .cloned()
            .collect()
    }
}

/// Scrapes `/metrics` and validates the exposition grammar line by line:
/// comment lines are `# HELP` / `# TYPE`, every other line is
/// `series value` with a parseable float value.
fn scrape(addr: SocketAddr) -> Scrape {
    let resp = request(addr, "GET", "/metrics", None);
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4"),
        "the exposition content type is part of the frozen wire format"
    );
    let mut samples = Vec::new();
    for line in resp.body_str().lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            assert!(
                comment.starts_with(" HELP ") || comment.starts_with(" TYPE "),
                "unknown comment line {line:?}"
            );
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without a value: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        samples.push((series.to_string(), value));
    }
    assert!(!samples.is_empty(), "an empty scrape is never right");
    Scrape { samples }
}

fn solve_requests_series() -> &'static str {
    "oipa_http_requests_total{endpoint=\"/solve\",status=\"200\"}"
}

#[test]
fn metrics_counters_are_monotone_and_histograms_sum_to_request_count() {
    let (handle, _service) = spawn(ServerConfig::default());
    let addr = handle.addr();

    // Three solves on one key: one cold (samples the pool), two warm.
    let req = common::solve_request(2, 2_000, 11);
    for _ in 0..3 {
        solve_over_wire(addr, &req);
    }

    let first = scrape(addr);
    assert_eq!(first.get(solve_requests_series()), 3.0);
    assert_eq!(
        first.get("oipa_http_request_seconds_count{endpoint=\"/solve\"}"),
        3.0,
        "the latency histogram must count every /solve request"
    );
    // Solver-phase metrics flow through the same registry: one sampling
    // run, a pool lookup and a solve per request.
    assert_eq!(
        first.get("oipa_solver_phase_seconds_count{phase=\"sampling\"}"),
        1.0
    );
    assert_eq!(
        first.get("oipa_solver_phase_seconds_count{phase=\"pool_lookup\"}"),
        3.0
    );
    assert_eq!(
        first.get("oipa_solver_phase_seconds_count{phase=\"solve\"}"),
        3.0
    );
    assert_eq!(
        first.get("oipa_pool_requests_total{outcome=\"sampled\"}"),
        1.0
    );
    assert_eq!(
        first.get("oipa_pool_requests_total{outcome=\"hit_memory\"}"),
        2.0
    );
    // Identity: the build info gauge and a sane uptime.
    assert_eq!(
        first.get(&format!(
            "oipa_build_info{{service=\"oipa-server\",version=\"{}\"}}",
            env!("CARGO_PKG_VERSION")
        )),
        1.0
    );
    assert!(first.get("oipa_uptime_seconds") >= 0.0);

    // Two more solves: every counter moves forward, never backward.
    for _ in 0..2 {
        solve_over_wire(addr, &req);
    }
    let second = scrape(addr);
    assert_eq!(second.get(solve_requests_series()), 5.0);
    assert_eq!(
        second.get("oipa_http_requests_total{endpoint=\"/metrics\",status=\"200\"}"),
        1.0,
        "the first scrape itself is counted by the second"
    );
    for (series, value) in &first.samples {
        if series.contains("_seconds") && !series.contains("_count") && !series.contains("_bucket")
        {
            continue; // gauges (uptime) and _sum lines may move freely
        }
        if series.starts_with("oipa_http_inflight")
            || series.starts_with("oipa_store_mem_entries")
            || series.starts_with("oipa_store_mem_bytes")
            || series.starts_with("oipa_build_info")
        {
            continue; // gauges
        }
        assert!(
            second.get(series) >= *value,
            "counter {series} went backwards: {} -> {}",
            value,
            second.get(series)
        );
    }

    // Histogram invariants on the /solve latency series: buckets are
    // cumulative (monotone over the ladder) and +Inf equals _count.
    let buckets = second.with_prefix("oipa_http_request_seconds_bucket{endpoint=\"/solve\"");
    assert!(buckets.len() > 2, "expected a bucket ladder: {buckets:?}");
    let mut last = 0.0;
    for (series, value) in &buckets {
        assert!(
            *value >= last,
            "bucket {series} is not cumulative: {value} < {last}"
        );
        last = *value;
    }
    let (inf_series, inf_value) = buckets.last().unwrap();
    assert!(inf_series.contains("le=\"+Inf\""), "{inf_series}");
    assert_eq!(
        *inf_value,
        second.get("oipa_http_request_seconds_count{endpoint=\"/solve\"}"),
        "+Inf bucket must equal the histogram count"
    );
    assert_eq!(*inf_value, 5.0, "five /solve requests were answered");

    handle.shutdown();
}

#[test]
fn stats_and_metrics_report_the_same_store_counters() {
    let (handle, service) = spawn(ServerConfig::default());
    let addr = handle.addr();

    let req = common::solve_request(2, 2_000, 23);
    for _ in 0..3 {
        solve_over_wire(addr, &req);
    }

    // No traffic between the two reads, so the shared atomics cannot
    // move: the snapshot behind /stats and the bridge behind /metrics
    // must agree exactly.
    let resp = request(addr, "GET", "/stats", None);
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let stats: oipa_server::StatsBody = serde_json::from_str(resp.body_str()).unwrap();
    let metrics = scrape(addr);

    assert_eq!(
        metrics.get("oipa_store_mem_lookups_total"),
        stats.store.mem.lookups as f64
    );
    assert_eq!(
        metrics.get("oipa_store_mem_hits_total"),
        stats.store.mem.hits as f64
    );
    assert_eq!(
        metrics.get("oipa_store_mem_misses_total"),
        stats.store.mem.misses as f64
    );
    assert_eq!(
        metrics.get("oipa_store_mem_entries"),
        stats.store.mem.entries as f64
    );
    assert!(
        !metrics.has("oipa_store_disk_hits_total"),
        "no disk tier attached, so no disk families may appear"
    );
    // The identity header matches what the registry reports.
    assert_eq!(stats.server.metrics_schema, oipa_server::METRICS_SCHEMA);
    assert_eq!(stats.server.stats_schema, oipa_store::STATS_SCHEMA);
    // And the in-process snapshot is the wire snapshot.
    assert_eq!(stats.store, service.read().unwrap().stats_snapshot());

    handle.shutdown();
}

#[test]
fn healthz_carries_build_and_uptime_identity() {
    let (handle, _service) = spawn(ServerConfig::default());
    let resp = request(handle.addr(), "GET", "/healthz", None);
    assert_eq!(resp.status, 200);
    let body = resp.body_str();
    assert!(
        body.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))),
        "healthz body: {body}"
    );
    assert!(body.contains("\"uptime_seconds\":"), "healthz body: {body}");
    handle.shutdown();
}

#[test]
fn slow_request_threshold_feeds_the_slow_counter() {
    // Threshold 0 ⇒ every request is "slow"; the JSONL goes to stderr,
    // the counter is what a black-box test can assert on.
    let config = ServerConfig {
        slow_ms: Some(0),
        ..ServerConfig::default()
    };
    let (handle, _service) = spawn(config);
    let addr = handle.addr();
    solve_over_wire(addr, &common::solve_request(1, 1_000, 3));
    let metrics = scrape(addr);
    assert!(
        metrics.get("oipa_http_slow_requests_total") >= 1.0,
        "a 0ms threshold must flag the solve as slow"
    );
    handle.shutdown();
}

#[test]
fn wrong_method_on_metrics_is_405_and_unknown_status_grid_falls_back() {
    let (handle, _service) = spawn(ServerConfig::default());
    let addr = handle.addr();
    let resp = request(addr, "POST", "/metrics", Some("{}"));
    resp.assert_error(405, "method_not_allowed");
    let metrics = scrape(addr);
    assert_eq!(
        metrics.get("oipa_http_requests_total{endpoint=\"/metrics\",status=\"405\"}"),
        1.0
    );
    handle.shutdown();
}
