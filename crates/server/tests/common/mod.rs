//! Shared helpers for the black-box server suites: spawn a server over a
//! real `PlannerService`, speak raw HTTP/1.1 over a socket, and parse
//! whatever comes back without trusting the server to be well-behaved.

// Each tests/*.rs binary compiles this module separately and uses a
// different subset of it.
#![allow(dead_code)]

use oipa_sampler::testkit::fig1;
use oipa_server::{ErrorBody, Server, ServerConfig, ServerHandle, SharedService};
use oipa_service::{Method, PlannerService, SolveRequest, SolveResponse};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// A fresh fig-1 service (the paper's 5-node worked example).
pub fn fig1_service() -> PlannerService {
    let (graph, probs, _) = fig1();
    PlannerService::new(graph, probs).unwrap()
}

/// Spawns a server over a fresh fig-1 service; the shared service handle
/// comes back too so tests can compute in-process reference answers on
/// *the same session* (via `.read()`) or drop it for the flush path.
pub fn spawn(config: ServerConfig) -> (ServerHandle, SharedService) {
    let service: SharedService = Arc::new(RwLock::new(fig1_service()));
    let handle = Server::spawn(Arc::clone(&service), config).unwrap();
    (handle, service)
}

/// A solve request over the fig-1 campaign. `seed` doubles as the pool
/// key discriminator: different seeds are different cold pools.
pub fn solve_request(budget: usize, theta: usize, seed: u64) -> SolveRequest {
    let (_, _, campaign) = fig1();
    let mut req = SolveRequest::new(Method::Bab, budget);
    req.campaign = Some(campaign);
    req.theta = Some(theta);
    req.seed = Some(seed);
    req.promoters = Some((0..5).collect());
    req
}

/// The answer-bearing part of a response: plan, utility bits, bound
/// bits, θ. Timing (`seconds`) and cache provenance (`pool_cache_hit`,
/// `pool_tier`) are excluded — wall-clock is never reproducible and
/// *which* request pays for sampling is scheduling-dependent.
pub fn answer(r: &SolveResponse) -> (String, u64, Option<u64>, usize) {
    (
        serde_json::to_string(&r.plan).unwrap(),
        r.utility.to_bits(),
        r.upper_bound.map(f64::to_bits),
        r.theta,
    )
}

/// A fresh per-test scratch directory under the system temp dir.
pub fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("oipa-server-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is not UTF-8")
    }

    /// The typed error body every non-2xx answer must carry.
    pub fn error_body(&self) -> ErrorBody {
        serde_json::from_str(self.body_str())
            .unwrap_or_else(|e| panic!("unparseable error body {:?}: {e}", self.body_str()))
    }

    /// Asserts status + machine-readable error kind in one shot.
    pub fn assert_error(&self, status: u16, kind: &str) {
        assert_eq!(self.status, status, "body: {}", self.body_str());
        let body = self.error_body();
        assert_eq!(body.status, status, "body echoes a different status");
        assert_eq!(body.error.kind, kind, "message: {}", body.error.message);
    }
}

pub fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .expect("connecting to the test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Reads exactly one response off the stream: head until `\r\n\r\n`,
/// then `Content-Length` body bytes. Does *not* require EOF, so it works
/// on keep-alive connections too.
pub fn read_response(stream: &mut TcpStream) -> Response {
    try_read_response(stream).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`read_response`] for tests that provoke resets.
pub fn try_read_response(stream: &mut TcpStream) -> Result<Response, String> {
    let mut buf = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if Instant::now() >= deadline {
            return Err("no response head within 30s".to_string());
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(format!(
                    "connection closed before a full response head: {:?}",
                    String::from_utf8_lossy(&buf)
                ));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(format!("reading response head: {e}")),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse().ok())
        .ok_or("response without Content-Length")?;

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        if Instant::now() >= deadline {
            return Err("no full body within 30s".to_string());
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(format!(
                    "connection closed mid-body ({} of {content_length} bytes)",
                    body.len()
                ));
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(format!("reading response body: {e}")),
        }
    }
    body.truncate(content_length);
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Writes raw bytes and reads one response — the malformed-input workhorse.
pub fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Response {
    let mut stream = connect(addr);
    stream.write_all(bytes).unwrap();
    stream.flush().unwrap();
    read_response(&mut stream)
}

/// A well-formed single-shot request (`Connection: close`).
pub fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    let mut stream = connect(addr);
    write_request(&mut stream, method, path, body, false);
    read_response(&mut stream)
}

/// Writes a well-formed request on an existing stream.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
    keep_alive: bool,
) {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    stream.flush().unwrap();
}

/// POSTs a `SolveRequest` and parses the 200 `SolveResponse`.
pub fn solve_over_wire(addr: SocketAddr, req: &SolveRequest) -> SolveResponse {
    let json = serde_json::to_string(req).unwrap();
    let resp = request(addr, "POST", "/solve", Some(&json));
    assert_eq!(resp.status, 200, "solve failed: {}", resp.body_str());
    serde_json::from_str(resp.body_str()).expect("unparseable SolveResponse")
}

/// The server must still be healthy — the canary after every abuse.
pub fn assert_healthy(addr: SocketAddr) {
    let resp = request(addr, "GET", "/healthz", None);
    assert_eq!(resp.status, 200, "healthz: {}", resp.body_str());
    assert!(
        resp.body_str().contains("\"ok\""),
        "healthz body: {}",
        resp.body_str()
    );
}
