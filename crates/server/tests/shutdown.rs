//! Graceful-shutdown suite: a drain lets in-flight requests finish,
//! refuses new connects, and — with a disk-backed store — drop-flushes
//! the batched LRU recency so a restart over the same `--store-dir`
//! serves disk-warm.

mod common;

use common::*;
use oipa_server::{Server, ServerConfig};
use oipa_service::{PlannerService, StoreConfig};
use std::io::Write;
use std::net::TcpStream;
use std::path::Path;
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A request whose first byte arrived before the drain started must be
/// read to completion and answered; a connect after the drain must not.
#[test]
fn drain_finishes_in_flight_work_and_refuses_new_connects() {
    let (handle, _service) = spawn(ServerConfig::default());
    let addr = handle.addr();

    // Start a request but only deliver half the body: the worker is now
    // provably mid-request when the drain begins.
    let body = serde_json::to_string(&solve_request(2, 2_000, 1)).unwrap();
    let mut stream = connect(addr);
    let head = format!(
        "POST /solve HTTP/1.1\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream
        .write_all(&body.as_bytes()[..body.len() / 2])
        .unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200)); // let a worker pick it up

    // Drain from another thread (shutdown blocks until fully drained).
    let drain = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(150));

    // Deliver the rest. The draining server must still answer — and
    // must override our keep-alive with `Connection: close`.
    stream
        .write_all(&body.as_bytes()[body.len() / 2..])
        .unwrap();
    stream.flush().unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(
        resp.status,
        200,
        "in-flight request dropped: {}",
        resp.body_str()
    );
    assert_eq!(
        resp.header("Connection"),
        Some("close"),
        "a draining server must not invite another request"
    );

    drain.join().expect("shutdown panicked");

    // The listener is gone: new connects fail outright (or, if the OS
    // races us a stale accept, never produce a response).
    match TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
        Err(_) => {} // refused — the expected outcome
        Ok(mut stream) => {
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            write_request(&mut stream, "GET", "/healthz", None, false);
            let mut buf = Vec::new();
            use std::io::Read;
            let _ = stream.read_to_end(&mut buf);
            assert!(
                buf.is_empty(),
                "a post-shutdown connect was answered: {:?}",
                String::from_utf8_lossy(&buf)
            );
        }
    }
}

fn disk_backed_service(dir: &Path) -> PlannerService {
    let mut service = fig1_service();
    service
        .attach_store(StoreConfig::new(dir))
        .expect("attaching the disk store");
    service
}

/// The full restart cycle: solve cold, drain, drop-flush, come back up
/// over the same store directory, and the same query is a disk-warm hit
/// with a bitwise-identical answer.
#[test]
fn restart_over_same_store_dir_serves_disk_warm() {
    let dir = tmpdir("restart-disk-warm");
    let req = solve_request(2, 2_000, 42);

    // Generation 1: cold solve, graceful drain, drop-flush.
    let first = {
        let service = Arc::new(RwLock::new(disk_backed_service(&dir)));
        let handle = Server::spawn(Arc::clone(&service), ServerConfig::default()).unwrap();
        let first = solve_over_wire(handle.addr(), &req);
        assert!(!first.pool_cache_hit, "generation 1 must sample");
        assert_eq!(first.pool_tier, None);
        handle.shutdown();
        // The drop is the flush: batched recency stamps reach the
        // manifest here, exactly like `oipa-server` exiting.
        drop(service);
        first
    };

    // Generation 2: a fresh process image over the same directory.
    let service = Arc::new(RwLock::new(disk_backed_service(&dir)));
    let handle = Server::spawn(Arc::clone(&service), ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let second = solve_over_wire(addr, &req);
    assert!(
        second.pool_cache_hit,
        "generation 2 must find the persisted pool"
    );
    assert_eq!(
        second.pool_tier.as_deref(),
        Some("disk"),
        "the hit must come from the disk tier, not a warm arena"
    );
    assert_eq!(
        answer(&first),
        answer(&second),
        "the persisted pool changed the answer"
    );

    // /stats over the wire agrees: a disk tier exists and scored the hit.
    let resp = request(addr, "GET", "/stats", None);
    let stats: oipa_server::StatsBody = serde_json::from_str(resp.body_str()).unwrap();
    let snapshot = stats.store;
    assert!(snapshot.schema_ok());
    let disk = snapshot.disk.expect("store dir ⇒ disk tier in /stats");
    assert!(disk.hits >= 1, "disk stats: {disk:?}");

    handle.shutdown();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}
