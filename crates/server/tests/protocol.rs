//! Black-box protocol suite: every malformed input a client can send
//! must map to the documented 4xx/5xx with a typed JSON error body —
//! never a panic, never a hung worker — and the server must keep serving
//! afterwards.

mod common;

use common::*;
use oipa_server::ServerConfig;
use std::io::{Read, Write};
use std::net::Shutdown;
use std::time::{Duration, Instant};

/// A server with a short read timeout so the truncation tests run in
/// test-suite time, not production time.
fn quick_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(400),
        max_body_bytes: 64 * 1024,
        ..ServerConfig::default()
    }
}

#[test]
fn malformed_request_lines_are_400() {
    let (handle, _service) = spawn(quick_config());
    let addr = handle.addr();
    for bad in [
        &b"garbage\r\n\r\n"[..],
        b"get / HTTP/1.1\r\n\r\n",               // lowercase method token
        b"GET nopath HTTP/1.1\r\n\r\n",          // target is not a path
        b"GET / HTTP/1.1 extra\r\n\r\n",         // four request-line parts
        b"GET / SPDY/3\r\n\r\n",                 // unsupported protocol
        b"\x00\x01\x02\xff binary junk\r\n\r\n", // not even text
    ] {
        let resp = send_raw(addr, bad);
        resp.assert_error(400, "bad_request");
        assert_healthy(addr);
    }
    handle.shutdown();
}

#[test]
fn unknown_routes_and_methods_get_typed_answers() {
    let (handle, _service) = spawn(quick_config());
    let addr = handle.addr();

    request(addr, "GET", "/nope", None).assert_error(404, "not_found");
    // Known path, wrong method — both directions.
    request(addr, "GET", "/solve", None).assert_error(405, "method_not_allowed");
    request(addr, "GET", "/delta", None).assert_error(405, "method_not_allowed");
    request(addr, "POST", "/healthz", Some("{}")).assert_error(405, "method_not_allowed");
    request(addr, "POST", "/stats", Some("{}")).assert_error(405, "method_not_allowed");
    // Unknown method token (valid grammar, unimplemented semantics).
    request(addr, "BREW", "/solve", Some("{}")).assert_error(501, "not_implemented");
    // Chunked framing is deliberately unsupported.
    send_raw(
        addr,
        b"POST /solve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    )
    .assert_error(501, "not_implemented");
    // Query strings are stripped for routing, not 404ed.
    let resp = request(addr, "GET", "/healthz?probe=1", None);
    assert_eq!(resp.status, 200);

    assert_healthy(addr);
    handle.shutdown();
}

#[test]
fn content_length_abuse() {
    let (handle, _service) = spawn(quick_config());
    let addr = handle.addr();

    // POST without a Content-Length: the server must not guess.
    send_raw(addr, b"POST /solve HTTP/1.1\r\nHost: t\r\n\r\n").assert_error(411, "length_required");
    // Unparseable length.
    send_raw(
        addr,
        b"POST /solve HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    )
    .assert_error(400, "bad_request");
    // A length over the configured cap is refused *before* any body
    // byte is read — the response arrives although we never send one.
    send_raw(
        addr,
        b"POST /solve HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
    )
    .assert_error(413, "body_too_large");

    assert_healthy(addr);
    handle.shutdown();
}

#[test]
fn truncated_body_times_out_with_408() {
    let config = quick_config();
    let timeout = config.read_timeout;
    let (handle, _service) = spawn(config);
    let addr = handle.addr();

    // Promise 100 bytes, deliver 10, stall. The worker must give up
    // after the read timeout — not hang forever, not answer early.
    let mut stream = connect(addr);
    stream
        .write_all(b"POST /solve HTTP/1.1\r\nContent-Length: 100\r\n\r\n0123456789")
        .unwrap();
    let started = Instant::now();
    let resp = read_response(&mut stream);
    let elapsed = started.elapsed();
    resp.assert_error(408, "request_timeout");
    // A timeout is retryable: the client is told when to come back.
    assert_eq!(
        resp.header("Retry-After"),
        Some("1"),
        "408 must carry Retry-After"
    );
    assert!(
        elapsed >= timeout,
        "408 answered after {elapsed:?}, before the {timeout:?} read timeout"
    );
    assert!(
        elapsed < timeout + Duration::from_secs(5),
        "408 took {elapsed:?} — the worker sat well past the timeout"
    );

    // Same truncation, but the client hangs up instead of stalling:
    // a clean EOF mid-body is a 400, answered promptly.
    let mut stream = connect(addr);
    stream
        .write_all(b"POST /solve HTTP/1.1\r\nContent-Length: 100\r\n\r\n0123456789")
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    read_response(&mut stream).assert_error(400, "bad_request");

    // And a head that never finishes (no \r\n\r\n) also times out.
    let mut stream = connect(addr);
    stream.write_all(b"POST /solve HT").unwrap();
    let resp = read_response(&mut stream);
    resp.assert_error(408, "request_timeout");
    assert_eq!(resp.header("Retry-After"), Some("1"));

    assert_healthy(addr);
    handle.shutdown();
}

#[test]
fn oversized_head_is_431() {
    let (handle, _service) = spawn(quick_config());
    let addr = handle.addr();
    let mut huge = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        huge.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(64)).as_bytes());
    }
    huge.extend_from_slice(b"\r\n");
    send_raw(addr, &huge).assert_error(431, "head_too_large");
    assert_healthy(addr);
    handle.shutdown();
}

#[test]
fn solve_body_validation() {
    let (handle, _service) = spawn(quick_config());
    let addr = handle.addr();

    // Not UTF-8.
    let mut raw = b"POST /solve HTTP/1.1\r\nContent-Length: 4\r\n\r\n".to_vec();
    raw.extend_from_slice(&[0xff, 0xfe, 0x80, 0x81]);
    send_raw(addr, &raw).assert_error(400, "bad_json");
    // Not JSON.
    request(addr, "POST", "/solve", Some("this is not json")).assert_error(400, "bad_json");
    // JSON, but not a SolveRequest.
    request(addr, "POST", "/solve", Some("{\"nonsense\":true}")).assert_error(400, "bad_json");
    // An unknown method name fails the typed parse, not the solver.
    request(
        addr,
        "POST",
        "/solve",
        Some("{\"method\":\"quantum\",\"budget\":2}"),
    )
    .assert_error(400, "bad_json");
    // A well-formed request the solver itself rejects: budget 0.
    let req = serde_json::to_string(&solve_request(0, 1_000, 1)).unwrap();
    request(addr, "POST", "/solve", Some(&req)).assert_error(422, "solve_error");

    assert_healthy(addr);
    handle.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let (handle, _service) = spawn(quick_config());
    let addr = handle.addr();

    let mut stream = connect(addr);
    for round in 0..3 {
        write_request(&mut stream, "GET", "/healthz", None, true);
        let resp = read_response(&mut stream);
        assert_eq!(resp.status, 200, "round {round}");
        assert_eq!(resp.header("Connection"), Some("keep-alive"));
    }
    // The final request asks to close; the server must honor it.
    write_request(&mut stream, "GET", "/healthz", None, false);
    let resp = read_response(&mut stream);
    assert_eq!(resp.header("Connection"), Some("close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "bytes after Connection: close");

    // HTTP/1.0 defaults to close without asking.
    let mut stream = connect(addr);
    stream.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let resp = read_response(&mut stream);
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("Connection"), Some("close"));

    handle.shutdown();
}

#[test]
fn idle_keep_alive_connections_expire() {
    let config = quick_config();
    let timeout = config.read_timeout;
    let (handle, _service) = spawn(config);
    let addr = handle.addr();

    // Connect, say nothing. The server closes the idle connection after
    // the read timeout instead of parking a worker on it forever.
    let mut stream = connect(addr);
    let started = Instant::now();
    let mut buf = [0u8; 64];
    let n = loop {
        match stream.read(&mut buf) {
            Ok(n) => break n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("waiting for idle close: {e}"),
        }
    };
    assert_eq!(
        n, 0,
        "an idle connection must be closed silently, not answered"
    );
    assert!(
        started.elapsed() >= timeout,
        "idle connection closed after only {:?}",
        started.elapsed()
    );
    assert_healthy(addr);
    handle.shutdown();
}

#[test]
fn stats_endpoint_serves_a_schema_tagged_snapshot() {
    let (handle, service) = spawn(quick_config());
    let addr = handle.addr();

    // Cold solve, then a warm repeat, over the wire.
    let req = solve_request(2, 2_000, 7);
    let cold = solve_over_wire(addr, &req);
    assert!(!cold.pool_cache_hit);
    let warm = solve_over_wire(addr, &req);
    assert!(warm.pool_cache_hit);

    let resp = request(addr, "GET", "/stats", None);
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let stats: oipa_server::StatsBody = serde_json::from_str(resp.body_str()).unwrap();
    assert_eq!(stats.server.service, "oipa-server");
    assert_eq!(stats.server.version, env!("CARGO_PKG_VERSION"));
    assert_eq!(stats.server.stats_schema, oipa_store::STATS_SCHEMA);
    assert_eq!(stats.server.metrics_schema, oipa_server::METRICS_SCHEMA);
    assert!(stats.server.uptime_seconds >= 0.0);
    let snapshot = stats.store;
    assert!(snapshot.schema_ok(), "schema: {}", snapshot.schema);
    assert_eq!(
        snapshot.mem.lookups,
        snapshot.mem.hits + snapshot.mem.misses
    );
    assert!(snapshot.mem.hits >= 1, "the warm repeat must be a hit");
    assert!(snapshot.disk.is_none(), "no store dir ⇒ no disk tier");
    // The wire snapshot is the in-process snapshot.
    assert_eq!(snapshot, service.read().unwrap().stats_snapshot());

    assert_eq!(handle.requests(), 3, "two solves + one stats");
    handle.shutdown();
}
