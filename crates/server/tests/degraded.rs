//! Degraded-mode serving over the wire: a disk outage under the store
//! must keep `/solve` answering bitwise-identically, flip `/healthz`
//! from `"ok"` to `"degraded"` (still 200 — the process is fine, a tier
//! is not), surface tier health in `/stats`, and flip back to `"ok"`
//! once the fault clears and the request-ticked probe succeeds.

mod common;

use common::*;
use oipa_server::{Server, ServerConfig, ServerHandle};
use oipa_service::{SolveResponse, StoreConfig};
use oipa_store::io::{FaultIo, FaultSchedule};
use std::sync::Arc;

/// A server over a fig-1 service backed by a fault-injected store.
fn spawn_faulted(name: &str) -> (ServerHandle, Arc<FaultIo>) {
    let dir = tmpdir(name);
    let fault = FaultIo::over_real(FaultSchedule::none());
    let mut service = fig1_service();
    service
        .attach_store(StoreConfig::new(&dir).with_io(fault.clone()))
        .unwrap();
    let handle = Server::spawn(
        Arc::new(std::sync::RwLock::new(service)),
        ServerConfig::default(),
    )
    .unwrap();
    (handle, fault)
}

fn solve_wire(addr: std::net::SocketAddr, seed: u64) -> SolveResponse {
    solve_over_wire(addr, &solve_request(2, 400, seed))
}

#[test]
fn healthz_reports_degraded_during_an_outage_and_ok_after() {
    let (handle, fault) = spawn_faulted("healthz-flip");
    let addr = handle.addr();

    // Healthy: status "ok", with the disk detail present and healthy.
    let resp = request(addr, "GET", "/healthz", None);
    assert_eq!(resp.status, 200);
    assert!(
        resp.body_str().contains("\"status\":\"ok\""),
        "{}",
        resp.body_str()
    );
    assert!(
        resp.body_str().contains("\"healthy\""),
        "{}",
        resp.body_str()
    );

    // Trip the tier: outage + one request that has to touch the disk.
    fault.set_outage(true);
    solve_wire(addr, 1);
    let resp = request(addr, "GET", "/healthz", None);
    assert_eq!(resp.status, 200, "degraded is not down: still 200");
    assert!(
        resp.body_str().contains("\"status\":\"degraded\""),
        "{}",
        resp.body_str()
    );
    // The detail names the failure for operators.
    assert!(
        resp.body_str().contains("\"last_error\""),
        "{}",
        resp.body_str()
    );

    // `/stats` carries the same tier health.
    let stats = request(addr, "GET", "/stats", None);
    assert_eq!(stats.status, 200);
    assert!(
        stats.body_str().contains("\"disk_health\""),
        "{}",
        stats.body_str()
    );
    assert!(
        stats.body_str().contains("\"degraded\""),
        "{}",
        stats.body_str()
    );

    // Fault clears; cold requests tick the probe until recovery.
    fault.set_outage(false);
    for seed in 10..18 {
        solve_wire(addr, seed);
    }
    let resp = request(addr, "GET", "/healthz", None);
    assert!(
        resp.body_str().contains("\"status\":\"ok\""),
        "tier did not recover: {}",
        resp.body_str()
    );
    assert_healthy(addr);
    handle.shutdown();
}

#[test]
fn solve_answers_are_bitwise_identical_through_a_full_outage() {
    let (handle, fault) = spawn_faulted("outage-parity");
    let addr = handle.addr();

    // Reference answers from a store-free in-process service.
    let reference = fig1_service();
    let expect = |seed: u64| answer(&reference.solve(&solve_request(2, 400, seed)).unwrap());

    // One healthy answer, then the disk disappears entirely.
    assert_eq!(answer(&solve_wire(addr, 1)), expect(1));
    fault.set_outage(true);
    for seed in [2, 3, 1] {
        // fresh cold keys and one warm key, all mid-outage
        assert_eq!(
            answer(&solve_wire(addr, seed)),
            expect(seed),
            "seed {seed} diverged during the outage"
        );
    }
    fault.set_outage(false);
    for seed in [4, 5, 1] {
        assert_eq!(
            answer(&solve_wire(addr, seed)),
            expect(seed),
            "seed {seed} diverged during recovery"
        );
    }
    assert_healthy(addr);
    handle.shutdown();
}
