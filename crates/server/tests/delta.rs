//! Surgical invalidation over the wire: `POST /delta` mutates the live
//! session behind the exclusive lock, and the next solve for a cached
//! key repairs its pool — with answers bitwise identical to a service
//! cold-started on the post-delta inputs.

mod common;

use common::*;
use oipa_server::ServerConfig;
use oipa_service::{DeltaReport, EdgeChange, GraphDelta, PlannerService, TopicProb};

/// A valid fig-1 delta: one brand-new edge plus one reweight.
fn fig1_delta() -> GraphDelta {
    GraphDelta {
        insert: vec![EdgeChange {
            source: 0, // a -> c did not exist
            target: 2,
            probs: vec![TopicProb {
                topic: 1,
                prob: 0.7,
            }],
        }],
        reweight: vec![EdgeChange {
            source: 4, // e -> d existed on z2
            target: 3,
            probs: vec![TopicProb {
                topic: 1,
                prob: 0.4,
            }],
        }],
        ..GraphDelta::default()
    }
}

#[test]
fn delta_over_wire_repairs_the_cached_pool() {
    let (handle, service) = spawn(ServerConfig::default());
    let addr = handle.addr();
    let req = solve_request(2, 2_000, 7);

    let cold = solve_over_wire(addr, &req);
    assert!(!cold.pool_cache_hit && cold.pool_repair.is_none());

    let delta = fig1_delta();
    let body = serde_json::to_string(&delta).unwrap();
    let resp = request(addr, "POST", "/delta", Some(&body));
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let report: DeltaReport = serde_json::from_str(resp.body_str()).unwrap();
    assert_eq!(report.epoch, 1);
    assert_eq!(report.ops, 2);
    assert!(report.dirty_targets > 0);
    assert_eq!(report.pools_dirty, 1, "the cached pool went stale");
    assert_eq!(report.pools_purged, 0, "deltas never purge");

    // The next solve repairs the stale pool instead of resampling it.
    let repaired = solve_over_wire(addr, &req);
    let repair = repaired.pool_repair.expect("the pool was repaired");
    assert_eq!((repair.from_epoch, repair.to_epoch), (0, 1));
    assert!(repair.sets_resampled <= repair.sets_total);
    assert!(!repaired.pool_cache_hit, "repair is not a free hit");

    // Reference: a separate session cold-started on the mutated inputs.
    let (graph, table, _) = oipa_sampler::testkit::fig1();
    let app = graph.apply_delta(&delta).unwrap();
    let table = table.apply_delta(&delta, &app).unwrap();
    let reference = PlannerService::new(app.graph, table).unwrap();
    let expect = reference.solve(&req).unwrap();
    assert_eq!(
        answer(&repaired),
        answer(&expect),
        "repaired answer diverged from a cold solve on the new graph"
    );

    // Warm from here on, at the new epoch.
    let warm = solve_over_wire(addr, &req);
    assert!(warm.pool_cache_hit && warm.pool_repair.is_none());
    assert_eq!(answer(&warm), answer(&repaired));

    // The in-process view agrees about where the lineage stands.
    assert_eq!(service.read().unwrap().lineage().unwrap().epoch(), 1);
    handle.shutdown();
}

#[test]
fn delta_rejections_are_typed_and_harmless() {
    let (handle, service) = spawn(ServerConfig::default());
    let addr = handle.addr();

    request(addr, "POST", "/delta", Some("{ not json")).assert_error(400, "bad_json");
    // Valid JSON, empty delta: rejected before touching the session.
    request(addr, "POST", "/delta", Some("{}")).assert_error(422, "delta_error");
    // Inserting an edge that already exists is all-or-nothing rejected.
    let dup = GraphDelta {
        insert: vec![EdgeChange {
            source: 0,
            target: 1,
            probs: vec![TopicProb {
                topic: 0,
                prob: 0.5,
            }],
        }],
        ..GraphDelta::default()
    };
    let body = serde_json::to_string(&dup).unwrap();
    request(addr, "POST", "/delta", Some(&body)).assert_error(422, "delta_error");

    // Every rejection left the session at epoch 0 and still serving.
    assert_eq!(service.read().unwrap().lineage().unwrap().epoch(), 0);
    assert_healthy(addr);
    handle.shutdown();
}

/// Deltas serialize across concurrent solve traffic: hammer `/solve`
/// on one key while applying deltas, then check the session is coherent
/// — final epoch is the number of deltas and the final answer matches a
/// cold session on the final inputs.
#[test]
fn deltas_interleave_safely_with_solve_traffic() {
    let (handle, service) = spawn(ServerConfig::default());
    let addr = handle.addr();
    let req = solve_request(2, 2_000, 9);
    solve_over_wire(addr, &req); // warm the key at epoch 0

    let deltas = [fig1_delta()];
    let solvers: Vec<_> = (0..3)
        .map(|_| {
            let req = req.clone();
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let resp = solve_over_wire(addr, &req);
                    assert_eq!(resp.k, 2);
                }
            })
        })
        .collect();
    for delta in &deltas {
        let body = serde_json::to_string(delta).unwrap();
        let resp = request(addr, "POST", "/delta", Some(&body));
        assert_eq!(resp.status, 200, "{}", resp.body_str());
    }
    for solver in solvers {
        solver.join().expect("solver thread panicked");
    }

    assert_eq!(
        service.read().unwrap().lineage().unwrap().epoch(),
        deltas.len() as u64
    );
    // After the dust settles the served answer equals the cold answer
    // on the final inputs.
    let (graph, table, _) = oipa_sampler::testkit::fig1();
    let app = graph.apply_delta(&deltas[0]).unwrap();
    let table = table.apply_delta(&deltas[0], &app).unwrap();
    let reference = PlannerService::new(app.graph, table).unwrap();
    let expect = reference.solve(&req).unwrap();
    let settled = solve_over_wire(addr, &req);
    assert_eq!(answer(&settled), answer(&expect));
    handle.shutdown();
}
