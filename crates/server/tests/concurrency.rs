//! Concurrency suite over real sockets: N client threads hammering one
//! server must get answers bitwise-identical to in-process calls, a
//! shared cold key must be sampled exactly once, and the connection cap
//! must reject with 503 only above the cap — then recover cleanly.

mod common;

use common::*;
use oipa_server::ServerConfig;
use oipa_service::SolveResponse;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// N threads × the same request mix over real sockets answer bitwise
/// what the in-process service answers — the wire adds serialization,
/// not nondeterminism.
#[test]
fn wire_answers_match_in_process_bitwise() {
    let (handle, _service) = spawn(ServerConfig::default());
    let addr = handle.addr();

    // 6 request shapes over 2 distinct pool keys (seeds 11 and 12).
    let requests: Vec<_> = [(2usize, 11u64), (3, 11), (1, 11), (2, 12), (3, 12), (4, 12)]
        .into_iter()
        .map(|(k, seed)| solve_request(k, 2_000, seed))
        .collect();

    // In-process reference on a *separate* fresh session: the server
    // must not be the oracle for itself.
    let reference: Vec<_> = {
        let service = fig1_service();
        requests
            .iter()
            .map(|r| answer(&service.solve(r).unwrap()))
            .collect()
    };

    let threads = 4;
    let barrier = Arc::new(Barrier::new(threads));
    let answers: Vec<Vec<_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = Arc::clone(&barrier);
                let requests = &requests;
                scope.spawn(move || {
                    barrier.wait();
                    // Each thread walks the mix from its own offset so
                    // cold keys collide across threads.
                    (0..requests.len())
                        .map(|i| {
                            let idx = (i + t) % requests.len();
                            (idx, answer(&solve_over_wire(addr, &requests[idx])))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let mut per_thread = vec![None; requests.len()];
                for (idx, ans) in h.join().expect("client thread panicked") {
                    per_thread[idx] = Some(ans);
                }
                per_thread.into_iter().map(Option::unwrap).collect()
            })
            .collect()
    });

    for (t, thread_answers) in answers.iter().enumerate() {
        for (i, ans) in thread_answers.iter().enumerate() {
            assert_eq!(
                ans, &reference[i],
                "thread {t}: wire request {i} diverged from the in-process answer"
            );
        }
    }
    assert_eq!(handle.requests(), (threads * requests.len()) as u64);
    assert_eq!(handle.rejected_503(), 0, "nothing should hit the cap here");
    handle.shutdown();
}

/// Many clients racing on one cold key: exactly one response pays for
/// sampling, everyone else reads the cached pool — over the wire, same
/// as in-process.
#[test]
fn shared_cold_key_is_sampled_exactly_once() {
    let (handle, service) = spawn(ServerConfig::default());
    let addr = handle.addr();

    let req = solve_request(2, 2_000, 99);
    let threads = 6;
    let barrier = Arc::new(Barrier::new(threads));
    let responses: Vec<SolveResponse> = std::thread::scope(|scope| {
        (0..threads)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let req = &req;
                scope.spawn(move || {
                    barrier.wait();
                    solve_over_wire(addr, req)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    let cold = responses.iter().filter(|r| !r.pool_cache_hit).count();
    assert_eq!(
        cold, 1,
        "exactly one request may pay for sampling the shared key"
    );
    for pair in responses.windows(2) {
        assert_eq!(answer(&pair[0]), answer(&pair[1]), "answers diverged");
    }
    // The arena counts a miss per lookup that raced the sampler, but
    // only one entry exists and the books still balance.
    let stats = service.read().unwrap().arena_stats();
    assert_eq!(stats.entries, 1, "one key ⇒ one arena entry");
    assert_eq!(stats.lookups, stats.hits + stats.misses);
    handle.shutdown();
}

/// The admission cap: connections above it get a fast 503, connections
/// under it keep working, and closing the hogs restores full service.
#[test]
fn connection_cap_rejects_with_503_and_recovers() {
    let config = ServerConfig {
        threads: 2,
        max_connections: 2,
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let (handle, _service) = spawn(config);
    let addr = handle.addr();

    // Two idle keep-alive connections fill the cap.
    let hog_a = connect(addr);
    let hog_b = connect(addr);
    // Give the accept thread time to register both.
    std::thread::sleep(Duration::from_millis(100));

    // The third connection is over the cap: the accept thread answers
    // 503 unprompted (before the client sends a byte) and closes, so a
    // bare connect + read observes the rejection.
    let mut over_cap = connect(addr);
    let resp = read_response(&mut over_cap);
    resp.assert_error(503, "overloaded");
    // Overload is transient by definition: the rejection tells the
    // client when to retry.
    assert_eq!(
        resp.header("Retry-After"),
        Some("1"),
        "503 must carry Retry-After"
    );
    assert_eq!(handle.rejected_503(), 1);

    // Release the hogs; the server must recover to full service. The
    // slot frees when a worker notices the close, so retry briefly —
    // tolerating resets from connects that still hit the cap.
    drop(hog_a);
    drop(hog_b);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut stream = connect(addr);
        // Lenient write: a still-capped server already closed on us.
        let _ = std::io::Write::write_all(
            &mut stream,
            b"GET /healthz HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        );
        match try_read_response(&mut stream) {
            Ok(resp) if resp.status == 200 => break,
            _ => {
                assert!(
                    Instant::now() < deadline,
                    "server did not recover from the cap within 10s"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }

    // And real work flows again.
    let solved = solve_over_wire(addr, &solve_request(2, 1_000, 3));
    assert_eq!(solved.k, 2);
    handle.shutdown();
}
