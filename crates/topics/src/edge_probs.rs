//! The per-edge topic-probability table `p(e|z)`.
//!
//! Stored as a flat CSR over edge ids: three parallel arrays
//! (`offsets`, `topics`, `probs`). With the sparse real-world supports the
//! paper reports (≈1.5 topics per edge on `tweet`), this costs ~10 bytes
//! per non-zero instead of `4·|Z|` bytes per edge.

use crate::vector::{SparseTopicVector, TopicVector};
use crate::{Result, TopicError};
use oipa_graph::{DeltaApplication, DiGraph, EdgeId, GraphDelta, TopicProb};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Immutable `p(e|z)` table for a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeTopicProbs {
    topic_count: usize,
    offsets: Vec<u32>,
    topics: Vec<u16>,
    probs: Vec<f32>,
}

impl EdgeTopicProbs {
    /// Number of edges covered.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of topics `|Z|`.
    #[inline]
    pub fn topic_count(&self) -> usize {
        self.topic_count
    }

    /// Total non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.topics.len()
    }

    /// Average non-zero topic entries per edge — the sparsity statistic the
    /// paper quotes for `tweet` (≈1.5) to explain baseline quality collapse.
    pub fn avg_support(&self) -> f64 {
        if self.edge_count() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.edge_count() as f64
        }
    }

    /// The sparse row `(topics, probs)` of one edge.
    #[inline]
    pub fn row(&self, edge: EdgeId) -> (&[u16], &[f32]) {
        let lo = self.offsets[edge as usize] as usize;
        let hi = self.offsets[edge as usize + 1] as usize;
        (&self.topics[lo..hi], &self.probs[lo..hi])
    }

    /// The paper's `p(t, e) = t · p(e)`, clamped into `[0, 1]`.
    #[inline]
    pub fn piece_prob(&self, piece: &TopicVector, edge: EdgeId) -> f32 {
        let (topics, probs) = self.row(edge);
        let mut acc = 0.0f32;
        for (&z, &p) in topics.iter().zip(probs) {
            acc += piece.as_slice()[z as usize] * p;
        }
        acc.clamp(0.0, 1.0)
    }

    /// Materializes the homogeneous influence graph `G_t` for one piece:
    /// a flat per-edge probability vector (the paper's Fig. 1b/1c).
    pub fn materialize(&self, piece: &TopicVector) -> Vec<f32> {
        (0..self.edge_count() as EdgeId)
            .map(|e| self.piece_prob(piece, e))
            .collect()
    }

    /// Validates the table covers exactly `graph`'s edges.
    pub fn check_against(&self, graph: &DiGraph) -> Result<()> {
        if self.edge_count() != graph.edge_count() {
            return Err(TopicError::EdgeCountMismatch {
                graph_edges: graph.edge_count(),
                table_rows: self.edge_count(),
            });
        }
        Ok(())
    }

    /// A content fingerprint over the topic count and every sparse row in
    /// edge-id order (probabilities hashed by bit pattern). Combined with
    /// [`oipa_graph::DiGraph::fingerprint`] it identifies the sampling
    /// inputs a persistent pool cache was built from.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = oipa_graph::hashing::FxHasher::default();
        h.write_u64(self.topic_count as u64);
        h.write_u64(self.offsets.len() as u64);
        for &off in &self.offsets {
            h.write_u32(off);
        }
        for (&z, &p) in self.topics.iter().zip(&self.probs) {
            h.write_u32(z as u32);
            h.write_u32(p.to_bits());
        }
        h.finish()
    }

    /// Mean of `p(e|z)` over all non-zero entries.
    pub fn mean_nonzero_prob(&self) -> f64 {
        if self.probs.is_empty() {
            0.0
        } else {
            self.probs.iter().map(|&p| p as f64).sum::<f64>() / self.probs.len() as f64
        }
    }

    /// Gathers rows for a subgraph extraction: `new_table.row(i)` equals
    /// `self.row(old_edge_ids[i])`. Pairs with
    /// `oipa_graph::subgraph::Extraction::old_edge_of_new` so probability
    /// tables follow component/k-core extractions.
    pub fn gather(&self, old_edge_ids: &[EdgeId]) -> EdgeTopicProbs {
        let mut offsets = Vec::with_capacity(old_edge_ids.len() + 1);
        offsets.push(0u32);
        let mut topics = Vec::new();
        let mut probs = Vec::new();
        for &old in old_edge_ids {
            let (t, p) = self.row(old);
            topics.extend_from_slice(t);
            probs.extend_from_slice(p);
            offsets.push(topics.len() as u32);
        }
        EdgeTopicProbs {
            topic_count: self.topic_count,
            offsets,
            topics,
            probs,
        }
    }

    /// Rebuilds the table for a delta-applied graph.
    ///
    /// Surviving edges keep their rows, re-indexed through
    /// [`DeltaApplication::remap`] (CSR edge ids shift under insertion and
    /// removal); reweighted edges take the delta's replacement rows;
    /// inserted edges take the delta's new rows. The result covers exactly
    /// `app.graph`'s edges, so `new_table.row(app.remap[e])` equals
    /// `self.row(e)` for every untouched edge — which is what keeps live
    /// RR walks bitwise-stable across a delta.
    pub fn apply_delta(
        &self,
        delta: &GraphDelta,
        app: &DeltaApplication,
    ) -> Result<EdgeTopicProbs> {
        if app.remap.len() != self.edge_count() {
            return Err(TopicError::EdgeCountMismatch {
                graph_edges: app.remap.len(),
                table_rows: self.edge_count(),
            });
        }
        let validate = |probs: &[TopicProb]| -> Result<SparseTopicVector> {
            SparseTopicVector::new(
                probs.iter().map(|tp| (tp.topic, tp.prob)).collect(),
                self.topic_count,
            )
        };
        // Row provenance per new edge id: carried over from an old edge,
        // or a fresh row from the delta (insert/reweight).
        let mut carried: Vec<Option<EdgeId>> = vec![None; app.graph.edge_count()];
        for (old, new) in app.remap.iter().enumerate() {
            if let Some(new) = new {
                carried[*new as usize] = Some(old as EdgeId);
            }
        }
        let mut fresh: Vec<Option<SparseTopicVector>> = vec![None; app.graph.edge_count()];
        for (change, &old_id) in delta.reweight.iter().zip(&app.reweighted_ids) {
            let new_id = app.remap[old_id as usize].expect("reweighted edge survives the delta");
            fresh[new_id as usize] = Some(validate(&change.probs)?);
        }
        for (change, &new_id) in delta.insert.iter().zip(&app.inserted_ids) {
            fresh[new_id as usize] = Some(validate(&change.probs)?);
        }
        let mut offsets = Vec::with_capacity(app.graph.edge_count() + 1);
        offsets.push(0u32);
        let mut topics = Vec::with_capacity(self.nnz());
        let mut probs = Vec::with_capacity(self.nnz());
        for new_id in 0..app.graph.edge_count() {
            if let Some(row) = &fresh[new_id] {
                topics.extend_from_slice(&row.topics);
                probs.extend_from_slice(&row.probs);
            } else if let Some(old_id) = carried[new_id] {
                let (t, p) = self.row(old_id);
                topics.extend_from_slice(t);
                probs.extend_from_slice(p);
            }
            offsets.push(topics.len() as u32);
        }
        Ok(EdgeTopicProbs {
            topic_count: self.topic_count,
            offsets,
            topics,
            probs,
        })
    }

    /// Collapses the topic dimension into a single scalar probability per
    /// edge by averaging non-zero entries — the "plain IC graph" the
    /// paper's topic-oblivious `IM` baseline runs on.
    pub fn collapse_mean(&self) -> Vec<f32> {
        (0..self.edge_count())
            .map(|e| {
                let (topics, probs) = self.row(e as EdgeId);
                if topics.is_empty() {
                    0.0
                } else {
                    probs.iter().sum::<f32>() / topics.len() as f32
                }
            })
            .collect()
    }
}

/// Incremental builder for [`EdgeTopicProbs`].
#[derive(Debug, Clone)]
pub struct EdgeProbsBuilder {
    topic_count: usize,
    rows: Vec<SparseTopicVector>,
}

impl EdgeProbsBuilder {
    /// Creates a builder for `edge_count` edges over `topic_count` topics;
    /// rows default to empty (edge never transmits).
    pub fn new(edge_count: usize, topic_count: usize) -> Self {
        EdgeProbsBuilder {
            topic_count,
            rows: vec![SparseTopicVector::empty(); edge_count],
        }
    }

    /// Sets one edge's sparse row.
    pub fn set(&mut self, edge: EdgeId, row: SparseTopicVector) -> Result<&mut Self> {
        for &z in &row.topics {
            if z as usize >= self.topic_count {
                return Err(TopicError::TopicOutOfRange {
                    topic: z as usize,
                    topic_count: self.topic_count,
                });
            }
        }
        self.rows[edge as usize] = row;
        Ok(self)
    }

    /// Sets a single `(topic, prob)` entry, merging with existing entries.
    pub fn set_entry(&mut self, edge: EdgeId, topic: u16, prob: f32) -> Result<&mut Self> {
        let mut entries: Vec<(u16, f32)> = {
            let row = &self.rows[edge as usize];
            row.topics
                .iter()
                .copied()
                .zip(row.probs.iter().copied())
                .filter(|&(z, _)| z != topic)
                .collect()
        };
        entries.push((topic, prob));
        let row = SparseTopicVector::new(entries, self.topic_count)?;
        self.rows[edge as usize] = row;
        Ok(self)
    }

    /// Finalizes into CSR form.
    pub fn build(self) -> EdgeTopicProbs {
        let mut offsets = Vec::with_capacity(self.rows.len() + 1);
        offsets.push(0u32);
        let nnz: usize = self.rows.iter().map(|r| r.support()).sum();
        let mut topics = Vec::with_capacity(nnz);
        let mut probs = Vec::with_capacity(nnz);
        for row in self.rows {
            topics.extend_from_slice(&row.topics);
            probs.extend_from_slice(&row.probs);
            offsets.push(topics.len() as u32);
        }
        EdgeTopicProbs {
            topic_count: self.topic_count,
            offsets,
            topics,
            probs,
        }
    }
}

/// Random-synthesis parameters for [`synthesize_random`].
#[derive(Debug, Clone, Copy)]
pub struct SynthesisParams {
    /// Number of topics `|Z|`.
    pub topic_count: usize,
    /// Expected non-zero topics per edge (≥ 1 entries are drawn with this
    /// mean, truncated to `topic_count`).
    pub avg_support: f64,
    /// Upper bound on each probability entry; entries are drawn uniformly
    /// from `(0, max_prob]` and then divided by the target's in-degree
    /// (weighted-cascade style) when `weighted_cascade` is set.
    pub max_prob: f32,
    /// Whether to scale probabilities by `1/in_degree(target)` — the
    /// standard weighted-cascade convention of the IM literature.
    pub weighted_cascade: bool,
}

/// Synthesizes a random `p(e|z)` table for `graph`.
///
/// Per edge, a support size is drawn from a geometric-like distribution
/// with the requested mean, topic ids uniformly without replacement, and
/// probabilities per [`SynthesisParams`].
pub fn synthesize_random<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    params: SynthesisParams,
) -> EdgeTopicProbs {
    assert!(params.topic_count > 0 && params.topic_count <= u16::MAX as usize);
    assert!(params.avg_support >= 1.0);
    assert!(params.max_prob > 0.0 && params.max_prob <= 1.0);
    let mut builder = EdgeProbsBuilder::new(graph.edge_count(), params.topic_count);
    let topic_pick = Uniform::new(0, params.topic_count as u16);
    // Support = 1 + Geometric(p) with mean avg_support.
    let extra_mean = params.avg_support - 1.0;
    let geo_p = 1.0 / (1.0 + extra_mean);
    for v in graph.nodes() {
        let in_deg = graph.in_degree(v).max(1) as f32;
        for e in graph.in_edges(v) {
            let mut support = 1usize;
            while support < params.topic_count && rng.gen_range(0.0..1.0) >= geo_p {
                support += 1;
            }
            let mut entries: Vec<(u16, f32)> = Vec::with_capacity(support);
            while entries.len() < support {
                let z = topic_pick.sample(rng);
                if entries.iter().any(|&(t, _)| t == z) {
                    continue;
                }
                let mut p = rng.gen_range(f32::EPSILON..=params.max_prob);
                if params.weighted_cascade {
                    p /= in_deg;
                }
                entries.push((z, p));
            }
            builder
                .set(
                    e.id,
                    SparseTopicVector::new(entries, params.topic_count).expect("valid"),
                )
                .expect("edge in range");
        }
    }
    builder.build()
}

/// Derives `p(e|z)` from per-user topic profiles: for edge `(u, v)`,
/// `p(e|z) ∝ base · u_z · v_z` truncated to the `top_k` strongest topics
/// and scaled by `1/in_degree(v)` — the construction the paper uses for
/// `dblp` (research fields as topics, co-author edges weighted by shared
/// fields) and `tweet` (LDA profiles).
pub fn from_user_profiles(
    graph: &DiGraph,
    profiles: &[TopicVector],
    base: f32,
    top_k: usize,
) -> Result<EdgeTopicProbs> {
    assert_eq!(
        profiles.len(),
        graph.node_count(),
        "one profile per node required"
    );
    let topic_count = if profiles.is_empty() {
        0
    } else {
        profiles[0].dim()
    };
    let mut builder = EdgeProbsBuilder::new(graph.edge_count(), topic_count.max(1));
    let mut scored: Vec<(u16, f32)> = Vec::new();
    for v in graph.nodes() {
        let in_deg = graph.in_degree(v).max(1) as f32;
        for e in graph.in_edges(v) {
            let pu = &profiles[e.source as usize];
            let pv = &profiles[v as usize];
            if pu.dim() != topic_count {
                return Err(TopicError::DimensionMismatch {
                    expected: topic_count,
                    actual: pu.dim(),
                });
            }
            scored.clear();
            for z in 0..topic_count {
                let w = pu.get(z) * pv.get(z);
                if w > 0.0 {
                    scored.push((z as u16, w));
                }
            }
            scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN weights"));
            scored.truncate(top_k);
            let entries: Vec<(u16, f32)> = scored
                .iter()
                .map(|&(z, w)| (z, (base * w / in_deg).clamp(0.0, 1.0)))
                .collect();
            builder.set(e.id, SparseTopicVector::new(entries, topic_count.max(1))?)?;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_graph() -> DiGraph {
        DiGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let g = tiny_graph();
        let mut b = EdgeProbsBuilder::new(g.edge_count(), 4);
        b.set(0, SparseTopicVector::new(vec![(1, 0.5)], 4).unwrap())
            .unwrap();
        b.set_entry(1, 2, 0.25).unwrap();
        b.set_entry(1, 3, 0.75).unwrap();
        let t = b.build();
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.row(0), (&[1u16][..], &[0.5f32][..]));
        assert_eq!(t.row(1).0, &[2u16, 3]);
        assert_eq!(t.row(2).0, &[] as &[u16]);
        t.check_against(&g).unwrap();
    }

    #[test]
    fn set_entry_overwrites_topic() {
        let mut b = EdgeProbsBuilder::new(1, 4);
        b.set_entry(0, 2, 0.25).unwrap();
        b.set_entry(0, 2, 0.5).unwrap();
        let t = b.build();
        assert_eq!(t.row(0), (&[2u16][..], &[0.5f32][..]));
    }

    #[test]
    fn piece_prob_dot() {
        let mut b = EdgeProbsBuilder::new(1, 2);
        b.set(
            0,
            SparseTopicVector::new(vec![(0, 0.4), (1, 0.8)], 2).unwrap(),
        )
        .unwrap();
        let t = b.build();
        let piece = TopicVector::new(vec![0.5, 0.5]).unwrap();
        assert!((t.piece_prob(&piece, 0) - 0.6).abs() < 1e-6);
        let mat = t.materialize(&piece);
        assert_eq!(mat.len(), 1);
        assert!((mat[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn check_against_mismatch() {
        let g = tiny_graph();
        let t = EdgeProbsBuilder::new(2, 2).build();
        assert!(t.check_against(&g).is_err());
    }

    #[test]
    fn synthesis_respects_params() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 200, 2000);
        let t = synthesize_random(
            &mut rng,
            &g,
            SynthesisParams {
                topic_count: 50,
                avg_support: 1.5,
                max_prob: 1.0,
                weighted_cascade: true,
            },
        );
        assert_eq!(t.edge_count(), 2000);
        let support = t.avg_support();
        assert!(
            (1.2..=1.9).contains(&support),
            "avg support {support} far from 1.5"
        );
        // Weighted cascade keeps probabilities within [0, 1].
        for e in 0..t.edge_count() as EdgeId {
            for &p in t.row(e).1 {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn collapse_mean_sane() {
        let mut b = EdgeProbsBuilder::new(2, 3);
        b.set(
            0,
            SparseTopicVector::new(vec![(0, 0.2), (1, 0.4)], 3).unwrap(),
        )
        .unwrap();
        let t = b.build();
        let flat = t.collapse_mean();
        assert!((flat[0] - 0.3).abs() < 1e-6);
        assert_eq!(flat[1], 0.0);
    }

    #[test]
    fn user_profiles_shared_interest() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let profiles = vec![
            TopicVector::new(vec![1.0, 0.0]).unwrap(),
            TopicVector::new(vec![0.5, 0.5]).unwrap(),
        ];
        let t = from_user_profiles(&g, &profiles, 1.0, 2).unwrap();
        // Only topic 0 is shared: p = base * 1.0 * 0.5 / in_deg(1)=1.
        assert_eq!(t.row(0).0, &[0u16]);
        assert!((t.row(0).1[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gather_reorders_rows() {
        let mut b = EdgeProbsBuilder::new(3, 4);
        b.set(0, SparseTopicVector::new(vec![(0, 0.1)], 4).unwrap())
            .unwrap();
        b.set(2, SparseTopicVector::new(vec![(3, 0.9)], 4).unwrap())
            .unwrap();
        let t = b.build();
        let g = t.gather(&[2, 0]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.row(0), t.row(2));
        assert_eq!(g.row(1), t.row(0));
        assert_eq!(g.topic_count(), 4);
    }

    #[test]
    fn empty_table() {
        let t = EdgeProbsBuilder::new(0, 5).build();
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.avg_support(), 0.0);
        assert_eq!(t.mean_nonzero_prob(), 0.0);
    }

    #[test]
    fn apply_delta_tracks_remap_reweight_and_insert() {
        use oipa_graph::{EdgeChange, GraphDelta, TopicProb};
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let mut b = EdgeProbsBuilder::new(g.edge_count(), 3);
        for e in g.edges() {
            b.set_entry(e.id, (e.id % 3) as u16, 0.1 + 0.1 * e.id as f32)
                .unwrap();
        }
        let table = b.build();
        let delta = GraphDelta {
            insert: vec![EdgeChange {
                source: 3,
                target: 0,
                probs: vec![TopicProb {
                    topic: 2,
                    prob: 0.7,
                }],
            }],
            remove: vec![(0, 2)],
            reweight: vec![EdgeChange {
                source: 1,
                target: 3,
                probs: vec![TopicProb {
                    topic: 1,
                    prob: 0.55,
                }],
            }],
        };
        let app = g.apply_delta(&delta).unwrap();
        let new_table = table.apply_delta(&delta, &app).unwrap();
        assert!(new_table.check_against(&app.graph).is_ok());
        // Untouched edges keep their exact rows through the remap.
        for e in g.edges() {
            let touched = (e.source, e.target) == (0, 2) || (e.source, e.target) == (1, 3);
            if touched {
                continue;
            }
            let new_id = app.remap[e.id as usize].unwrap();
            assert_eq!(new_table.row(new_id), table.row(e.id));
        }
        // The reweighted row replaces the old one.
        let rw = app.remap[g.find_edge(1, 3).unwrap().id as usize].unwrap();
        assert_eq!(new_table.row(rw), (&[1u16][..], &[0.55f32][..]));
        // The inserted row lands at the inserted id.
        assert_eq!(
            new_table.row(app.inserted_ids[0]),
            (&[2u16][..], &[0.7f32][..])
        );
        // Bad rows are rejected.
        let bad = GraphDelta {
            reweight: vec![EdgeChange {
                source: 0,
                target: 1,
                probs: vec![TopicProb {
                    topic: 9,
                    prob: 0.5,
                }],
            }],
            ..GraphDelta::default()
        };
        let bad_app = g.apply_delta(&bad).unwrap();
        assert!(table.apply_delta(&bad, &bad_app).is_err());
    }
}
