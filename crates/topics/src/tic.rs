//! Topic-aware Independent Cascade (TIC) influence-probability learning.
//!
//! The paper learns `p(e|z)` for its `lastfm` dataset "based on its action
//! logs", citing the TIC model of Barbieri, Bonchi & Manco (ICDM 2012).
//! This module implements an EM learner in that family:
//!
//! * **E-step** — for every activation of a user `v` in a cascade, credit
//!   is distributed over the in-neighbors active before `v`,
//!   proportionally to the current estimate of `p(t_c, e)` (the piece-level
//!   pass-through probability under the cascade item's topic mix).
//! * **M-step** — per edge and topic, the new estimate is credited
//!   successes over exposure opportunities, both weighted by the item's
//!   topic proportion `t_{c,z}`.
//!
//! The learner recovers the *relative* strength of edges well, which is all
//! the OIPA pipeline needs (the optimization consumes the probabilities,
//! not their generative story).

use crate::edge_probs::{EdgeProbsBuilder, EdgeTopicProbs};
use crate::vector::{SparseTopicVector, TopicVector};
use oipa_graph::{DiGraph, EdgeId, NodeId};

/// One recorded cascade: the item's topic distribution plus time-stamped
/// user activations (ascending times; ties allowed, earlier index wins).
#[derive(Debug, Clone)]
pub struct Cascade {
    /// Topic distribution of the propagated item.
    pub item_topics: TopicVector,
    /// `(user, activation_time)` pairs, one per activated user.
    pub activations: Vec<(NodeId, u32)>,
}

/// Hyper-parameters for [`learn_edge_probs`].
#[derive(Debug, Clone, Copy)]
pub struct TicParams {
    /// Number of EM iterations.
    pub iterations: usize,
    /// Initial probability for every (edge, topic) with observed exposure.
    pub init_prob: f32,
    /// Entries below this after the final M-step are dropped (sparsifies
    /// the output table).
    pub prune_below: f32,
    /// Laplace smoothing added to the denominator of the M-step.
    pub smoothing: f64,
}

impl Default for TicParams {
    fn default() -> Self {
        TicParams {
            iterations: 10,
            init_prob: 0.3,
            prune_below: 1e-3,
            smoothing: 1.0,
        }
    }
}

/// Per-(edge, topic) accumulators used across EM iterations.
struct Trial {
    edge: EdgeId,
    topic: u16,
    /// Σ_c t_{c,z} · γ (credited successes) — recomputed each E-step.
    success: f64,
    /// Σ_c t_{c,z} over exposure opportunities — fixed.
    exposure: f64,
    /// Current probability estimate.
    prob: f32,
}

/// Learns `p(e|z)` from cascades by EM. See module docs.
pub fn learn_edge_probs(
    graph: &DiGraph,
    topic_count: usize,
    cascades: &[Cascade],
    params: TicParams,
) -> crate::Result<EdgeTopicProbs> {
    // --- Pass 1: collect, per cascade, the (influencer edge, activated) and
    // (influencer edge, not-activated) exposure events. -------------------
    //
    // An exposure of edge (u, v) exists in cascade c when u activated and v
    // was observable: either v activated strictly later (success candidate)
    // or v never activated (failure).
    struct Event {
        cascade: usize,
        edge: EdgeId,
        /// Index of the activation of `v` inside the cascade, or `usize::MAX`
        /// for a failure (v never activated).
        activation_idx: usize,
    }
    let mut events: Vec<Event> = Vec::new();
    // activation_time[v] per cascade, rebuilt cheaply with a stamp array.
    let mut act_time: Vec<u32> = vec![0; graph.node_count()];
    let mut act_stamp: Vec<u32> = vec![0; graph.node_count()];
    let mut act_idx: Vec<usize> = vec![0; graph.node_count()];
    for (ci, cascade) in cascades.iter().enumerate() {
        if cascade.item_topics.dim() != topic_count {
            return Err(crate::TopicError::DimensionMismatch {
                expected: topic_count,
                actual: cascade.item_topics.dim(),
            });
        }
        let stamp = ci as u32 + 1;
        for (ai, &(v, t)) in cascade.activations.iter().enumerate() {
            act_time[v as usize] = t;
            act_stamp[v as usize] = stamp;
            act_idx[v as usize] = ai;
        }
        for &(u, tu) in &cascade.activations {
            // Every out-edge of an activated node is an exposure.
            for e in graph.out_edges(u) {
                let v = e.target;
                if act_stamp[v as usize] == stamp {
                    let tv = act_time[v as usize];
                    if tv > tu {
                        events.push(Event {
                            cascade: ci,
                            edge: e.id,
                            activation_idx: act_idx[v as usize],
                        });
                    }
                    // tv <= tu: v activated first or simultaneously — no trial.
                } else {
                    events.push(Event {
                        cascade: ci,
                        edge: e.id,
                        activation_idx: usize::MAX,
                    });
                }
            }
        }
    }

    // --- Build per-(edge, topic) trials from events. ---------------------
    let mut trial_index: oipa_graph::hashing::FxHashMap<(EdgeId, u16), usize> = Default::default();
    let mut trials: Vec<Trial> = Vec::new();
    for ev in &events {
        let t = &cascades[ev.cascade].item_topics;
        for (z, &w) in t.as_slice().iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            let key = (ev.edge, z as u16);
            let idx = *trial_index.entry(key).or_insert_with(|| {
                trials.push(Trial {
                    edge: ev.edge,
                    topic: z as u16,
                    success: 0.0,
                    exposure: 0.0,
                    prob: params.init_prob,
                });
                trials.len() - 1
            });
            trials[idx].exposure += w as f64;
        }
    }

    // Group success-candidate events by (cascade, activated index) so the
    // E-step can normalize credit across competing influencers.
    let mut groups: oipa_graph::hashing::FxHashMap<(usize, usize), Vec<EdgeId>> =
        Default::default();
    for ev in &events {
        if ev.activation_idx != usize::MAX {
            groups
                .entry((ev.cascade, ev.activation_idx))
                .or_default()
                .push(ev.edge);
        }
    }

    // Helper: current piece-level probability of an edge under cascade topics.
    let edge_piece_prob = |trials: &[Trial],
                           trial_index: &oipa_graph::hashing::FxHashMap<(EdgeId, u16), usize>,
                           edge: EdgeId,
                           t: &TopicVector| {
        let mut acc = 0.0f64;
        for (z, &w) in t.as_slice().iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if let Some(&idx) = trial_index.get(&(edge, z as u16)) {
                acc += w as f64 * trials[idx].prob as f64;
            }
        }
        acc
    };

    // --- EM iterations. ---------------------------------------------------
    for _ in 0..params.iterations {
        for tr in &mut trials {
            tr.success = 0.0;
        }
        // E-step: distribute one unit of credit per activation group.
        for (&(ci, _ai), edges) in &groups {
            let t = &cascades[ci].item_topics;
            let total: f64 = edges
                .iter()
                .map(|&e| edge_piece_prob(&trials, &trial_index, e, t))
                .sum();
            if total <= 0.0 {
                continue;
            }
            for &e in edges {
                let gamma = edge_piece_prob(&trials, &trial_index, e, t) / total;
                for (z, &w) in t.as_slice().iter().enumerate() {
                    if w <= 0.0 {
                        continue;
                    }
                    if let Some(&idx) = trial_index.get(&(e, z as u16)) {
                        trials[idx].success += gamma * w as f64;
                    }
                }
            }
        }
        // M-step.
        for tr in &mut trials {
            let p = tr.success / (tr.exposure + params.smoothing);
            tr.prob = (p as f32).clamp(0.0, 1.0);
        }
    }

    // --- Emit sparse table. ------------------------------------------------
    let mut per_edge: oipa_graph::hashing::FxHashMap<EdgeId, Vec<(u16, f32)>> = Default::default();
    for tr in &trials {
        if tr.prob >= params.prune_below {
            per_edge
                .entry(tr.edge)
                .or_default()
                .push((tr.topic, tr.prob));
        }
    }
    let mut builder = EdgeProbsBuilder::new(graph.edge_count(), topic_count);
    for (edge, entries) in per_edge {
        builder.set(edge, SparseTopicVector::new(entries, topic_count)?)?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Forward IC simulation against a planted table (local, to avoid a
    /// circular dependency on the sampler crate).
    fn simulate_cascade<R: Rng>(
        rng: &mut R,
        graph: &DiGraph,
        planted: &EdgeTopicProbs,
        item: &TopicVector,
        seed: NodeId,
    ) -> Cascade {
        let mut active: Vec<(NodeId, u32)> = vec![(seed, 0)];
        let mut is_active = vec![false; graph.node_count()];
        is_active[seed as usize] = true;
        let mut frontier = vec![seed];
        let mut time = 0u32;
        while !frontier.is_empty() {
            time += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for e in graph.out_edges(u) {
                    if !is_active[e.target as usize] {
                        let p = planted.piece_prob(item, e.id);
                        if rng.gen_range(0.0f32..1.0) < p {
                            is_active[e.target as usize] = true;
                            active.push((e.target, time));
                            next.push(e.target);
                        }
                    }
                }
            }
            frontier = next;
        }
        Cascade {
            item_topics: item.clone(),
            activations: active,
        }
    }

    #[test]
    fn recovers_strong_vs_weak_edges() {
        let mut rng = StdRng::seed_from_u64(99);
        // Star: node 0 -> {1..9} strong on topic 0, weak on topic 1.
        let edges: Vec<(u32, u32)> = (1..10).map(|v| (0, v)).collect();
        let g = DiGraph::from_edges(10, &edges).unwrap();
        let mut b = EdgeProbsBuilder::new(g.edge_count(), 2);
        for e in 0..g.edge_count() as EdgeId {
            b.set(
                e,
                SparseTopicVector::new(vec![(0, 0.8), (1, 0.05)], 2).unwrap(),
            )
            .unwrap();
        }
        let planted = b.build();
        let t0 = TopicVector::one_hot(2, 0).unwrap();
        let t1 = TopicVector::one_hot(2, 1).unwrap();
        let mut cascades = Vec::new();
        for i in 0..400 {
            let item = if i % 2 == 0 { &t0 } else { &t1 };
            cascades.push(simulate_cascade(&mut rng, &g, &planted, item, 0));
        }
        let learned = learn_edge_probs(&g, 2, &cascades, TicParams::default()).unwrap();
        // Learned topic-0 probabilities should dominate topic-1 on each edge.
        let mut t0_mean = 0.0f64;
        let mut t1_mean = 0.0f64;
        for e in 0..g.edge_count() as EdgeId {
            t0_mean += learned.row(e).1.first().copied().unwrap_or(0.0) as f64;
            t1_mean += learned
                .row(e)
                .0
                .iter()
                .position(|&z| z == 1)
                .map(|i| learned.row(e).1[i] as f64)
                .unwrap_or(0.0);
        }
        assert!(
            t0_mean > 3.0 * t1_mean.max(1e-9),
            "topic-0 strength not recovered: t0 {t0_mean} vs t1 {t1_mean}"
        );
    }

    #[test]
    fn no_cascades_empty_table() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let learned = learn_edge_probs(&g, 4, &[], TicParams::default()).unwrap();
        assert_eq!(learned.nnz(), 0);
        assert_eq!(learned.edge_count(), 2);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let cascade = Cascade {
            item_topics: TopicVector::uniform(3),
            activations: vec![(0, 0)],
        };
        assert!(learn_edge_probs(&g, 2, &[cascade], TicParams::default()).is_err());
    }

    #[test]
    fn never_fired_edge_gets_low_probability() {
        // 0 -> 1 and 0 -> 2; cascades always activate 1, never 2.
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let t = TopicVector::one_hot(1, 0).unwrap();
        let cascades: Vec<Cascade> = (0..100)
            .map(|_| Cascade {
                item_topics: t.clone(),
                activations: vec![(0, 0), (1, 1)],
            })
            .collect();
        let learned = learn_edge_probs(&g, 1, &cascades, TicParams::default()).unwrap();
        let e01 = g.find_edge(0, 1).unwrap().id;
        let e02 = g.find_edge(0, 2).unwrap().id;
        let p01 = learned.row(e01).1.first().copied().unwrap_or(0.0);
        let p02 = learned.row(e02).1.first().copied().unwrap_or(0.0);
        assert!(p01 > 0.5, "fired edge should be strong, got {p01}");
        assert!(p02 < 0.05, "silent edge should be pruned/weak, got {p02}");
    }
}
