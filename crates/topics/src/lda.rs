//! Collapsed-Gibbs Latent Dirichlet Allocation.
//!
//! The paper prepares its `tweet` dataset by treating each user's hashtags
//! as a document and running LDA (ref 5) to obtain per-user topic
//! distributions, from which edge probabilities are derived. This module
//! provides that substrate: a compact collapsed Gibbs sampler producing
//! document-topic distributions ([`LdaModel::doc_topics`]) and topic-word
//! distributions ([`LdaModel::topic_words`]).

use crate::vector::TopicVector;
use rand::Rng;

/// LDA hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LdaParams {
    /// Number of latent topics `K`.
    pub topics: usize,
    /// Symmetric document–topic Dirichlet prior.
    pub alpha: f64,
    /// Symmetric topic–word Dirichlet prior.
    pub beta: f64,
    /// Gibbs sweeps over the whole corpus.
    pub iterations: usize,
}

impl Default for LdaParams {
    fn default() -> Self {
        LdaParams {
            topics: 10,
            alpha: 0.1,
            beta: 0.01,
            iterations: 100,
        }
    }
}

/// A fitted LDA model.
#[derive(Debug, Clone)]
pub struct LdaModel {
    params: LdaParams,
    vocab_size: usize,
    /// `doc_topic_counts[d][k]`.
    doc_topic_counts: Vec<Vec<u32>>,
    /// `topic_word_counts[k][w]`.
    topic_word_counts: Vec<Vec<u32>>,
    /// `topic_totals[k]` = Σ_w topic_word_counts[k][w].
    topic_totals: Vec<u64>,
}

impl LdaModel {
    /// Fits LDA on `docs` (token-id lists over a vocabulary of
    /// `vocab_size`) by collapsed Gibbs sampling.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        docs: &[Vec<u32>],
        vocab_size: usize,
        params: LdaParams,
    ) -> Self {
        assert!(params.topics >= 1);
        assert!(vocab_size >= 1);
        let k = params.topics;
        let mut doc_topic_counts = vec![vec![0u32; k]; docs.len()];
        let mut topic_word_counts = vec![vec![0u32; vocab_size]; k];
        let mut topic_totals = vec![0u64; k];
        // Topic assignment per token, flattened.
        let mut assignments: Vec<Vec<u8>> = docs
            .iter()
            .map(|d| d.iter().map(|_| 0u8).collect())
            .collect();
        assert!(k <= u8::MAX as usize, "topic count must fit in u8");

        // Random initialization.
        for (d, doc) in docs.iter().enumerate() {
            for (i, &w) in doc.iter().enumerate() {
                assert!((w as usize) < vocab_size, "token id out of vocab");
                let z = rng.gen_range(0..k);
                assignments[d][i] = z as u8;
                doc_topic_counts[d][z] += 1;
                topic_word_counts[z][w as usize] += 1;
                topic_totals[z] += 1;
            }
        }

        let v_beta = vocab_size as f64 * params.beta;
        let mut weights = vec![0.0f64; k];
        for _sweep in 0..params.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = assignments[d][i] as usize;
                    // Remove token from counts.
                    doc_topic_counts[d][old] -= 1;
                    topic_word_counts[old][w as usize] -= 1;
                    topic_totals[old] -= 1;
                    // Full conditional.
                    let mut total = 0.0;
                    for z in 0..k {
                        let a = doc_topic_counts[d][z] as f64 + params.alpha;
                        let b = (topic_word_counts[z][w as usize] as f64 + params.beta)
                            / (topic_totals[z] as f64 + v_beta);
                        let wgt = a * b;
                        weights[z] = wgt;
                        total += wgt;
                    }
                    let mut target = rng.gen_range(0.0..total);
                    let mut new = k - 1;
                    for (z, &wgt) in weights.iter().enumerate() {
                        if target < wgt {
                            new = z;
                            break;
                        }
                        target -= wgt;
                    }
                    assignments[d][i] = new as u8;
                    doc_topic_counts[d][new] += 1;
                    topic_word_counts[new][w as usize] += 1;
                    topic_totals[new] += 1;
                }
            }
        }

        LdaModel {
            params,
            vocab_size,
            doc_topic_counts,
            topic_word_counts,
            topic_totals,
        }
    }

    /// Number of topics.
    pub fn topic_count(&self) -> usize {
        self.params.topics
    }

    /// Smoothed document–topic distribution for document `d`.
    pub fn doc_topic(&self, d: usize) -> TopicVector {
        let counts = &self.doc_topic_counts[d];
        let total: f64 = counts.iter().map(|&c| c as f64).sum::<f64>()
            + self.params.topics as f64 * self.params.alpha;
        let values: Vec<f32> = counts
            .iter()
            .map(|&c| ((c as f64 + self.params.alpha) / total) as f32)
            .collect();
        TopicVector::new(values).expect("smoothed proportions are valid probabilities")
    }

    /// All document–topic distributions.
    pub fn doc_topics(&self) -> Vec<TopicVector> {
        (0..self.doc_topic_counts.len())
            .map(|d| self.doc_topic(d))
            .collect()
    }

    /// Smoothed topic–word distribution for topic `k` (length `vocab_size`).
    pub fn topic_words(&self, k: usize) -> Vec<f64> {
        let denom = self.topic_totals[k] as f64 + self.vocab_size as f64 * self.params.beta;
        self.topic_word_counts[k]
            .iter()
            .map(|&c| (c as f64 + self.params.beta) / denom)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Synthetic corpus: two topics with disjoint vocabularies.
    fn corpus(rng: &mut StdRng, docs_per_topic: usize, doc_len: usize) -> Vec<Vec<u32>> {
        let mut docs = Vec::new();
        for topic in 0..2u32 {
            for _ in 0..docs_per_topic {
                let doc: Vec<u32> = (0..doc_len)
                    .map(|_| topic * 10 + rng.gen_range(0..10u32))
                    .collect();
                docs.push(doc);
            }
        }
        docs
    }

    #[test]
    fn separates_disjoint_topics() {
        let mut rng = StdRng::seed_from_u64(12);
        let docs = corpus(&mut rng, 30, 40);
        let model = LdaModel::fit(
            &mut rng,
            &docs,
            20,
            LdaParams {
                topics: 2,
                iterations: 150,
                ..LdaParams::default()
            },
        );
        // Each document should be dominated by one topic…
        let mut dominant: Vec<usize> = Vec::new();
        for d in 0..docs.len() {
            let tv = model.doc_topic(d);
            let (argmax, max) = tv
                .as_slice()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, &v)| (i, v))
                .unwrap();
            assert!(max > 0.8, "doc {d} not concentrated: {max}");
            dominant.push(argmax);
        }
        // …and the two halves of the corpus should land on different topics.
        let first_half = dominant[..30].iter().filter(|&&z| z == dominant[0]).count();
        let second_half = dominant[30..].iter().filter(|&&z| z == dominant[0]).count();
        assert!(first_half >= 28, "first half split: {first_half}/30");
        assert!(second_half <= 2, "second half leaked: {second_half}/30");
    }

    #[test]
    fn doc_topic_is_distribution() {
        let mut rng = StdRng::seed_from_u64(5);
        let docs = corpus(&mut rng, 5, 10);
        let model = LdaModel::fit(&mut rng, &docs, 20, LdaParams::default());
        for d in 0..docs.len() {
            let tv = model.doc_topic(d);
            let sum: f32 = tv.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "doc {d} sums to {sum}");
        }
    }

    #[test]
    fn topic_words_are_distributions() {
        let mut rng = StdRng::seed_from_u64(5);
        let docs = corpus(&mut rng, 5, 10);
        let model = LdaModel::fit(&mut rng, &docs, 20, LdaParams::default());
        for k in 0..model.topic_count() {
            let tw = model.topic_words(k);
            let sum: f64 = tw.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_documents_ok() {
        let mut rng = StdRng::seed_from_u64(1);
        let docs = vec![vec![], vec![0, 1]];
        let model = LdaModel::fit(&mut rng, &docs, 2, LdaParams::default());
        let tv = model.doc_topic(0);
        // Empty doc falls back to the uniform prior.
        for &v in tv.as_slice() {
            assert!((v - 1.0 / 10.0).abs() < 1e-6);
        }
    }
}
