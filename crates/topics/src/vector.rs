//! Dense and sparse topic vectors.

use crate::{Result, TopicError};
use serde::{Deserialize, Serialize};

/// A dense vector over the topic set `Z`, used for piece topic
/// distributions `t` and user interest profiles.
///
/// Probabilities are stored as `f32`: the tables are large (one row per
/// edge on multi-million-edge graphs) and the algorithms tolerate single
/// precision — estimation error from sampling dominates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicVector {
    values: Vec<f32>,
}

impl TopicVector {
    /// Creates a vector from raw values, validating each lies in `[0, 1]`.
    pub fn new(values: Vec<f32>) -> Result<Self> {
        for &v in &values {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(TopicError::BadProbability { value: v as f64 });
            }
        }
        Ok(TopicVector { values })
    }

    /// All-zero vector of dimension `z`.
    pub fn zeros(z: usize) -> Self {
        TopicVector {
            values: vec![0.0; z],
        }
    }

    /// One-hot vector: probability 1 on `topic`, 0 elsewhere.
    ///
    /// This is how the paper generates experimental pieces (§VI-A: "we
    /// generate the topic vector by uniformly sampling a non-zero topic
    /// dimension") and how the Max-Clique reduction builds its pieces.
    pub fn one_hot(z: usize, topic: usize) -> Result<Self> {
        if topic >= z {
            return Err(TopicError::TopicOutOfRange {
                topic,
                topic_count: z,
            });
        }
        let mut values = vec![0.0; z];
        values[topic] = 1.0;
        Ok(TopicVector { values })
    }

    /// Uniform distribution over all topics.
    pub fn uniform(z: usize) -> Self {
        assert!(z > 0, "uniform vector needs at least one topic");
        TopicVector {
            values: vec![1.0 / z as f32; z],
        }
    }

    /// Normalizes the vector to sum 1 (no-op on the zero vector).
    pub fn normalized(mut self) -> Self {
        let sum: f32 = self.values.iter().sum();
        if sum > 0.0 {
            for v in &mut self.values {
                *v /= sum;
            }
        }
        self
    }

    /// Dimension `|Z|`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Raw slice access.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Value for one topic.
    #[inline]
    pub fn get(&self, topic: usize) -> f32 {
        self.values[topic]
    }

    /// Dense dot product.
    pub fn dot(&self, other: &TopicVector) -> Result<f32> {
        if self.dim() != other.dim() {
            return Err(TopicError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Dot product against a sparse vector: `Σ_z t_z · p(e|z)`.
    ///
    /// This is the paper's `p(t, e) = t · p(e)`, the innermost operation of
    /// RR-set sampling.
    #[inline]
    pub fn dot_sparse(&self, sparse: &SparseTopicVector) -> f32 {
        let mut acc = 0.0f32;
        for (&z, &p) in sparse.topics.iter().zip(&sparse.probs) {
            acc += self.values[z as usize] * p;
        }
        acc
    }

    /// Number of non-zero entries.
    pub fn support(&self) -> usize {
        self.values.iter().filter(|&&v| v > 0.0).count()
    }
}

/// A sparse per-edge topic-probability row `p(e)`: only the topics under
/// which the edge transmits with non-zero probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseTopicVector {
    /// Topic indices (ascending).
    pub topics: Vec<u16>,
    /// Probabilities aligned with `topics`.
    pub probs: Vec<f32>,
}

impl SparseTopicVector {
    /// Builds a sparse vector, validating probabilities, sorting by topic,
    /// and rejecting duplicate topic ids (which would make sparse and
    /// dense dot products disagree).
    pub fn new(mut entries: Vec<(u16, f32)>, topic_count: usize) -> Result<Self> {
        entries.sort_unstable_by_key(|&(z, _)| z);
        for w in entries.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(TopicError::DuplicateTopic {
                    topic: w[0].0 as usize,
                });
            }
        }
        let mut topics = Vec::with_capacity(entries.len());
        let mut probs = Vec::with_capacity(entries.len());
        for (z, p) in entries {
            if z as usize >= topic_count {
                return Err(TopicError::TopicOutOfRange {
                    topic: z as usize,
                    topic_count,
                });
            }
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(TopicError::BadProbability { value: p as f64 });
            }
            if p > 0.0 {
                topics.push(z);
                probs.push(p);
            }
        }
        Ok(SparseTopicVector { topics, probs })
    }

    /// The empty (never transmits) row.
    pub fn empty() -> Self {
        SparseTopicVector {
            topics: Vec::new(),
            probs: Vec::new(),
        }
    }

    /// Number of non-zero entries.
    #[inline]
    pub fn support(&self) -> usize {
        self.topics.len()
    }

    /// Probability under a single topic (0 if absent).
    pub fn get(&self, topic: u16) -> f32 {
        match self.topics.binary_search(&topic) {
            Ok(i) => self.probs[i],
            Err(_) => 0.0,
        }
    }

    /// Densifies into a full `|Z|`-length vector.
    pub fn to_dense(&self, topic_count: usize) -> Vec<f32> {
        let mut out = vec![0.0; topic_count];
        for (&z, &p) in self.topics.iter().zip(&self.probs) {
            out[z as usize] = p;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_and_get() {
        let t = TopicVector::one_hot(3, 1).unwrap();
        assert_eq!(t.as_slice(), &[0.0, 1.0, 0.0]);
        assert_eq!(t.get(1), 1.0);
        assert_eq!(t.support(), 1);
        assert!(TopicVector::one_hot(3, 3).is_err());
    }

    #[test]
    fn uniform_sums_to_one() {
        let t = TopicVector::uniform(4);
        let s: f32 = t.as_slice().iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize() {
        let t = TopicVector::new(vec![0.2, 0.2]).unwrap().normalized();
        assert!((t.get(0) - 0.5).abs() < 1e-6);
        // Zero vector stays zero.
        let z = TopicVector::zeros(2).normalized();
        assert_eq!(z.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(TopicVector::new(vec![1.5]).is_err());
        assert!(TopicVector::new(vec![-0.1]).is_err());
        assert!(TopicVector::new(vec![f32::NAN]).is_err());
    }

    #[test]
    fn dense_dot() {
        let a = TopicVector::new(vec![0.5, 0.5]).unwrap();
        let b = TopicVector::new(vec![1.0, 0.0]).unwrap();
        assert!((a.dot(&b).unwrap() - 0.5).abs() < 1e-6);
        let c = TopicVector::uniform(3);
        assert!(a.dot(&c).is_err());
    }

    #[test]
    fn sparse_dot_matches_dense() {
        let piece = TopicVector::new(vec![0.3, 0.0, 0.7]).unwrap();
        let edge = SparseTopicVector::new(vec![(2, 0.5), (0, 1.0)], 3).unwrap();
        let sparse = piece.dot_sparse(&edge);
        let dense_edge = TopicVector::new(edge.to_dense(3)).unwrap();
        let dense = piece.dot(&dense_edge).unwrap();
        assert!((sparse - dense).abs() < 1e-6);
        assert!((sparse - (0.3 * 1.0 + 0.7 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn sparse_sorted_and_pruned() {
        let v = SparseTopicVector::new(vec![(5, 0.1), (1, 0.0), (3, 0.2)], 8).unwrap();
        assert_eq!(v.topics, vec![3, 5]);
        assert_eq!(v.support(), 2);
        assert_eq!(v.get(1), 0.0);
        assert!((v.get(3) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn sparse_validates() {
        assert!(SparseTopicVector::new(vec![(9, 0.5)], 8).is_err());
        assert!(SparseTopicVector::new(vec![(0, 2.0)], 8).is_err());
        assert!(
            SparseTopicVector::new(vec![(3, 0.2), (3, 0.4)], 8).is_err(),
            "duplicate topics must be rejected"
        );
    }

    #[test]
    fn fig1_example_vectors() {
        // The running example's pieces: t1 = (1, 0), t2 = (0, 1).
        let t1 = TopicVector::one_hot(2, 0).unwrap();
        let t2 = TopicVector::one_hot(2, 1).unwrap();
        let edge_topic1 = SparseTopicVector::new(vec![(0, 1.0)], 2).unwrap();
        assert_eq!(t1.dot_sparse(&edge_topic1), 1.0);
        assert_eq!(t2.dot_sparse(&edge_topic1), 0.0);
    }
}
