//! Binary serialization for `p(e|z)` tables.
//!
//! Probability learning (TIC EM, LDA derivation) is the slowest part of
//! dataset preparation; pipelines persist the learned table next to the
//! graph. Format (little-endian, magic-tagged):
//!
//! ```text
//! [8]   magic "OIPAPROB"
//! [4]   version (u32)
//! [4]   topic_count (u32)
//! [8]   edge_count (u64)
//! [8]   nnz (u64)
//! [(m+1)·4] row offsets (u32)       — CSR offsets over edges
//! [nnz·2]   topic ids (u16)
//! [nnz·4]   probabilities (f32)
//! ```

use crate::edge_probs::{EdgeProbsBuilder, EdgeTopicProbs};
use crate::vector::SparseTopicVector;
use crate::{Result, TopicError};
use oipa_graph::binio::{read_f32, read_u32, read_u64, write_f32, write_u32, write_u64};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"OIPAPROB";
const VERSION: u32 = 1;

/// Serializes a table to a writer.
pub fn write_table<W: Write>(table: &EdgeTopicProbs, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, table.topic_count() as u32)?;
    write_u64(&mut w, table.edge_count() as u64)?;
    write_u64(&mut w, table.nnz() as u64)?;
    let mut offset = 0u32;
    write_u32(&mut w, 0)?;
    for e in 0..table.edge_count() {
        offset += table.row(e as u32).0.len() as u32;
        write_u32(&mut w, offset)?;
    }
    for e in 0..table.edge_count() {
        for &z in table.row(e as u32).0 {
            w.write_all(&z.to_le_bytes())?;
        }
    }
    for e in 0..table.edge_count() {
        for &p in table.row(e as u32).1 {
            write_f32(&mut w, p)?;
        }
    }
    w.flush()
}

/// Deserializes a table from a reader.
pub fn read_table<R: Read>(reader: R) -> Result<EdgeTopicProbs> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(TopicError::Serialization(
            "bad magic: not an OIPA probability table".to_string(),
        ));
    }
    let version = read_u32(&mut r).map_err(io_err)?;
    if version != VERSION {
        return Err(TopicError::Serialization(format!(
            "unsupported table version {version}"
        )));
    }
    let topic_count = read_u32(&mut r).map_err(io_err)? as usize;
    let edge_count = read_u64(&mut r).map_err(io_err)? as usize;
    let nnz = read_u64(&mut r).map_err(io_err)? as usize;
    let mut offsets = Vec::with_capacity(edge_count + 1);
    for _ in 0..=edge_count {
        offsets.push(read_u32(&mut r).map_err(io_err)?);
    }
    let mut topics = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let mut buf = [0u8; 2];
        r.read_exact(&mut buf).map_err(io_err)?;
        topics.push(u16::from_le_bytes(buf));
    }
    let mut probs = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        probs.push(read_f32(&mut r).map_err(io_err)?);
    }
    let mut builder = EdgeProbsBuilder::new(edge_count, topic_count.max(1));
    for e in 0..edge_count {
        let (lo, hi) = (offsets[e] as usize, offsets[e + 1] as usize);
        let entries: Vec<(u16, f32)> = topics[lo..hi]
            .iter()
            .copied()
            .zip(probs[lo..hi].iter().copied())
            .collect();
        builder.set(
            e as u32,
            SparseTopicVector::new(entries, topic_count.max(1))?,
        )?;
    }
    Ok(builder.build())
}

fn io_err(e: std::io::Error) -> TopicError {
    TopicError::Serialization(e.to_string())
}

/// Serializes to a file path.
pub fn write_table_file<P: AsRef<Path>>(table: &EdgeTopicProbs, path: P) -> std::io::Result<()> {
    write_table(table, std::fs::File::create(path)?)
}

/// Deserializes from a file path.
pub fn read_table_file<P: AsRef<Path>>(path: P) -> Result<EdgeTopicProbs> {
    read_table(std::fs::File::open(path).map_err(io_err)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_random_table() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 80, 500);
        let table = crate::synthesize_random(
            &mut rng,
            &g,
            crate::SynthesisParams {
                topic_count: 12,
                avg_support: 2.0,
                max_prob: 0.9,
                weighted_cascade: true,
            },
        );
        let mut buf = Vec::new();
        write_table(&table, &mut buf).unwrap();
        let back = read_table(&buf[..]).unwrap();
        assert_eq!(table, back);
    }

    #[test]
    fn roundtrip_with_empty_rows() {
        let mut builder = EdgeProbsBuilder::new(3, 4);
        builder
            .set(1, SparseTopicVector::new(vec![(2, 0.5)], 4).unwrap())
            .unwrap();
        let table = builder.build();
        let mut buf = Vec::new();
        write_table(&table, &mut buf).unwrap();
        let back = read_table(&buf[..]).unwrap();
        assert_eq!(table, back);
        assert_eq!(back.row(0).0.len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(read_table(&b"WRONG!!!"[..]).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let mut builder = EdgeProbsBuilder::new(2, 2);
        builder
            .set(0, SparseTopicVector::new(vec![(0, 0.5)], 2).unwrap())
            .unwrap();
        let table = builder.build();
        let mut buf = Vec::new();
        write_table(&table, &mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_table(&buf[..]).is_err());
    }
}
