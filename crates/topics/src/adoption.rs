//! The logistic adoption model of Eqn. (1).
//!
//! A user who receives `c ≥ 1` distinct pieces of the campaign adopts with
//! probability `1 / (1 + exp(α − β·c))`; a user reached by no piece never
//! adopts (the "otherwise" branch — **not** `sigmoid(−α)`). The parameters
//! trade off the adoption turning point (`α`) against the per-piece payoff
//! (`β`); the experiments sweep the ratio `β/α` (§VI-E).

use serde::{Deserialize, Serialize};

/// Logistic adoption parameters `(α, β)`.
///
/// ```
/// use oipa_topics::LogisticAdoption;
///
/// // Example 1 of the paper: α = 3, β = 1.
/// let m = LogisticAdoption::example();
/// assert_eq!(m.adoption_prob(0), 0.0);            // Eqn. 1's zero branch
/// assert!((m.adoption_prob(2) - 0.2689).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticAdoption {
    /// Adoption difficulty: larger α makes adoption harder.
    pub alpha: f64,
    /// Per-piece weight: each received piece shifts the logit by β.
    pub beta: f64,
}

impl LogisticAdoption {
    /// Creates the model; both parameters must be positive (paper: `α, β > 0`).
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(beta > 0.0, "beta must be positive");
        LogisticAdoption { alpha, beta }
    }

    /// The experiments' parameterization: fixed `β = 1`, given ratio `β/α`
    /// (Table IV sweeps 0.3 / 0.5 / 0.7).
    pub fn from_ratio(beta_over_alpha: f64) -> Self {
        assert!(beta_over_alpha > 0.0);
        LogisticAdoption::new(1.0 / beta_over_alpha, 1.0)
    }

    /// The running example's parameters (`α = 3, β = 1`).
    pub fn example() -> Self {
        LogisticAdoption::new(3.0, 1.0)
    }

    /// The logit `x = β·c − α` for coverage count `c`.
    #[inline]
    pub fn logit(&self, coverage: usize) -> f64 {
        self.beta * coverage as f64 - self.alpha
    }

    /// Adoption probability `p[X_v = 1]` for a user reached by `coverage`
    /// distinct pieces. Zero coverage ⇒ zero probability (Eqn. 1).
    #[inline]
    pub fn adoption_prob(&self, coverage: usize) -> f64 {
        if coverage == 0 {
            0.0
        } else {
            sigmoid(self.logit(coverage))
        }
    }

    /// Marginal adoption gain from one extra covered piece.
    #[inline]
    pub fn marginal(&self, coverage_before: usize) -> f64 {
        self.adoption_prob(coverage_before + 1) - self.adoption_prob(coverage_before)
    }
}

/// Numerically stable logistic function `1 / (1 + e^{-x})`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the logistic function, `σ'(x) = σ(x)(1 − σ(x))`.
#[inline]
pub fn sigmoid_derivative(x: f64) -> f64 {
    let s = sigmoid(x);
    s * (1.0 - s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_paper_values() {
        // Example 1: α = 3, β = 1. p(c=2) = 1/(1+e^{3-2}) ≈ 0.2689,
        // p(c=1) = 1/(1+e^{3-1}) ≈ 0.1192.
        let m = LogisticAdoption::example();
        assert!((m.adoption_prob(2) - 0.268_941).abs() < 1e-5);
        assert!((m.adoption_prob(1) - 0.119_203).abs() < 1e-5);
    }

    #[test]
    fn zero_coverage_is_zero_not_sigmoid() {
        let m = LogisticAdoption::example();
        assert_eq!(m.adoption_prob(0), 0.0);
        assert!(sigmoid(m.logit(0)) > 0.0, "sigmoid(-α) is positive");
    }

    #[test]
    fn monotone_in_coverage() {
        let m = LogisticAdoption::new(4.0, 0.7);
        let mut prev = 0.0;
        for c in 0..20 {
            let p = m.adoption_prob(c);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn s_shape_marginals() {
        // Marginal gains grow while the logit is negative (convex region)
        // and shrink after it turns positive (concave region).
        let m = LogisticAdoption::new(5.0, 1.0);
        assert!(m.marginal(2) < m.marginal(3)); // still climbing toward α
        assert!(m.marginal(7) > m.marginal(8)); // past the turning point
    }

    #[test]
    fn from_ratio() {
        let m = LogisticAdoption::from_ratio(0.5);
        assert!((m.alpha - 2.0).abs() < 1e-12);
        assert!((m.beta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
        assert!((sigmoid(800.0) - 1.0).abs() < 1e-12);
        // Symmetry σ(x) + σ(−x) = 1.
        for &x in &[0.1, 1.0, 3.5, 10.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn derivative_peaks_at_zero() {
        assert!((sigmoid_derivative(0.0) - 0.25).abs() < 1e-12);
        assert!(sigmoid_derivative(2.0) < 0.25);
        assert!((sigmoid_derivative(2.0) - sigmoid_derivative(-2.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_nonpositive_alpha() {
        let _ = LogisticAdoption::new(0.0, 1.0);
    }
}
