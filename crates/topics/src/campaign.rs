//! Campaigns and viral pieces.

use crate::vector::TopicVector;
use crate::Result;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One viral piece `t_j ∈ T`: a topic distribution plus a display name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Piece {
    /// Human-readable label ("tax", "healthcare", …).
    pub name: String,
    /// Topic distribution `t`.
    pub topics: TopicVector,
}

impl Piece {
    /// Creates a named piece.
    pub fn new(name: impl Into<String>, topics: TopicVector) -> Self {
        Piece {
            name: name.into(),
            topics,
        }
    }

    /// A one-hot piece on `topic` named after it.
    pub fn single_topic(topic_count: usize, topic: usize) -> Result<Self> {
        Ok(Piece {
            name: format!("topic-{topic}"),
            topics: TopicVector::one_hot(topic_count, topic)?,
        })
    }
}

/// A multifaceted campaign `T = {t_1, …, t_ℓ}`.
///
/// ```
/// use oipa_topics::{Campaign, Piece, TopicVector};
///
/// let campaign = Campaign::new(vec![
///     Piece::new("tax", TopicVector::one_hot(2, 0).unwrap()),
///     Piece::new("healthcare", TopicVector::one_hot(2, 1).unwrap()),
/// ]).unwrap();
/// assert_eq!(campaign.len(), 2);
/// assert_eq!(campaign.piece(0).name, "tax");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    pieces: Vec<Piece>,
    topic_count: usize,
}

impl Campaign {
    /// Builds a campaign, checking all pieces share one topic dimension.
    pub fn new(pieces: Vec<Piece>) -> Result<Self> {
        assert!(!pieces.is_empty(), "campaign needs at least one piece");
        let topic_count = pieces[0].topics.dim();
        for p in &pieces {
            if p.topics.dim() != topic_count {
                return Err(crate::TopicError::DimensionMismatch {
                    expected: topic_count,
                    actual: p.topics.dim(),
                });
            }
        }
        Ok(Campaign {
            pieces,
            topic_count,
        })
    }

    /// The paper's experimental campaign generator (§VI-A, Table IV): `ℓ`
    /// pieces, each a one-hot vector on a uniformly sampled topic.
    pub fn sample_one_hot<R: Rng + ?Sized>(rng: &mut R, topic_count: usize, ell: usize) -> Self {
        assert!(topic_count > 0 && ell > 0);
        let pieces = (0..ell)
            .map(|j| {
                let z = rng.gen_range(0..topic_count);
                Piece {
                    name: format!("piece-{j}(topic-{z})"),
                    topics: TopicVector::one_hot(topic_count, z).expect("topic in range"),
                }
            })
            .collect();
        Campaign {
            pieces,
            topic_count,
        }
    }

    /// Number of pieces `ℓ`.
    #[inline]
    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// True when the campaign has no pieces (unreachable via constructors;
    /// kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Topic dimension shared by all pieces.
    #[inline]
    pub fn topic_count(&self) -> usize {
        self.topic_count
    }

    /// The pieces in assignment order.
    #[inline]
    pub fn pieces(&self) -> &[Piece] {
        &self.pieces
    }

    /// One piece by index.
    #[inline]
    pub fn piece(&self, j: usize) -> &Piece {
        &self.pieces[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_campaign() {
        let c = Campaign::new(vec![
            Piece::single_topic(2, 0).unwrap(),
            Piece::single_topic(2, 1).unwrap(),
        ])
        .unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.topic_count(), 2);
        assert_eq!(c.piece(0).topics.get(0), 1.0);
    }

    #[test]
    fn rejects_mixed_dimensions() {
        let err = Campaign::new(vec![
            Piece::single_topic(2, 0).unwrap(),
            Piece::single_topic(3, 1).unwrap(),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn sampled_pieces_are_one_hot() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = Campaign::sample_one_hot(&mut rng, 20, 5);
        assert_eq!(c.len(), 5);
        for p in c.pieces() {
            assert_eq!(p.topics.support(), 1);
            let sum: f32 = p.topics.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sampling_deterministic() {
        let a = Campaign::sample_one_hot(&mut StdRng::seed_from_u64(1), 10, 3);
        let b = Campaign::sample_one_hot(&mut StdRng::seed_from_u64(1), 10, 3);
        assert_eq!(a, b);
    }
}
