//! # oipa-topics
//!
//! Topic-aware influence-model substrate for the OIPA reproduction.
//!
//! The paper (§III-A) adopts the topic-aware independent-cascade family of
//! models: a hidden topic set `Z`, per-edge topic-wise influence
//! probabilities `p(e|z)`, and viral pieces `t` described by topic
//! distributions, with the effective pass-through probability
//! `p(t, e) = t · p(e)`. This crate provides:
//!
//! * [`TopicVector`] — dense probability vectors over topics (pieces, user
//!   interests) and [`SparseTopicVector`] — the per-edge `p(e)` rows, which
//!   in real data are very sparse (the paper reports an average of 1.5
//!   non-zero entries per edge on `tweet`).
//! * [`Piece`] / [`Campaign`] — the multifaceted campaign `T = {t_1..t_ℓ}`.
//! * [`EdgeTopicProbs`] — the `p(e|z)` table for a whole graph, with
//!   [`EdgeTopicProbs::materialize`] producing the homogeneous influence
//!   graph `G_t` for one piece (the paper's Fig. 1b/1c construction).
//! * [`LogisticAdoption`] — the user adoption model of Eqn. (1), including
//!   the zero-coverage "otherwise" branch.
//! * [`tic`] — a TIC-style EM learner recovering `p(e|z)` from action logs
//!   (the paper learns `lastfm` probabilities this way, citing (ref 3)).
//! * [`lda`] — collapsed-Gibbs LDA used to derive user topic distributions
//!   from hashtag documents (the paper's `tweet` preparation, citing (ref 5)).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adoption;
pub mod binio;
mod campaign;
mod edge_probs;
pub mod hetero;
pub mod lda;
pub mod tic;
mod vector;

pub use adoption::{sigmoid, sigmoid_derivative, LogisticAdoption};
pub use campaign::{Campaign, Piece};
pub use edge_probs::{
    from_user_profiles, synthesize_random, EdgeProbsBuilder, EdgeTopicProbs, SynthesisParams,
};
pub use vector::{SparseTopicVector, TopicVector};

/// Errors from topic-model construction.
#[derive(Debug)]
pub enum TopicError {
    /// A probability fell outside `[0, 1]`.
    BadProbability {
        /// The offending value.
        value: f64,
    },
    /// Topic-vector dimensions disagreed.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// Edge-probability table does not cover the graph's edges.
    EdgeCountMismatch {
        /// Edges in the graph.
        graph_edges: usize,
        /// Rows in the table.
        table_rows: usize,
    },
    /// A topic id exceeded the declared topic count.
    TopicOutOfRange {
        /// The offending topic id.
        topic: usize,
        /// The number of topics.
        topic_count: usize,
    },
    /// A binary (de)serialization failure (bad magic, truncation, IO).
    Serialization(String),
    /// A sparse row listed the same topic twice.
    DuplicateTopic {
        /// The repeated topic id.
        topic: usize,
    },
}

impl std::fmt::Display for TopicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopicError::BadProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            TopicError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "topic dimension mismatch: expected {expected}, got {actual}"
                )
            }
            TopicError::EdgeCountMismatch {
                graph_edges,
                table_rows,
            } => write!(
                f,
                "edge-probability table has {table_rows} rows but graph has {graph_edges} edges"
            ),
            TopicError::TopicOutOfRange { topic, topic_count } => {
                write!(f, "topic {topic} out of range (|Z| = {topic_count})")
            }
            TopicError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            TopicError::DuplicateTopic { topic } => {
                write!(f, "topic {topic} listed twice in a sparse row")
            }
        }
    }
}

impl std::error::Error for TopicError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TopicError>;
