//! Per-user (heterogeneous) adoption parameters.
//!
//! The paper's notation table (Table I) lists a per-user preference vector
//! `β_v` and adoption-control parameter `r_v`, but the algorithmic
//! sections specialize to global `(α, β)`. This module implements the
//! general per-user form as an extension: every user has their own
//! logistic parameters, grouped into a small number of **parameter
//! classes** so downstream solvers can precompute one table per class
//! instead of one per user.

use crate::adoption::LogisticAdoption;
use serde::{Deserialize, Serialize};

/// Per-user adoption parameters, class-quantized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneousAdoption {
    /// Class id per user (`len = n`).
    class_of: Vec<u8>,
    /// The distinct parameter classes (≤ 256).
    classes: Vec<LogisticAdoption>,
}

impl HeterogeneousAdoption {
    /// Builds from explicit class assignments.
    pub fn from_classes(class_of: Vec<u8>, classes: Vec<LogisticAdoption>) -> Self {
        assert!(!classes.is_empty(), "need at least one class");
        assert!(
            class_of.iter().all(|&c| (c as usize) < classes.len()),
            "class id out of range"
        );
        HeterogeneousAdoption { class_of, classes }
    }

    /// Every user shares one model — the paper's homogeneous special case.
    pub fn uniform(model: LogisticAdoption, n: usize) -> Self {
        HeterogeneousAdoption {
            class_of: vec![0; n],
            classes: vec![model],
        }
    }

    /// A two-segment population: a `fraction` of "enthusiast" users with
    /// `easy` parameters, the rest with `hard` parameters, assigned
    /// deterministically by node id hash for reproducibility.
    pub fn two_segment(
        easy: LogisticAdoption,
        hard: LogisticAdoption,
        fraction_easy: f64,
        n: usize,
    ) -> Self {
        assert!((0.0..=1.0).contains(&fraction_easy));
        let threshold = (fraction_easy * u32::MAX as f64) as u32;
        let class_of = (0..n)
            .map(|v| {
                // Cheap splittable hash of the node id.
                let h = (v as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left(31) as u32;
                u8::from(h >= threshold) // 0 = easy, 1 = hard
            })
            .collect();
        HeterogeneousAdoption {
            class_of,
            classes: vec![easy, hard],
        }
    }

    /// Number of users covered.
    #[inline]
    pub fn user_count(&self) -> usize {
        self.class_of.len()
    }

    /// Number of distinct classes.
    #[inline]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Class id of a user.
    #[inline]
    pub fn class_of(&self, user: u32) -> u8 {
        self.class_of[user as usize]
    }

    /// Parameters of a class.
    #[inline]
    pub fn class(&self, class: u8) -> LogisticAdoption {
        self.classes[class as usize]
    }

    /// The model governing one user.
    #[inline]
    pub fn model_of(&self, user: u32) -> LogisticAdoption {
        self.classes[self.class_of[user as usize] as usize]
    }

    /// Adoption probability of `user` at piece-coverage `coverage`.
    #[inline]
    pub fn adoption_prob(&self, user: u32, coverage: usize) -> f64 {
        self.model_of(user).adoption_prob(coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_base_model() {
        let model = LogisticAdoption::example();
        let h = HeterogeneousAdoption::uniform(model, 10);
        assert_eq!(h.class_count(), 1);
        for v in 0..10u32 {
            for c in 0..4 {
                assert_eq!(h.adoption_prob(v, c), model.adoption_prob(c));
            }
        }
    }

    #[test]
    fn two_segment_fraction_roughly_respected() {
        let easy = LogisticAdoption::new(1.0, 1.0);
        let hard = LogisticAdoption::new(5.0, 1.0);
        let h = HeterogeneousAdoption::two_segment(easy, hard, 0.3, 10_000);
        let easy_count = (0..10_000u32).filter(|&v| h.class_of(v) == 0).count();
        let frac = easy_count as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.05, "easy fraction {frac}");
        // Easy users adopt more readily at the same coverage.
        let e = h.class(0).adoption_prob(2);
        let d = h.class(1).adoption_prob(2);
        assert!(e > d);
    }

    #[test]
    fn deterministic_segmentation() {
        let easy = LogisticAdoption::new(1.0, 1.0);
        let hard = LogisticAdoption::new(4.0, 1.0);
        let a = HeterogeneousAdoption::two_segment(easy, hard, 0.5, 100);
        let b = HeterogeneousAdoption::two_segment(easy, hard, 0.5, 100);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "class id out of range")]
    fn rejects_bad_class_ids() {
        let _ = HeterogeneousAdoption::from_classes(vec![2], vec![LogisticAdoption::example()]);
    }
}
