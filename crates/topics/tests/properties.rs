//! Property-based invariants of the topic substrate.

use oipa_topics::{
    sigmoid, Campaign, EdgeProbsBuilder, LogisticAdoption, SparseTopicVector, TopicVector,
};
use proptest::prelude::*;

/// Valid probability entries for a sparse row over `z` topics.
fn sparse_entries(z: u16) -> impl Strategy<Value = Vec<(u16, f32)>> {
    proptest::collection::vec((0..z, 0.0f32..=1.0), 0..(z as usize).min(8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sparse/dense dot products agree for arbitrary vectors.
    #[test]
    fn sparse_dense_dot_agree(
        entries in sparse_entries(12),
        dense in proptest::collection::vec(0.0f32..=1.0, 12),
    ) {
        let dedup: std::collections::BTreeMap<u16, f32> = entries.into_iter().collect();
        let sparse = SparseTopicVector::new(dedup.into_iter().collect(), 12).unwrap();
        let piece = TopicVector::new(dense).unwrap();
        let via_sparse = piece.dot_sparse(&sparse);
        let dense_row = TopicVector::new(sparse.to_dense(12)).unwrap();
        let via_dense = piece.dot(&dense_row).unwrap();
        prop_assert!((via_sparse - via_dense).abs() < 1e-4);
    }

    /// Normalization produces a distribution (or keeps zero at zero).
    #[test]
    fn normalization(values in proptest::collection::vec(0.0f32..=1.0, 1..16)) {
        let v = TopicVector::new(values.clone()).unwrap().normalized();
        let sum: f32 = v.as_slice().iter().sum();
        if values.iter().any(|&x| x > 0.0) {
            prop_assert!((sum - 1.0).abs() < 1e-4);
        } else {
            prop_assert_eq!(sum, 0.0);
        }
    }

    /// The logistic model is monotone in coverage, bounded by 1, and its
    /// zero branch holds for any parameters.
    #[test]
    fn adoption_model_axioms(alpha in 0.1f64..10.0, beta in 0.1f64..5.0) {
        let m = LogisticAdoption::new(alpha, beta);
        prop_assert_eq!(m.adoption_prob(0), 0.0);
        let mut prev = 0.0;
        for c in 1..20 {
            let p = m.adoption_prob(c);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev);
            prev = p;
            // Consistency with the raw sigmoid.
            prop_assert!((p - sigmoid(beta * c as f64 - alpha)).abs() < 1e-12);
        }
    }

    /// Campaign JSON serialization round-trips.
    #[test]
    fn campaign_serde_roundtrip(seed in 0u64..10_000, ell in 1usize..6) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let campaign = Campaign::sample_one_hot(&mut rng, 10, ell);
        let json = serde_json::to_string(&campaign).unwrap();
        let back: Campaign = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(campaign, back);
    }

    /// Probability tables round-trip through binary IO for arbitrary rows.
    #[test]
    fn table_binio_roundtrip(rows in proptest::collection::vec(sparse_entries(9), 1..12)) {
        let mut builder = EdgeProbsBuilder::new(rows.len(), 9);
        for (e, entries) in rows.iter().enumerate() {
            // Duplicate topics within a row are collapsed by retaining the
            // last occurrence, matching set_entry semantics.
            let mut dedup: std::collections::BTreeMap<u16, f32> = Default::default();
            for &(z, p) in entries {
                dedup.insert(z, p);
            }
            let entries: Vec<(u16, f32)> = dedup.into_iter().collect();
            builder
                .set(e as u32, SparseTopicVector::new(entries, 9).unwrap())
                .unwrap();
        }
        let table = builder.build();
        let mut buf = Vec::new();
        oipa_topics::binio::write_table(&table, &mut buf).unwrap();
        let back = oipa_topics::binio::read_table(&buf[..]).unwrap();
        prop_assert_eq!(table, back);
    }

    /// `piece_prob` is clamped to [0, 1] for any inputs.
    #[test]
    fn piece_prob_bounded(
        entries in sparse_entries(6),
        piece in proptest::collection::vec(0.0f32..=1.0, 6),
    ) {
        let mut builder = EdgeProbsBuilder::new(1, 6);
        let mut dedup: std::collections::BTreeMap<u16, f32> = Default::default();
        for &(z, p) in &entries {
            dedup.insert(z, p);
        }
        builder
            .set(0, SparseTopicVector::new(dedup.into_iter().collect(), 6).unwrap())
            .unwrap();
        let table = builder.build();
        let piece = TopicVector::new(piece).unwrap();
        let p = table.piece_prob(&piece, 0);
        prop_assert!((0.0..=1.0).contains(&p));
    }
}
