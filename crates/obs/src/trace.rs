//! Per-request tracing: process-unique trace ids, timed spans, and JSONL
//! event rendering.
//!
//! A [`Trace`] is created at request admission and threaded (by shared
//! reference) through the layers that do the work; each layer records
//! named spans against it. The cost is one `Instant`, one atomic id
//! fetch, and — per span — one push into a (request-private, therefore
//! uncontended) mutexed vec. When the request is done the server can
//! render the whole trace as one structured JSONL line
//! ([`Trace::event_jsonl`]) — that is the `--slow-ms` slow-request log.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide trace sequence; mixed with a per-process nonce so ids
/// from two runs of the same binary do not collide in shared logs.
static TRACE_SEQ: AtomicU64 = AtomicU64::new(1);
static PROCESS_NONCE: OnceLock<u64> = OnceLock::new();

fn process_nonce() -> u64 {
    *PROCESS_NONCE.get_or_init(|| {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        splitmix64(clock ^ u64::from(std::process::id()))
    })
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// One completed span inside a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (a static phase label: `"sampling"`, `"solve"`, …).
    pub name: &'static str,
    /// Offset of the span start from the trace start, milliseconds.
    pub start_ms: f64,
    /// Span duration, milliseconds.
    pub ms: f64,
}

/// A per-request trace: a process-unique id, the request's start
/// instant, and the spans recorded so far. Cheap to create; share by
/// `&Trace` down the call stack.
#[derive(Debug)]
pub struct Trace {
    id: u64,
    start: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// Starts a trace with a fresh process-unique id.
    pub fn new() -> Trace {
        let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
        Trace {
            id: splitmix64(process_nonce() ^ seq),
            start: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The trace id as 16 lowercase hex characters.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.id)
    }

    /// Time since the trace started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Records one completed span. `started`/`ended` are the span's own
    /// instants, so the caller times the work and records afterwards —
    /// no guard object to keep alive across ownership-hostile code.
    pub fn record_span(&self, name: &'static str, started: Instant, ended: Instant) {
        let start_ms = started.saturating_duration_since(self.start).as_secs_f64() * 1e3;
        let ms = ended.saturating_duration_since(started).as_secs_f64() * 1e3;
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(SpanRecord { name, start_ms, ms });
    }

    /// The spans recorded so far, in recording order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Renders the trace as one JSONL event line:
    /// `{"event":…,"trace":…,<extra fields>,"spans":[…]}`.
    ///
    /// `extra` values must be pre-rendered JSON fragments — use
    /// [`json_string`] / [`json_number`] so escaping is impossible to
    /// forget. Keeping the renderer dependency-free is why this is
    /// hand-built rather than serde.
    pub fn event_jsonl(&self, event: &str, extra: &[(&str, String)]) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"event\":");
        out.push_str(&json_string(event));
        out.push_str(",\"trace\":\"");
        out.push_str(&self.id_hex());
        out.push('"');
        for (key, value) in extra {
            out.push(',');
            out.push_str(&json_string(key));
            out.push(':');
            out.push_str(value);
        }
        out.push_str(",\"spans\":[");
        for (i, span) in self.spans().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"start_ms\":{},\"ms\":{}}}",
                json_string(span.name),
                json_number(span.start_ms),
                json_number(span.ms),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string's content for embedding inside JSON quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A complete JSON string value (quotes included).
pub fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// A JSON number value (non-finite floats become `null`, which JSON has
/// no better answer for).
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_hex() {
        let a = Trace::new();
        let b = Trace::new();
        assert_ne!(a.id_hex(), b.id_hex());
        assert_eq!(a.id_hex().len(), 16);
        assert!(a.id_hex().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn spans_record_in_order() {
        let t = Trace::new();
        let s0 = Instant::now();
        let s1 = Instant::now();
        t.record_span("sampling", s0, s1);
        t.record_span("solve", s1, Instant::now());
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "sampling");
        assert_eq!(spans[1].name, "solve");
        assert!(spans.iter().all(|s| s.ms >= 0.0 && s.start_ms >= 0.0));
    }

    #[test]
    fn event_jsonl_is_valid_json_shape() {
        let t = Trace::new();
        t.record_span("solve", Instant::now(), Instant::now());
        let line = t.event_jsonl(
            "slow_request",
            &[
                ("endpoint", json_string("/solve")),
                ("status", "200".to_string()),
                ("total_ms", json_number(12.5)),
            ],
        );
        assert!(line.starts_with("{\"event\":\"slow_request\",\"trace\":\""));
        assert!(line.contains("\"endpoint\":\"/solve\""));
        assert!(line.contains("\"status\":200"));
        assert!(line.contains("\"total_ms\":12.5"));
        assert!(line.contains("\"spans\":[{\"name\":\"solve\""));
        assert!(line.ends_with("}]}"));
        assert!(!line.contains('\n'), "JSONL events are one line");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_string("x\ty"), "\"x\\ty\"");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::NAN), "null");
    }
}
