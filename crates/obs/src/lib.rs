//! # oipa-obs
//!
//! First-party observability for the OIPA serving stack: a metrics
//! registry of relaxed-atomic [`Counter`]s, [`Gauge`]s, and
//! log₂-bucketed [`Histogram`]s, plus lightweight structured tracing
//! ([`Trace`] / spans) with JSONL event rendering. Zero dependencies by
//! policy (the same rule as `shims/`): the build environment has no
//! registry access, and an observability layer must cost nothing to
//! adopt.
//!
//! ## Design
//!
//! * **Recording is lock-free.** Every metric handle is an `Arc` around
//!   plain atomics; [`Counter::inc`], [`Gauge::set`], and
//!   [`Histogram::record`] are relaxed atomic ops — no locks, no
//!   allocation, nanoseconds per call whether or not anyone ever reads
//!   the registry. The only lock in the crate guards *registration*
//!   (get-or-create of a named series), which callers do once at startup
//!   and cache.
//! * **Histograms are HDR-style**: log₂ octaves refined by 64 linear
//!   sub-buckets (≤ 1.6% relative quantization error), with exact
//!   atomic `count`/`sum`/`max` on the side. Percentile readout uses the
//!   same ceil-rank order-statistic rule as the bench suite, so runtime
//!   p50/p99/p999 and `BENCH_serve.json` report identical math.
//! * **Pull, don't push.** [`Registry::render`] walks the registered
//!   series and any [collector closures](Registry::register_collector)
//!   and emits Prometheus text exposition (`text/plain; version=0.0.4`).
//!   Collectors let an existing stats source (the pool store's counters)
//!   be bridged at scrape time, so `/stats` and `/metrics` read the same
//!   atomics and can never drift.
//! * **Tracing is per-request.** A [`Trace`] carries a process-unique id
//!   and an append-only span list; [`Trace::event_jsonl`] renders one
//!   structured log line (used by the server's `--slow-ms` slow-request
//!   log).
//!
//! ```
//! use oipa_obs::Registry;
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("cache_hits_total", "Cache hits.", &[]);
//! let latency = registry.histogram(
//!     "request_seconds",
//!     "Request latency.",
//!     &[("endpoint", "/solve")],
//! );
//! hits.inc();
//! latency.record_duration(Duration::from_micros(250));
//! let text = registry.render();
//! assert!(text.contains("cache_hits_total 1"));
//! assert!(text.contains("request_seconds_count{endpoint=\"/solve\"} 1"));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod metrics;
mod registry;
mod trace;

pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{MetricKind, PromText, Registry};
pub use trace::{json_escape, json_number, json_string, SpanRecord, Trace};

/// Wire-format version of the `/metrics` exposition this crate renders.
/// The format is **frozen additive-only**: metric names, label keys, and
/// semantics never change or disappear under one schema value — new
/// series may appear, existing ones may not be repurposed.
pub const METRICS_SCHEMA: &str = "oipa.metrics/v1";

/// The Prometheus text-exposition content type [`Registry::render`]
/// output should be served under.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4";
