//! The metric registry and its Prometheus text-exposition renderer.
//!
//! A [`Registry`] is a cloneable handle (`Arc` inside) over a name →
//! family map. Registration (`counter`/`gauge`/`histogram`) is
//! get-or-create behind an `RwLock` — callers do it once at startup and
//! hold the returned `Arc` handles, so the request hot path never
//! touches the lock. [`Registry::render`] walks every registered series
//! plus any [collector closures](Registry::register_collector) and emits
//! `text/plain; version=0.0.4` exposition.
//!
//! Collectors are the bridge for metrics that already live somewhere
//! else (the pool store's `StatsSnapshot` counters): instead of
//! mirroring them into registry atomics — two copies that could drift —
//! a collector reads the original source *at scrape time* and writes
//! exposition lines directly. `/stats` and `/metrics` then derive from
//! the same atomics and cannot disagree.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// What a metric family is, for the `# TYPE` exposition line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Goes up and down.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Canonical label string (`` or `{k="v",…}`) → the series.
    series: BTreeMap<String, Series>,
}

type Collector = Box<dyn Fn(&mut PromText) + Send + Sync>;

#[derive(Default)]
struct Inner {
    families: RwLock<BTreeMap<String, Family>>,
    collectors: RwLock<Vec<Collector>>,
}

/// A metric registry: clone the handle freely, every clone reads and
/// writes the same underlying series.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = read(&self.inner.families).len();
        write!(f, "Registry({families} families)")
    }
}

/// Reads a lock, recovering from poisoning — the registry holds only
/// monotone counters, so a panicked writer cannot leave it inconsistent
/// in a way a reader must fear.
fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-create a counter series. The first call for a `(name,
    /// labels)` pair creates it; later calls return the same handle.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Arc::new(Counter::new()))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Get-or-create a gauge series (same contract as [`Self::counter`]).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.series(name, help, MetricKind::Gauge, labels, || {
            Series::Gauge(Arc::new(Gauge::new()))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Get-or-create a histogram series (same contract as
    /// [`Self::counter`]). By convention the recorded unit is
    /// nanoseconds and the name ends in `_seconds`: the renderer divides
    /// by 10⁹ so the exposition is in seconds.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.series(name, help, MetricKind::Histogram, labels, || {
            Series::Histogram(Arc::new(Histogram::new()))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked in series()"),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        create: impl FnOnce() -> Series,
    ) -> Series {
        let label_key = render_labels(labels);
        let mut families = write(&self.inner.families);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as both {:?} and {kind:?}",
            family.kind
        );
        let series = family.series.entry(label_key).or_insert_with(create);
        match series {
            Series::Counter(c) => Series::Counter(Arc::clone(c)),
            Series::Gauge(g) => Series::Gauge(Arc::clone(g)),
            Series::Histogram(h) => Series::Histogram(Arc::clone(h)),
        }
    }

    /// Registers a scrape-time collector: a closure invoked by every
    /// [`Self::render`] to append exposition lines for metrics whose
    /// source of truth lives outside the registry (e.g. the pool store's
    /// own atomic counters). Bridging at read time — instead of keeping
    /// a second copy in registry atomics — is what guarantees `/stats`
    /// and `/metrics` can never disagree.
    pub fn register_collector(&self, collector: impl Fn(&mut PromText) + Send + Sync + 'static) {
        write(&self.inner.collectors).push(Box::new(collector));
    }

    /// Renders the full registry (registered series first, collectors
    /// after) as Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = PromText::new();
        {
            let families = read(&self.inner.families);
            for (name, family) in families.iter() {
                out.family(name, family.kind, &family.help);
                for (label_key, series) in &family.series {
                    match series {
                        Series::Counter(c) => out.line_u64(name, label_key, c.get()),
                        Series::Gauge(g) => {
                            out.line_raw(name, label_key, &g.get().to_string());
                        }
                        Series::Histogram(h) => out.histogram_lines(name, label_key, h),
                    }
                }
            }
        }
        let collectors = read(&self.inner.collectors);
        for collector in collectors.iter() {
            collector(&mut out);
        }
        out.into_string()
    }
}

/// Canonical label rendering: keys sorted, values escaped, `{k="v",…}`
/// (empty string for no labels). Sorting makes the label set — not the
/// caller's argument order — the series identity.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by_key(|&(k, _)| k);
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Power-of-two `le` boundaries (in nanoseconds) the renderer coarsens
/// histogram fine buckets into: 2¹⁰ ns ≈ 1 µs up to 2³⁶ ns ≈ 69 s.
/// Everything above the last boundary lands in `+Inf` only.
const LE_LADDER_LOW: u32 = 10;
const LE_LADDER_HIGH: u32 = 36;

/// An exposition-text builder handed to collectors. The methods enforce
/// the line grammar so a collector cannot emit malformed exposition.
pub struct PromText {
    out: String,
}

impl PromText {
    fn new() -> PromText {
        PromText {
            out: String::with_capacity(4096),
        }
    }

    /// Starts a metric family: the `# HELP` and `# TYPE` lines.
    pub fn family(&mut self, name: &str, kind: MetricKind, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&help.replace('\n', " "));
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind.as_str());
        self.out.push('\n');
    }

    /// One sample line with an integer value.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let label_key = render_labels(labels);
        self.line_u64(name, &label_key, value);
    }

    /// One sample line with a float value (rendered exactly; integral
    /// floats print without a fraction).
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let label_key = render_labels(labels);
        self.line_raw(name, &label_key, &format_f64(value));
    }

    fn line_u64(&mut self, name: &str, label_key: &str, value: u64) {
        self.line_raw(name, label_key, &value.to_string());
    }

    fn line_raw(&mut self, name: &str, label_key: &str, value: &str) {
        self.out.push_str(name);
        self.out.push_str(label_key);
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Full histogram exposition for one series: cumulative `_bucket`
    /// lines over the power-of-two ladder, then `_sum` and `_count`.
    /// The `+Inf` bucket and `_count` are computed from the same bucket
    /// walk, so `_bucket{le="+Inf"} == _count` holds even while other
    /// threads are recording.
    fn histogram_lines(&mut self, name: &str, label_key: &str, h: &Histogram) {
        let fine = h.nonzero_buckets();
        let mut cumulative = vec![0u64; (LE_LADDER_HIGH - LE_LADDER_LOW + 2) as usize];
        for &(upper, n) in &fine {
            let slot = (LE_LADDER_LOW..=LE_LADDER_HIGH)
                .position(|k| upper <= 1u64 << k)
                .unwrap_or(cumulative.len() - 1);
            cumulative[slot] += n;
        }
        // Prefix-sum into cumulative counts.
        let mut running = 0u64;
        for slot in &mut cumulative {
            running += *slot;
            *slot = running;
        }
        let total = running;
        for (i, k) in (LE_LADDER_LOW..=LE_LADDER_HIGH).enumerate() {
            let le = format_f64((1u64 << k) as f64 / 1e9);
            let with_le = merge_le(label_key, &le);
            self.line_u64(&format!("{name}_bucket"), &with_le, cumulative[i]);
        }
        let with_inf = merge_le(label_key, "+Inf");
        self.line_u64(&format!("{name}_bucket"), &with_inf, total);
        self.line_raw(
            &format!("{name}_sum"),
            label_key,
            &format_f64(h.sum() as f64 / 1e9),
        );
        self.line_u64(&format!("{name}_count"), label_key, total);
    }

    fn into_string(self) -> String {
        self.out
    }
}

/// Splices an `le` label into an already-rendered label key.
fn merge_le(label_key: &str, le: &str) -> String {
    if label_key.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &label_key[..label_key.len() - 1])
    }
}

/// Exposition float formatting: integral values print without a
/// fraction, everything else uses Rust's shortest-exact decimal.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("hits_total", "Hits.", &[("tier", "mem")]);
        let b = r.counter("hits_total", "Hits.", &[("tier", "mem")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit the same atomic");
        let other = r.counter("hits_total", "Hits.", &[("tier", "disk")]);
        assert_eq!(other.get(), 0, "different labels, different series");
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", "X.", &[]);
        let _ = r.gauge("x_total", "X.", &[]);
    }

    #[test]
    fn labels_are_canonical_regardless_of_order() {
        let r = Registry::new();
        let a = r.counter("c_total", "C.", &[("b", "2"), ("a", "1")]);
        let b = r.counter("c_total", "C.", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "argument order must not split the series");
        assert_eq!(
            render_labels(&[("b", "2"), ("a", "1")]),
            "{a=\"1\",b=\"2\"}"
        );
        assert_eq!(render_labels(&[]), "");
        assert_eq!(
            render_labels(&[("k", "a\"b\\c\nd")]),
            "{k=\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn render_emits_well_formed_exposition() {
        let r = Registry::new();
        r.counter("req_total", "Requests.", &[("status", "200")])
            .add(7);
        r.gauge("inflight", "In flight.", &[]).set(3);
        let h = r.histogram("lat_seconds", "Latency.", &[("endpoint", "/solve")]);
        h.record(2_000_000); // 2 ms
        h.record(5_000_000_000); // 5 s
        r.register_collector(|w| {
            w.family("bridged_total", MetricKind::Counter, "From a collector.");
            w.sample_u64("bridged_total", &[("src", "store")], 11);
        });
        let text = r.render();
        assert!(text.contains("# HELP req_total Requests.\n"), "{text}");
        assert!(text.contains("# TYPE req_total counter\n"));
        assert!(text.contains("req_total{status=\"200\"} 7\n"));
        assert!(text.contains("# TYPE inflight gauge\n"));
        assert!(text.contains("inflight 3\n"));
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_count{endpoint=\"/solve\"} 2\n"));
        assert!(text.contains("lat_seconds_bucket{endpoint=\"/solve\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("bridged_total{src=\"store\"} 11\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!name.is_empty());
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sum_to_count() {
        let r = Registry::new();
        let h = r.histogram("d_seconds", "D.", &[]);
        for ns in [100u64, 2_000, 1_000_000, 1_000_000, 80_000_000_000] {
            h.record(ns); // includes one past the ladder top (80 s)
        }
        let text = r.render();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("d_seconds_bucket{le=\"") {
                let value: u64 = rest.split(' ').nth(1).unwrap().parse().unwrap();
                assert!(value >= last, "buckets must be cumulative: {text}");
                last = value;
                bucket_lines += 1;
            }
        }
        assert!(bucket_lines > 2);
        assert!(text.contains("d_seconds_count 5\n"));
        assert_eq!(last, 5, "+Inf bucket equals the count");
        // The 80 s outlier is only in +Inf: the ladder top is ~69 s.
        let top = format!(
            "d_seconds_bucket{{le=\"{}\"}} 4",
            format_f64((1u64 << 36) as f64 / 1e9)
        );
        assert!(text.contains(&top), "ladder top holds 4 of 5: {text}");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_f64(3.0), "3");
        assert_eq!(format_f64(0.25), "0.25");
        assert_eq!(format_f64((1u64 << 10) as f64 / 1e9), "0.000001024");
    }
}
