//! The three metric primitives: relaxed-atomic counters, gauges, and
//! log₂-bucketed latency histograms.
//!
//! Everything here is designed for the hot path of a serving system:
//! recording is a handful of `Relaxed` atomic operations — no locks, no
//! allocation, no branches beyond the bucket index math — so
//! instrumentation is near-free whether or not the registry is ever
//! scraped. Reads (snapshots, percentiles, rendering) tolerate torn
//! views across buckets; each individual counter is still exact.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter (wraps at `u64::MAX`, which at one
/// increment per nanosecond takes ~584 years).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (in-flight requests, queue
/// depth, 0/1 state flags).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per octave as a power of two: 2⁶ = 64 sub-buckets,
/// bounding relative quantization error at 1/64 ≈ 1.6%.
const SUB_BITS: u32 = 6;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;
/// Octave groups covering the full `u64` range (values `0..64` are the
/// exact octave 0; each further octave doubles the bucket width).
const OCTAVES: usize = 64 - SUB_BITS as usize + 1;
/// Total fine buckets.
const BUCKETS: usize = OCTAVES << SUB_BITS as usize;

/// Fine-bucket index of a value: exact below [`SUBS`], then HDR-style
/// `octave * 64 + sub` where the sub-bucket is the value's top
/// [`SUB_BITS`] bits after the leading one.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let shift = msb - SUB_BITS;
    (octave << SUB_BITS) + ((v >> shift) - SUBS) as usize
}

/// Largest value a fine bucket holds (inclusive). Percentile readout
/// reports this bound, so quantization only ever rounds *up* — a
/// reported p99 is never smaller than the true order statistic.
#[inline]
fn bucket_upper(index: usize) -> u64 {
    let octave = index >> SUB_BITS;
    let sub = (index as u64) & (SUBS - 1);
    if octave == 0 {
        return sub;
    }
    let shift = (octave - 1) as u32;
    // OR-in the low bits instead of adding the width: the topmost
    // bucket's upper bound is exactly `u64::MAX` and must not overflow.
    ((SUBS + sub) << shift) | ((1u64 << shift) - 1)
}

/// A log₂-bucketed histogram of `u64` values (by convention:
/// **nanoseconds** when the histogram measures latency — the registry's
/// Prometheus renderer divides by 10⁹ for `_seconds` families).
///
/// 64 linear sub-buckets per octave keep relative quantization error
/// under 1.6%; values below 128 are bucketed exactly. `count`, `sum`,
/// and `max` are tracked exactly on the side, so the mean is always
/// precise and only percentiles pay the (bounded, upward) rounding.
///
/// [`Histogram::percentile`] uses the ceil-rank order-statistic rule —
/// `rank = ceil(count · p)` clamped to `[1, count]` — the same rule the
/// bench suite's sorted-sample percentiles used, so runtime and bench
/// percentiles are the same math over the same buckets.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. Allocates its fixed bucket array (~30 KiB);
    /// create once, share via `Arc`.
    pub fn new() -> Histogram {
        // SAFETY-free zero init: AtomicU64 is repr(transparent) over u64
        // but there is no const array constructor, so build via Vec.
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("Vec was built with BUCKETS elements"));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value: four relaxed atomic ops, no locks.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Values recorded (exact).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (exact — quantization affects buckets,
    /// never the sum, so the mean is always precise).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (exact), 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The ceil-rank percentile: the inclusive upper bound of the fine
    /// bucket holding the `ceil(count · p)`-th smallest value (clamped
    /// to `[1, count]`). Returns 0 on an empty histogram. Values below
    /// 128 are exact; above, the answer overshoots the true order
    /// statistic by at most 1/64.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((count as f64) * p).ceil() as u64;
        let rank = rank.clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        // A racing record bumped `count` before its bucket: the largest
        // value we have a bound for is the max.
        self.max()
    }

    /// Non-zero fine buckets as `(inclusive_upper_bound, count)` pairs,
    /// in ascending value order. The registry's Prometheus renderer
    /// coarsens these into power-of-two `le` boundaries.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper(i), n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn bucket_index_round_trips_exact_range() {
        // Values below two octaves (0..128) get exact buckets.
        for v in 0..128u64 {
            assert_eq!(bucket_upper(bucket_index(v)), v, "value {v}");
        }
    }

    #[test]
    fn bucket_upper_bounds_contain_their_values() {
        for v in [
            128,
            129,
            1_000,
            4_030_000,     // ~4.03 ms in ns — the serve-bench warm p50
            1_000_000_000, // 1 s
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let upper = bucket_upper(i);
            assert!(upper >= v, "upper {upper} < value {v}");
            // Relative quantization error stays under 1/64.
            assert!(
                (upper - v) as f64 <= v as f64 / 64.0 + 1.0,
                "value {v}: upper {upper} overshoots by more than 1/64"
            );
            // The bucket is the first whose upper bound reaches v.
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "value {v} fits an earlier bucket");
            }
        }
    }

    #[test]
    fn percentiles_are_ceil_rank_order_statistics() {
        // 1..=100 lie in the exact range, so the histogram reproduces
        // the sorted-sample order statistics bit-for-bit — the rule the
        // bench suite historically implemented over sorted vectors.
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.50), 50);
        assert_eq!(h.percentile(0.99), 99);
        assert_eq!(h.percentile(0.999), 100);
        assert_eq!(h.percentile(0.0), 1, "rank clamps to 1");
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-12);
        assert_eq!(Histogram::new().percentile(0.5), 0, "empty histogram");
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let h = Histogram::new();
        let mut v = 17u64;
        for _ in 0..10_000 {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(v >> 40); // ~24-bit values
        }
        let mut last = 0;
        for p in [0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let q = h.percentile(p);
            assert!(q >= last, "p{p}: {q} < {last}");
            last = q;
        }
        assert!(h.percentile(1.0) >= h.max() - h.max() / 64);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 97));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        let bucketed: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(bucketed, 40_000, "every record landed in a bucket");
    }
}
