//! The safety bar of surgical invalidation: random delta sequences
//! followed by repair must yield pools **bitwise-identical** to cold
//! sampling of the final graph — at 1 and at 4 threads.
//!
//! If this property holds, every downstream consumer (solvers, the pool
//! store, the service) is delta-oblivious: a repaired pool is
//! indistinguishable from one sampled from scratch.

use oipa_graph::{DiGraph, EdgeChange, GraphDelta, NodeId, TopicProb};
use oipa_sampler::testkit::small_random_instance;
use oipa_sampler::MrrPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

fn random_row(rng: &mut StdRng, topic_count: usize) -> Vec<TopicProb> {
    let k = rng.gen_range(1..=2usize.min(topic_count));
    let mut topics: Vec<u16> = (0..topic_count as u16).collect();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let at = rng.gen_range(0..topics.len());
        out.push(TopicProb {
            topic: topics.swap_remove(at),
            prob: rng.gen_range(0.05..0.8f32),
        });
    }
    out
}

/// A random valid delta against `graph`: a few removals, reweights of
/// surviving edges, and insertions of edges absent after the removals.
fn random_delta(rng: &mut StdRng, graph: &DiGraph, topic_count: usize) -> GraphDelta {
    let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|e| (e.source, e.target)).collect();
    let n = graph.node_count() as NodeId;
    let mut delta = GraphDelta::default();
    let mut removed = std::collections::HashSet::new();
    for _ in 0..rng.gen_range(0..4usize).min(edges.len()) {
        let pick = edges[rng.gen_range(0..edges.len())];
        if removed.insert(pick) {
            delta.remove.push(pick);
        }
    }
    for _ in 0..rng.gen_range(0..4usize) {
        let pick = edges[rng.gen_range(0..edges.len())];
        if !removed.contains(&pick) && !delta.reweight.iter().any(|c| (c.source, c.target) == pick)
        {
            delta.reweight.push(EdgeChange {
                source: pick.0,
                target: pick.1,
                probs: random_row(rng, topic_count),
            });
        }
    }
    'insert: for _ in 0..rng.gen_range(0..4usize) {
        for _attempt in 0..32 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            let absent_after_removals =
                graph.find_edge(u, v).is_none() || removed.contains(&(u, v));
            if u != v
                && absent_after_removals
                && !delta.insert.iter().any(|c| (c.source, c.target) == (u, v))
            {
                delta.insert.push(EdgeChange {
                    source: u,
                    target: v,
                    probs: random_row(rng, topic_count),
                });
                continue 'insert;
            }
        }
    }
    delta
}

fn assert_pools_bitwise_equal(a: &MrrPool, b: &MrrPool, context: &str) {
    assert_eq!(a.roots(), b.roots(), "{context}: roots");
    for j in 0..a.ell() {
        for i in 0..a.theta() {
            assert_eq!(
                a.rr_set(j, i),
                b.rr_set(j, i),
                "{context}: piece {j} walk {i}"
            );
        }
        for v in 0..a.node_count() as NodeId {
            assert_eq!(
                a.samples_containing(j, v),
                b.samples_containing(j, v),
                "{context}: index piece {j} node {v}"
            );
        }
    }
    assert_eq!(a.fingerprint(), b.fingerprint(), "{context}: fingerprint");
}

fn run_sequence(case_seed: u64, steps: usize, repair_threads: usize, cold_threads: usize) {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let (base_graph, base_table, campaign) = small_random_instance(&mut rng, 60, 350, 4, 2);
    let theta = 3000;
    let pool_seed = rng.next_u64();
    let worker = rayon::ThreadPoolBuilder::new()
        .num_threads(repair_threads)
        .build()
        .expect("repair thread pool");
    let mut incremental =
        worker.install(|| MrrPool::generate(&base_graph, &base_table, &campaign, theta, pool_seed));
    let mut stale = incremental.clone();

    let (mut graph, mut table) = (base_graph, base_table);
    let mut union_dirty: Vec<NodeId> = Vec::new();
    for step in 0..steps {
        let delta = random_delta(&mut rng, &graph, table.topic_count());
        let app = graph
            .apply_delta(&delta)
            .unwrap_or_else(|e| panic!("random delta invalid at step {step}: {e}"));
        table = table.apply_delta(&delta, &app).unwrap();
        union_dirty.extend_from_slice(&app.dirty_targets);
        graph = app.graph;
        // Repair incrementally after every delta: the pool must track the
        // epoch chain exactly.
        worker
            .install(|| {
                incremental.repair(&graph, &table, &campaign, &app.dirty_targets, pool_seed)
            })
            .unwrap();
    }
    let cold =
        MrrPool::generate_parallel(&graph, &table, &campaign, theta, pool_seed, cold_threads);
    assert_pools_bitwise_equal(
        &incremental,
        &cold,
        &format!("incremental, case {case_seed}"),
    );

    // A single late repair with the unioned dirty set must also converge
    // to the same pool (pools stale by many epochs take this path).
    union_dirty.sort_unstable();
    union_dirty.dedup();
    worker
        .install(|| stale.repair(&graph, &table, &campaign, &union_dirty, pool_seed))
        .unwrap();
    assert_pools_bitwise_equal(&stale, &cold, &format!("unioned, case {case_seed}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random delta sequences + incremental repair == cold resample of
    /// the final graph, single-threaded repair vs 4-thread cold.
    #[test]
    fn repair_equals_cold_one_thread(case_seed in 0u64..1_000_000) {
        run_sequence(case_seed, 3, 1, 4);
    }

    /// Same property with 4-thread repair vs single-threaded cold.
    #[test]
    fn repair_equals_cold_four_threads(case_seed in 0u64..1_000_000) {
        run_sequence(case_seed, 3, 4, 1);
    }
}
