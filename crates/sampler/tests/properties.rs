//! Property-based invariants of the sampling engine.

use oipa_sampler::{testkit, MaterializedProbs, MrrPool, RrPool};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Structural invariants of RR pools: roots in range and always
    /// members of their own set; index ↔ membership agreement on a
    /// sampled node; zero probability ⇒ singleton sets.
    #[test]
    fn rr_pool_invariants(seed in 0u64..5_000, p in 0.0f32..0.6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 30, 120);
        let probs = MaterializedProbs(vec![p; g.edge_count()]);
        let pool = RrPool::generate(&g, &probs, 500, seed);
        prop_assert_eq!(pool.theta(), 500);
        for (i, &root) in pool.roots().iter().enumerate() {
            prop_assert!((root as usize) < 30);
            prop_assert!(pool.store().set(i).contains(&root));
            if p == 0.0 {
                prop_assert_eq!(pool.store().set(i).len(), 1);
            }
        }
        let v = (seed % 30) as u32;
        let listed: std::collections::HashSet<u32> =
            pool.store().samples_containing(v).iter().copied().collect();
        for i in 0..pool.theta() {
            prop_assert_eq!(pool.store().set(i).contains(&v), listed.contains(&(i as u32)));
        }
    }

    /// Estimated spread is monotone in the seed set and bounded by n.
    #[test]
    fn spread_monotone_and_bounded(seed in 0u64..5_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 25, 100);
        let probs = MaterializedProbs(vec![0.3; g.edge_count()]);
        let pool = RrPool::generate(&g, &probs, 2_000, seed);
        let small = pool.estimate_spread(&[0, 1]);
        let large = pool.estimate_spread(&[0, 1, 2, 3]);
        prop_assert!(small <= large + 1e-9);
        prop_assert!(large <= 25.0 + 1e-9);
        prop_assert!(small >= 0.0);
    }

    /// Thread count never changes MRR output (chunked determinism).
    #[test]
    fn mrr_thread_invariance(seed in 0u64..2_000, threads in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, table, campaign) = testkit::small_random_instance(&mut rng, 25, 90, 3, 2);
        let a = MrrPool::generate(&g, &table, &campaign, 600, seed);
        let b = MrrPool::generate_parallel(&g, &table, &campaign, 600, seed, threads);
        prop_assert_eq!(a.roots(), b.roots());
        for j in 0..2 {
            for i in (0..600).step_by(77) {
                prop_assert_eq!(a.rr_set(j, i), b.rr_set(j, i));
            }
        }
    }

    /// Pool serialization round-trips for arbitrary instances.
    #[test]
    fn pool_binio_roundtrip(seed in 0u64..2_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, table, campaign) = testkit::small_random_instance(&mut rng, 20, 70, 3, 2);
        let pool = MrrPool::generate(&g, &table, &campaign, 300, seed);
        let mut buf = Vec::new();
        oipa_sampler::binio::write_pool(&pool, &mut buf).unwrap();
        let back = oipa_sampler::binio::read_pool(&buf[..]).unwrap();
        prop_assert_eq!(back.roots(), pool.roots());
        for j in 0..pool.ell() {
            for i in 0..pool.theta() {
                prop_assert_eq!(back.rr_set(j, i), pool.rr_set(j, i));
            }
        }
    }

    /// LT RR sets are reverse walks and the hub estimate is exact on a
    /// deterministic star.
    #[test]
    fn lt_walk_property(seed in 0u64..2_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = oipa_graph::generators::barabasi_albert(&mut rng, 30, 2);
        let w = oipa_sampler::lt::LtWeights::uniform(&g);
        let pool = oipa_sampler::lt::generate_lt_pool(&g, &w, 400, seed);
        for i in 0..pool.theta() {
            let set = pool.store().set(i);
            // Walks are simple: no duplicate nodes.
            let distinct: std::collections::HashSet<_> = set.iter().collect();
            prop_assert_eq!(distinct.len(), set.len());
            for pair in set.windows(2) {
                prop_assert!(g.find_edge(pair[1], pair[0]).is_some());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The MRR estimator stays within a generous band of forward
    /// simulation across random instances (Lemma 2 in practice).
    #[test]
    fn estimator_band(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, table, campaign) = testkit::small_random_instance(&mut rng, 40, 220, 3, 2);
        let model = oipa_topics::LogisticAdoption::new(2.0, 1.0);
        let pool = MrrPool::generate(&g, &table, &campaign, 40_000, seed ^ 1);
        let assignments = vec![vec![0u32, 5], vec![9, 13]];
        // Inline estimator (avoids depending on oipa-core from here).
        let mut coverage = vec![0u8; pool.theta()];
        for (j, seeds) in assignments.iter().enumerate() {
            let mut seen = vec![false; pool.theta()];
            for &v in seeds {
                for &i in pool.samples_containing(j, v) {
                    if !seen[i as usize] {
                        seen[i as usize] = true;
                        coverage[i as usize] += 1;
                    }
                }
            }
        }
        let est: f64 = coverage
            .iter()
            .map(|&c| model.adoption_prob(c as usize))
            .sum::<f64>()
            * pool.scale();
        let truth = oipa_sampler::simulate::simulate_adoption(
            &mut StdRng::seed_from_u64(seed ^ 2),
            &g,
            &table,
            &campaign,
            &assignments,
            model,
            2_000,
        );
        let tol = 0.15 * truth.max(0.5) + 0.1;
        prop_assert!(
            (est - truth).abs() <= tol,
            "estimate {est} vs simulation {truth}"
        );
    }
}
