//! Linear Threshold (LT) diffusion — the second classical influence model.
//!
//! The paper notes IM is NP-hard "under the popular independent cascade
//! (IC) and linear threshold (LT) influence models" and builds on IC; a
//! credible IM substrate ships both. Under LT every node `v` has incoming
//! edge weights summing to ≤ 1 and a uniform random threshold `θ_v`; `v`
//! activates once the weight of its active in-neighbors reaches `θ_v`.
//! The live-edge equivalent (Kempe et al.): each node keeps **at most one**
//! incoming edge, edge `e` with probability `w(e)`, none with probability
//! `1 − Σw`. RR sets therefore degenerate to reverse random *walks*,
//! which is what [`sample_rr_set_lt`] draws.

use oipa_graph::traverse::BfsScratch;
use oipa_graph::{DiGraph, EdgeId, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Per-edge LT weights, validated so each node's in-weights sum to ≤ 1.
#[derive(Debug, Clone, PartialEq)]
pub struct LtWeights {
    weights: Vec<f32>,
}

impl LtWeights {
    /// Builds from per-edge weights (indexed by [`EdgeId`]), validating
    /// the per-node sum constraint.
    pub fn new(graph: &DiGraph, weights: Vec<f32>) -> Result<Self, String> {
        if weights.len() != graph.edge_count() {
            return Err(format!(
                "expected {} weights, got {}",
                graph.edge_count(),
                weights.len()
            ));
        }
        for &w in &weights {
            if !(0.0..=1.0).contains(&w) || w.is_nan() {
                return Err(format!("weight {w} outside [0, 1]"));
            }
        }
        for v in graph.nodes() {
            let sum: f32 = graph.in_edges(v).map(|e| weights[e.id as usize]).sum();
            if sum > 1.0 + 1e-5 {
                return Err(format!("in-weights of node {v} sum to {sum} > 1"));
            }
        }
        Ok(LtWeights { weights })
    }

    /// The standard uniform convention: `w(u, v) = 1 / in_degree(v)`.
    pub fn uniform(graph: &DiGraph) -> Self {
        let mut weights = vec![0.0f32; graph.edge_count()];
        for v in graph.nodes() {
            let d = graph.in_degree(v);
            if d == 0 {
                continue;
            }
            let w = 1.0 / d as f32;
            for e in graph.in_edges(v) {
                weights[e.id as usize] = w;
            }
        }
        LtWeights { weights }
    }

    /// Weight of one edge.
    #[inline]
    pub fn get(&self, e: EdgeId) -> f32 {
        self.weights[e as usize]
    }
}

/// Samples one LT RR set: a reverse random walk from `root` where each
/// step picks at most one in-edge (probability = its weight) and stops
/// otherwise. Cycles are cut by the visit marks (revisiting ends the walk,
/// matching the live-edge semantics where the walk re-enters its own
/// history).
pub fn sample_rr_set_lt<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    weights: &LtWeights,
    root: NodeId,
    scratch: &mut BfsScratch,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    scratch.begin();
    scratch.mark(root);
    out.push(root);
    let mut current = root;
    loop {
        // Pick at most one in-edge of `current`.
        let mut draw: f32 = rng.gen_range(0.0..1.0);
        let mut chosen: Option<NodeId> = None;
        for e in graph.in_edges(current) {
            let w = weights.get(e.id);
            if draw < w {
                chosen = Some(e.source);
                break;
            }
            draw -= w;
        }
        match chosen {
            Some(u) if !scratch.is_marked(u) => {
                scratch.mark(u);
                out.push(u);
                current = u;
            }
            _ => break,
        }
    }
}

/// Generates θ LT RR sets with shared infrastructure (roots + inverted
/// index), returning a standard [`crate::RrPool`].
///
/// Like the IC samplers, generation is parallel and bitwise deterministic
/// per seed regardless of thread count: walks are chunked, each chunk
/// drawing from its own seed-derived stream.
pub fn generate_lt_pool(
    graph: &DiGraph,
    weights: &LtWeights,
    theta: usize,
    seed: u64,
) -> crate::RrPool {
    assert!(graph.node_count() > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = graph.node_count();
    let roots: Vec<NodeId> = (0..theta).map(|_| rng.gen_range(0..n as NodeId)).collect();
    const CHUNK: usize = 4096;
    let chunk_jobs: Vec<(usize, &[NodeId])> = roots.chunks(CHUNK).enumerate().collect();
    let chunk_sets: Vec<Vec<Vec<NodeId>>> = chunk_jobs
        .par_iter()
        .map(|&(ci, chunk_roots)| {
            let stream = (ci as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x517c_c1b7);
            let mut rng = SmallRng::seed_from_u64(seed ^ stream);
            let mut scratch = BfsScratch::new(n);
            let mut buf = Vec::new();
            chunk_roots
                .iter()
                .map(|&root| {
                    sample_rr_set_lt(&mut rng, graph, weights, root, &mut scratch, &mut buf);
                    buf.clone()
                })
                .collect()
        })
        .collect();
    let sets: Vec<Vec<NodeId>> = chunk_sets.into_iter().flatten().collect();
    let store = crate::RrStore::from_sets(&sets, n);
    crate::RrPool::from_parts(n as u32, roots, store)
}

/// Forward Monte-Carlo LT simulation of the expected spread of `seeds`.
pub fn simulate_spread_lt<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    weights: &LtWeights,
    seeds: &[NodeId],
    runs: usize,
) -> f64 {
    assert!(runs > 0);
    let n = graph.node_count();
    let mut total = 0usize;
    let mut threshold = vec![0.0f32; n];
    let mut incoming = vec![0.0f32; n];
    let mut active = vec![false; n];
    for _ in 0..runs {
        for v in 0..n {
            threshold[v] = rng.gen_range(f32::EPSILON..=1.0);
            incoming[v] = 0.0;
            active[v] = false;
        }
        let mut frontier: Vec<NodeId> = Vec::new();
        for &s in seeds {
            if !active[s as usize] {
                active[s as usize] = true;
                frontier.push(s);
                total += 1;
            }
        }
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for e in graph.out_edges(u) {
                    let v = e.target as usize;
                    if active[v] {
                        continue;
                    }
                    incoming[v] += weights.get(e.id);
                    if incoming[v] >= threshold[v] {
                        active[v] = true;
                        next.push(e.target);
                        total += 1;
                    }
                }
            }
            frontier = next;
        }
    }
    total as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn uniform_weights_valid() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 50, 300);
        let w = LtWeights::uniform(&g);
        // Re-validate through the checking constructor.
        let again = LtWeights::new(&g, (0..g.edge_count()).map(|e| w.get(e as u32)).collect());
        assert!(again.is_ok());
    }

    #[test]
    fn rejects_oversubscribed_node() {
        let g = oipa_graph::DiGraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        assert!(LtWeights::new(&g, vec![0.8, 0.8]).is_err());
        assert!(LtWeights::new(&g, vec![0.5, 0.5]).is_ok());
        assert!(LtWeights::new(&g, vec![0.5]).is_err()); // wrong arity
        assert!(LtWeights::new(&g, vec![1.5, 0.0]).is_err());
    }

    #[test]
    fn walk_on_deterministic_line() {
        // 0 -> 1 -> 2 with in-degree-1 nodes: weights 1, so the reverse
        // walk from 2 always collects {2, 1, 0}.
        let g = oipa_graph::DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let w = LtWeights::uniform(&g);
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = BfsScratch::new(3);
        let mut out = Vec::new();
        for _ in 0..20 {
            sample_rr_set_lt(&mut rng, &g, &w, 2, &mut scratch, &mut out);
            assert_eq!(out, vec![2, 1, 0]);
        }
    }

    #[test]
    fn rr_sets_are_walks() {
        // Every LT RR set must be a simple path in the reverse graph:
        // its length is ≤ n and consecutive nodes are connected.
        let mut rng = StdRng::seed_from_u64(7);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 40, 240);
        let w = LtWeights::uniform(&g);
        let pool = generate_lt_pool(&g, &w, 500, 9);
        for i in 0..pool.theta() {
            let set = pool.store().set(i);
            for pair in set.windows(2) {
                assert!(
                    g.find_edge(pair[1], pair[0]).is_some(),
                    "walk step {} -> {} has no edge",
                    pair[1],
                    pair[0]
                );
            }
        }
    }

    #[test]
    fn estimator_matches_forward_lt_simulation() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = oipa_graph::generators::barabasi_albert(&mut rng, 80, 3);
        let w = LtWeights::uniform(&g);
        let pool = generate_lt_pool(&g, &w, 60_000, 4);
        let seeds = vec![0u32, 1, 2];
        let est = pool.estimate_spread(&seeds);
        let truth = simulate_spread_lt(&mut StdRng::seed_from_u64(5), &g, &w, &seeds, 4000);
        let rel = (est - truth).abs() / truth.max(1.0);
        assert!(
            rel < 0.08,
            "LT estimate {est} vs simulation {truth} ({rel})"
        );
    }

    #[test]
    fn lt_hub_covers_most_sets() {
        let edges: Vec<(u32, u32)> = (1..20).map(|v| (0, v)).collect();
        let g = oipa_graph::DiGraph::from_edges(20, &edges).unwrap();
        let w = LtWeights::uniform(&g);
        let pool = generate_lt_pool(&g, &w, 5_000, 6);
        // Every leaf's only in-edge comes from the hub with weight 1, so
        // every RR set contains node 0 — it covers all samples.
        let best = (0..20u32)
            .max_by_key(|&v| pool.store().samples_containing(v).len())
            .unwrap();
        assert_eq!(best, 0);
        assert_eq!(pool.store().samples_containing(0).len(), pool.theta());
        assert!((pool.estimate_spread(&[0]) - 20.0).abs() < 1e-9);
    }
}
