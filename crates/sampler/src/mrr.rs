//! Multi-reverse-reachable (MRR) set pools.
//!
//! One MRR sample is a multiset `R_i = {R_i^1, …, R_i^ℓ}`: for a single
//! uniformly drawn root `v_i`, one RR set per viral piece under that
//! piece's influence graph. Sharing the root across pieces is what makes
//! Eqn. (6) an unbiased estimator of the adoption utility (Lemma 2).

use crate::edge_prob::{EdgeProb, PieceProbs};
use crate::rr::{sample_rr_set, RrStore};
use oipa_graph::traverse::BfsScratch;
use oipa_graph::{DiGraph, NodeId};
use oipa_topics::{Campaign, EdgeTopicProbs};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// θ MRR samples for an ℓ-piece campaign.
///
/// ```
/// use oipa_sampler::MrrPool;
///
/// let (graph, table, campaign) = oipa_sampler::testkit::fig1();
/// let pool = MrrPool::generate(&graph, &table, &campaign, 1_000, 42);
/// assert_eq!(pool.theta(), 1_000);
/// assert_eq!(pool.ell(), 2);
/// // Every sample's RR set for a piece contains its root.
/// assert!(pool.rr_set(0, 0).contains(&pool.roots()[0]));
/// ```
#[derive(Debug, Clone)]
pub struct MrrPool {
    n: u32,
    roots: Vec<NodeId>,
    stores: Vec<RrStore>,
}

/// Fixed chunk size; must match across sequential/parallel generation so
/// results are reproducible regardless of thread count.
const CHUNK: usize = 2048;

/// Why a pool could not be generated from the given inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolBuildError {
    /// The graph has no nodes to sample roots from.
    EmptyGraph,
    /// The probability table does not describe the graph's edges.
    TableMismatch(String),
    /// The campaign has no pieces.
    EmptyCampaign,
    /// Repair inputs do not match the pool being repaired.
    PoolMismatch(String),
}

impl std::fmt::Display for PoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolBuildError::EmptyGraph => write!(f, "cannot sample an empty graph"),
            PoolBuildError::TableMismatch(m) => {
                write!(f, "probability table does not match the graph: {m}")
            }
            PoolBuildError::EmptyCampaign => write!(f, "campaign has no pieces"),
            PoolBuildError::PoolMismatch(m) => {
                write!(f, "repair inputs do not match the pool: {m}")
            }
        }
    }
}

/// What a [`MrrPool::repair`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Total RR sets in the pool (θ · ℓ).
    pub sets_total: usize,
    /// Sets classified dead and resampled.
    pub sets_resampled: usize,
}

impl std::error::Error for PoolBuildError {}

impl MrrPool {
    /// Generates θ MRR samples, parallelized across all available threads
    /// (or the ambient rayon thread count, if one is installed).
    ///
    /// Panics on inconsistent inputs; use [`MrrPool::try_generate`] for a
    /// typed error instead.
    pub fn generate(
        graph: &DiGraph,
        table: &EdgeTopicProbs,
        campaign: &Campaign,
        theta: usize,
        seed: u64,
    ) -> MrrPool {
        Self::try_generate(graph, table, campaign, theta, seed).expect("valid sampling inputs")
    }

    /// Generates θ MRR samples, validating the inputs.
    ///
    /// Output is **bitwise deterministic per seed regardless of thread
    /// count**: each (piece, walk) pair derives an independent RNG stream
    /// from the base seed (see `walk_rng`), work is chunked only for
    /// parallel scheduling, and results are reassembled in job order.
    /// Per-walk streams also make pools surgically repairable after a
    /// graph delta — see [`MrrPool::repair`].
    pub fn try_generate(
        graph: &DiGraph,
        table: &EdgeTopicProbs,
        campaign: &Campaign,
        theta: usize,
        seed: u64,
    ) -> Result<MrrPool, PoolBuildError> {
        if graph.node_count() == 0 {
            return Err(PoolBuildError::EmptyGraph);
        }
        if campaign.is_empty() {
            return Err(PoolBuildError::EmptyCampaign);
        }
        table
            .check_against(graph)
            .map_err(|e| PoolBuildError::TableMismatch(e.to_string()))?;
        if let Some(piece) = campaign
            .pieces()
            .iter()
            .find(|p| p.topics.dim() != table.topic_count())
        {
            return Err(PoolBuildError::TableMismatch(format!(
                "piece {:?} has {}-dimensional topics but the table has {} topics",
                piece.name,
                piece.topics.dim(),
                table.topic_count()
            )));
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let pick = Uniform::new(0, graph.node_count() as NodeId);
        let roots: Vec<NodeId> = (0..theta).map(|_| pick.sample(&mut rng)).collect();

        // Job = (piece j, chunk ci), j-major so each piece's chunks land
        // contiguously in the collected output.
        let ell = campaign.len();
        let chunk_count = roots.len().div_ceil(CHUNK).max(1);
        let jobs: Vec<(usize, usize)> = (0..ell)
            .flat_map(|j| (0..chunk_count).map(move |ci| (j, ci)))
            .collect();
        let chunk_stores: Vec<RrStore> = jobs
            .par_iter()
            .map(|&(j, ci)| {
                let piece = &campaign.piece(j).topics;
                let probs = PieceProbs::new(table, piece);
                let lo = ci * CHUNK;
                let hi = (lo + CHUNK).min(roots.len());
                generate_chunk(graph, &probs, &roots[lo..hi], seed, j, ci)
            })
            .collect();

        let mut stores = Vec::with_capacity(ell);
        let mut remaining = chunk_stores;
        for _ in 0..ell {
            let tail = remaining.split_off(chunk_count.min(remaining.len()));
            stores.push(RrStore::concat(remaining, graph.node_count()));
            remaining = tail;
        }
        Ok(MrrPool {
            n: graph.node_count() as u32,
            roots,
            stores,
        })
    }

    /// Generates θ MRR samples with exactly `threads` workers. Produces
    /// output identical to [`MrrPool::generate`] for the same seed — the
    /// thread count only affects wall-clock time.
    pub fn generate_parallel(
        graph: &DiGraph,
        table: &EdgeTopicProbs,
        campaign: &Campaign,
        theta: usize,
        seed: u64,
        threads: usize,
    ) -> MrrPool {
        Self::try_generate_parallel(graph, table, campaign, theta, seed, threads)
            .expect("valid sampling inputs")
    }

    /// [`MrrPool::try_generate`] with exactly `threads` workers.
    pub fn try_generate_parallel(
        graph: &DiGraph,
        table: &EdgeTopicProbs,
        campaign: &Campaign,
        theta: usize,
        seed: u64,
        threads: usize,
    ) -> Result<MrrPool, PoolBuildError> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("building sampler thread pool");
        pool.install(|| Self::try_generate(graph, table, campaign, theta, seed))
    }

    /// Number of graph nodes `n` (the estimator scale factor numerator).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n as usize
    }

    /// Number of MRR samples θ.
    #[inline]
    pub fn theta(&self) -> usize {
        self.roots.len()
    }

    /// Number of pieces ℓ.
    #[inline]
    pub fn ell(&self) -> usize {
        self.stores.len()
    }

    /// The shared root sequence.
    #[inline]
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// The estimator scale factor `n/θ`.
    #[inline]
    pub fn scale(&self) -> f64 {
        if self.theta() == 0 {
            0.0
        } else {
            self.n as f64 / self.theta() as f64
        }
    }

    /// RR set `R_i^j`.
    #[inline]
    pub fn rr_set(&self, piece: usize, sample: usize) -> &[NodeId] {
        self.stores[piece].set(sample)
    }

    /// Sample ids `i` with `v ∈ R_i^j` — the inverted index used by every
    /// marginal-gain evaluation in the solvers.
    #[inline]
    pub fn samples_containing(&self, piece: usize, v: NodeId) -> &[u32] {
        self.stores[piece].samples_containing(v)
    }

    /// Per-piece storage (for baselines that treat one piece's sets as a
    /// plain RR pool).
    #[inline]
    pub fn piece_store(&self, piece: usize) -> &RrStore {
        &self.stores[piece]
    }

    /// Reassembles a pool from deserialized parts (crate-internal; used by
    /// `binio`). Corrupt part shapes are reported as errors, not panics,
    /// so loaders can surface them as format failures.
    pub(crate) fn from_parts(
        n: u32,
        roots: Vec<NodeId>,
        stores: Vec<RrStore>,
    ) -> Result<MrrPool, String> {
        if stores.is_empty() {
            return Err("pool has no per-piece stores".to_string());
        }
        if let Some(bad) = stores.iter().position(|s| s.len() != roots.len()) {
            return Err(format!(
                "piece {bad} has {} RR sets but the pool has {} roots",
                stores[bad].len(),
                roots.len()
            ));
        }
        Ok(MrrPool { n, roots, stores })
    }

    /// A content fingerprint over the node count, roots and every piece's
    /// raw RR-set arrays. Two pools fingerprint equal iff they are
    /// bitwise-identical, so caches keyed by fingerprint (the service's
    /// `@external:` arena keys, the persistent store) never alias two
    /// different externally loaded pools.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = oipa_graph::hashing::FxHasher::default();
        h.write_u32(self.n);
        h.write_u64(self.roots.len() as u64);
        for &r in &self.roots {
            h.write_u32(r);
        }
        for store in &self.stores {
            h.write_u64(store.raw_offsets().len() as u64);
            for &off in store.raw_offsets() {
                h.write_u64(off);
            }
            for &v in store.raw_nodes() {
                h.write_u32(v);
            }
        }
        h.finish()
    }

    /// Walk ids (sorted ascending) whose RR set for `piece` contains any
    /// dirty target — the live/dead classification of surgical delta
    /// invalidation.
    ///
    /// This is exact, not conservative-in-both-directions: RR sampling
    /// only ever iterates `in_edges(v)` of *visited* nodes, and a delta
    /// only changes the in-edge rows of its dirty targets, so a walk's
    /// traversal (and draw sequence) changes iff its visited set — which
    /// is precisely its stored RR set — touches a dirty target. The
    /// pool's inverted index answers that membership query directly; it
    /// doubles as the per-walk provenance structure.
    pub fn dead_walks(&self, piece: usize, dirty_targets: &[NodeId]) -> Vec<u32> {
        let mut dead = vec![false; self.theta()];
        for &v in dirty_targets {
            if (v as usize) >= self.n as usize {
                continue;
            }
            for &i in self.stores[piece].samples_containing(v) {
                dead[i as usize] = true;
            }
        }
        dead.iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(i as u32))
            .collect()
    }

    /// Repairs the pool in place after a graph delta. Equivalent to
    /// replacing `self` with [`MrrPool::repaired`]'s result.
    pub fn repair(
        &mut self,
        graph: &DiGraph,
        table: &EdgeTopicProbs,
        campaign: &Campaign,
        dirty_targets: &[NodeId],
        seed: u64,
    ) -> Result<RepairOutcome, PoolBuildError> {
        let (pool, outcome) = self.repaired(graph, table, campaign, dirty_targets, seed)?;
        *self = pool;
        Ok(outcome)
    }

    /// Builds the post-delta pool from this (stale) one: resamples *only*
    /// the dead walks (per piece) against the post-delta inputs and
    /// splices them into copies of the per-piece stores, patching the
    /// inverted indexes rather than rebuilding them. Borrowing `self`
    /// means a caller holding the stale pool behind an `Arc` pays no
    /// intermediate full-pool clone — clean pieces are copied once, dirty
    /// pieces are written once, straight into their repaired form.
    ///
    /// `seed` must be the seed the pool was originally generated with and
    /// `dirty_targets` the union of
    /// [`oipa_graph::DeltaApplication::dirty_targets`] over every delta
    /// applied since — under those conditions the repaired pool is
    /// **bitwise-identical** to `MrrPool::generate(graph, table,
    /// campaign, θ, seed)` on the post-delta inputs (property-tested),
    /// because roots are graph-independent (deltas never change the node
    /// count), live walks replay identical traversals, and dead walks are
    /// regenerated from their own per-walk streams.
    pub fn repaired(
        &self,
        graph: &DiGraph,
        table: &EdgeTopicProbs,
        campaign: &Campaign,
        dirty_targets: &[NodeId],
        seed: u64,
    ) -> Result<(MrrPool, RepairOutcome), PoolBuildError> {
        if graph.node_count() != self.n as usize {
            return Err(PoolBuildError::PoolMismatch(format!(
                "pool was sampled on {} nodes but the graph has {} (deltas are edge-only)",
                self.n,
                graph.node_count()
            )));
        }
        if campaign.len() != self.ell() {
            return Err(PoolBuildError::PoolMismatch(format!(
                "pool has {} pieces but the campaign has {}",
                self.ell(),
                campaign.len()
            )));
        }
        table
            .check_against(graph)
            .map_err(|e| PoolBuildError::TableMismatch(e.to_string()))?;
        if let Some(piece) = campaign
            .pieces()
            .iter()
            .find(|p| p.topics.dim() != table.topic_count())
        {
            return Err(PoolBuildError::TableMismatch(format!(
                "piece {:?} has {}-dimensional topics but the table has {} topics",
                piece.name,
                piece.topics.dim(),
                table.topic_count()
            )));
        }
        let mut outcome = RepairOutcome {
            sets_total: self.theta() * self.ell(),
            sets_resampled: 0,
        };
        let mut stores = Vec::with_capacity(self.ell());
        for j in 0..self.ell() {
            let dead = self.dead_walks(j, dirty_targets);
            if dead.is_empty() {
                stores.push(self.stores[j].clone());
                continue;
            }
            outcome.sets_resampled += dead.len();
            let piece = &campaign.piece(j).topics;
            let probs = PieceProbs::new(table, piece);
            // Chunked so each rayon task reuses one BFS scratch; per-walk
            // streams make the result independent of the chunking.
            let jobs: Vec<&[u32]> = dead.chunks(256).collect();
            let replacements: Vec<(u32, Vec<NodeId>)> = jobs
                .par_iter()
                .map(|chunk| {
                    let mut scratch = BfsScratch::new(graph.node_count());
                    let mut set_buf: Vec<NodeId> = Vec::new();
                    let mut out = Vec::with_capacity(chunk.len());
                    for &i in *chunk {
                        let mut rng = walk_rng(seed, j, i as usize);
                        sample_rr_set(
                            &mut rng,
                            graph,
                            &probs,
                            self.roots[i as usize],
                            &mut scratch,
                            &mut set_buf,
                        );
                        out.push((i, set_buf.clone()));
                    }
                    out
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect();
            stores.push(self.stores[j].spliced(&replacements, graph.node_count()));
        }
        Ok((
            MrrPool {
                n: self.n,
                roots: self.roots.clone(),
                stores,
            },
            outcome,
        ))
    }

    /// Total memory-resident node entries across all pieces.
    pub fn total_nodes(&self) -> usize {
        self.stores.iter().map(|s| s.total_nodes()).sum()
    }

    /// Approximate resident heap size in bytes (roots plus every piece's
    /// store, including inverted indexes). The `PlannerService` pool arena
    /// bounds its cache by this number.
    pub fn memory_bytes(&self) -> usize {
        self.roots.len() * std::mem::size_of::<NodeId>()
            + self.stores.iter().map(|s| s.memory_bytes()).sum::<usize>()
    }
}

/// The per-walk RNG for walk `walk` of piece `piece`.
///
/// Every (piece, walk) pair draws from an independent, reproducible
/// stream. Walk granularity — rather than the chunk granularity the pool
/// originally used — is what makes surgical repair possible: resampling
/// one dead walk replays exactly its own stream, so the repaired set is
/// bitwise-identical to what a cold resample of the post-delta graph
/// would produce for that walk, and every live walk's bytes are
/// untouched. The mix is bijective, so no two streams can collapse onto
/// one even for adversarial seeds.
#[inline]
fn walk_rng(seed: u64, piece: usize, walk: usize) -> SmallRng {
    let stream = ((piece as u64) << 40) | walk as u64;
    SmallRng::seed_from_u64(
        seed ^ stream
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x517c_c1b7),
    )
}

fn generate_chunk<P: EdgeProb + ?Sized>(
    graph: &DiGraph,
    probs: &P,
    roots: &[NodeId],
    seed: u64,
    piece: usize,
    chunk_index: usize,
) -> RrStore {
    let base = chunk_index * CHUNK;
    let mut scratch = BfsScratch::new(graph.node_count());
    let mut set_buf: Vec<NodeId> = Vec::new();
    let mut offsets = Vec::with_capacity(roots.len() + 1);
    let mut nodes: Vec<NodeId> = Vec::new();
    offsets.push(0u64);
    for (k, &root) in roots.iter().enumerate() {
        let mut rng = walk_rng(seed, piece, base + k);
        sample_rr_set(&mut rng, graph, probs, root, &mut scratch, &mut set_buf);
        nodes.extend_from_slice(&set_buf);
        offsets.push(nodes.len() as u64);
    }
    RrStore::from_raw(offsets, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::fig1;

    #[test]
    fn fig1_reachability_matches_example1() {
        let (g, table, campaign) = fig1();
        // Forward closure sanity: under t1 (topic 0), a reaches {a,b,c,d}.
        let probs1 = table.materialize(&campaign.piece(0).topics);
        let live1: Vec<(u32, u32)> = g
            .edges()
            .filter(|e| probs1[e.id as usize] > 0.5)
            .map(|e| (e.source, e.target))
            .collect();
        let g1 = DiGraph::from_edges(5, &live1).unwrap();
        let mut reach = oipa_graph::traverse::forward_reachable(&g1, 0);
        reach.sort_unstable();
        assert_eq!(reach, vec![0, 1, 2, 3]);
        // Under t2, e reaches {b,c,d,e}.
        let probs2 = table.materialize(&campaign.piece(1).topics);
        let live2: Vec<(u32, u32)> = g
            .edges()
            .filter(|e| probs2[e.id as usize] > 0.5)
            .map(|e| (e.source, e.target))
            .collect();
        let g2 = DiGraph::from_edges(5, &live2).unwrap();
        let mut reach = oipa_graph::traverse::forward_reachable(&g2, 4);
        reach.sort_unstable();
        assert_eq!(reach, vec![1, 2, 3, 4]);
    }

    #[test]
    fn mrr_pool_structure() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 1000, 3);
        assert_eq!(pool.theta(), 1000);
        assert_eq!(pool.ell(), 2);
        assert_eq!(pool.node_count(), 5);
        assert!((pool.scale() - 5.0 / 1000.0).abs() < 1e-12);
        // Deterministic graph: every RR set for piece 0 rooted at c must be
        // exactly the backward closure {c, b, a}.
        for i in 0..pool.theta() {
            if pool.roots()[i] == 2 {
                let mut s = pool.rr_set(0, i).to_vec();
                s.sort_unstable();
                assert_eq!(s, vec![0, 1, 2]);
            }
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let (g, table, campaign) = fig1();
        let a = MrrPool::generate(&g, &table, &campaign, 5000, 11);
        let b = MrrPool::generate_parallel(&g, &table, &campaign, 5000, 11, 3);
        assert_eq!(a.roots(), b.roots());
        for j in 0..2 {
            for i in (0..5000).step_by(501) {
                assert_eq!(a.rr_set(j, i), b.rr_set(j, i));
            }
        }
    }

    /// The acceptance bar for parallel sampling: one seed must produce a
    /// bitwise-identical pool — every root and every RR set of every
    /// piece — whether generated with 1, 2, or many threads.
    #[test]
    fn thread_count_invariance_exhaustive() {
        let (g, table, campaign) = fig1();
        // θ chosen to exercise multiple chunks per piece (CHUNK = 2048).
        let theta = 3 * CHUNK + 17;
        let reference = MrrPool::generate_parallel(&g, &table, &campaign, theta, 99, 1);
        for threads in [2, 3, 8] {
            let pool = MrrPool::generate_parallel(&g, &table, &campaign, theta, 99, threads);
            assert_eq!(reference.roots(), pool.roots(), "{threads} threads");
            for j in 0..reference.ell() {
                for i in 0..theta {
                    assert_eq!(
                        reference.rr_set(j, i),
                        pool.rr_set(j, i),
                        "piece {j} sample {i} with {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn inverted_index_matches_membership() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 300, 17);
        for j in 0..pool.ell() {
            for v in 0..5u32 {
                let via: std::collections::HashSet<u32> =
                    pool.samples_containing(j, v).iter().copied().collect();
                for i in 0..pool.theta() {
                    assert_eq!(pool.rr_set(j, i).contains(&v), via.contains(&(i as u32)));
                }
            }
        }
    }

    #[test]
    fn repair_matches_cold_resample_on_fig1() {
        use oipa_graph::{EdgeChange, GraphDelta, TopicProb};
        let (g, table, campaign) = fig1();
        let seed = 77;
        let mut pool = MrrPool::generate(&g, &table, &campaign, 4000, seed);
        // Remove c -> b (kills z2 chains through b) and add a -> d on z1.
        let delta = GraphDelta {
            insert: vec![EdgeChange {
                source: 0,
                target: 3,
                probs: vec![TopicProb {
                    topic: 0,
                    prob: 1.0,
                }],
            }],
            remove: vec![(2, 1)],
            reweight: vec![],
        };
        let app = g.apply_delta(&delta).unwrap();
        let new_table = table.apply_delta(&delta, &app).unwrap();
        let outcome = pool
            .repair(&app.graph, &new_table, &campaign, &app.dirty_targets, seed)
            .unwrap();
        assert!(outcome.sets_resampled > 0);
        assert!(outcome.sets_resampled < outcome.sets_total);
        let cold = MrrPool::generate(&app.graph, &new_table, &campaign, 4000, seed);
        assert_eq!(pool.roots(), cold.roots());
        assert_eq!(pool.fingerprint(), cold.fingerprint());
        for j in 0..pool.ell() {
            for i in 0..pool.theta() {
                assert_eq!(pool.rr_set(j, i), cold.rr_set(j, i), "piece {j} walk {i}");
            }
            for v in 0..5u32 {
                assert_eq!(
                    pool.samples_containing(j, v),
                    cold.samples_containing(j, v),
                    "inverted index piece {j} node {v}"
                );
            }
        }
    }

    #[test]
    fn dead_walk_classification_is_exact() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 1000, 5);
        for j in 0..pool.ell() {
            let dead = pool.dead_walks(j, &[1]);
            for i in 0..pool.theta() {
                let touches = pool.rr_set(j, i).contains(&1);
                assert_eq!(dead.binary_search(&(i as u32)).is_ok(), touches);
            }
        }
        // Out-of-range dirty targets are ignored, empty dirt kills nothing.
        assert!(pool.dead_walks(0, &[]).is_empty());
        assert!(pool.dead_walks(0, &[999]).is_empty());
    }

    #[test]
    fn repair_rejects_mismatched_inputs() {
        let (g, table, campaign) = fig1();
        let mut pool = MrrPool::generate(&g, &table, &campaign, 100, 5);
        let bigger = DiGraph::from_edges(6, &[(0, 1)]).unwrap();
        assert!(matches!(
            pool.repair(&bigger, &table, &campaign, &[0], 5),
            Err(PoolBuildError::PoolMismatch(_))
        ));
        let one_piece = Campaign::new(vec![campaign.pieces()[0].clone()]).unwrap();
        assert!(matches!(
            pool.repair(&g, &table, &one_piece, &[0], 5),
            Err(PoolBuildError::PoolMismatch(_))
        ));
    }

    #[test]
    fn roots_shared_across_pieces() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 200, 29);
        for i in 0..pool.theta() {
            let root = pool.roots()[i];
            // The root always belongs to both of its RR sets.
            assert!(pool.rr_set(0, i).contains(&root));
            assert!(pool.rr_set(1, i).contains(&root));
        }
    }
}
