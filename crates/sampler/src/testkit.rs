//! Shared test fixtures: the paper's running example and small random
//! instances.
//!
//! Compiled unconditionally (not behind `cfg(test)`) so downstream crates'
//! tests, the examples, and the bench harness can reuse the exact Fig. 1
//! instance the paper's Examples 1–3 are computed on.

use oipa_graph::{DiGraph, NodeId};
use oipa_topics::{
    Campaign, EdgeProbsBuilder, EdgeTopicProbs, Piece, SparseTopicVector, TopicVector,
};
use rand::Rng;

/// Node names of the running example, in id order.
pub const FIG1_NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

/// The paper's running example (Fig. 1): 5 users `a..e`, two topics
/// (`z1` = "tax", `z2` = "healthcare"), six deterministic edges.
///
/// Under piece `t1 = (1, 0)`, seed `{a}` reaches `{a, b, c, d}`; under
/// `t2 = (0, 1)`, seed `{e}` reaches `{b, c, d, e}` — reproducing
/// Example 1's indicator values and σ({{a},{e}}) = 1.05 at α = 3, β = 1.
pub fn fig1() -> (DiGraph, EdgeTopicProbs, Campaign) {
    // a=0, b=1, c=2, d=3, e=4.
    let edges = [
        (0u32, 1u32, 0u16, 1.0f32), // a -> b on z1
        (1, 2, 0, 1.0),             // b -> c on z1
        (1, 3, 0, 1.0),             // b -> d on z1
        (4, 3, 1, 1.0),             // e -> d on z2
        (3, 2, 1, 1.0),             // d -> c on z2
        (2, 1, 1, 1.0),             // c -> b on z2
    ];
    let g = DiGraph::from_edges(5, &edges.map(|(u, v, _, _)| (u, v))).expect("valid edges");
    let mut b = EdgeProbsBuilder::new(g.edge_count(), 2);
    for &(u, v, z, p) in &edges {
        let e = g.find_edge(u, v).expect("edge exists");
        b.set(
            e.id,
            SparseTopicVector::new(vec![(z, p)], 2).expect("valid row"),
        )
        .expect("edge in range");
    }
    let table = b.build();
    let campaign = Campaign::new(vec![
        Piece::new("t1", TopicVector::one_hot(2, 0).expect("topic 0")),
        Piece::new("t2", TopicVector::one_hot(2, 1).expect("topic 1")),
    ])
    .expect("uniform dimensions");
    (g, table, campaign)
}

/// A small random OIPA instance for property tests: an Erdős–Rényi graph
/// with a synthetic topic table and a one-hot campaign.
pub fn small_random_instance<R: Rng + ?Sized>(
    rng: &mut R,
    n: u32,
    m: usize,
    topics: usize,
    ell: usize,
) -> (DiGraph, EdgeTopicProbs, Campaign) {
    let g = oipa_graph::generators::erdos_renyi_gnm(rng, n, m);
    let table = oipa_topics::synthesize_random(
        rng,
        &g,
        oipa_topics::SynthesisParams {
            topic_count: topics,
            avg_support: 1.5,
            max_prob: 0.8,
            weighted_cascade: false,
        },
    );
    let campaign = Campaign::sample_one_hot(rng, topics, ell);
    (g, table, campaign)
}

/// All singleton assignments `(piece, node)` of an instance — the brute
/// force search space at budget 1.
pub fn singleton_assignments(n: usize, ell: usize) -> Vec<(usize, NodeId)> {
    (0..ell)
        .flat_map(|j| (0..n as NodeId).map(move |v| (j, v)))
        .collect()
}
