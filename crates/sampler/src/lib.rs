//! # oipa-sampler
//!
//! Reverse-reachable-set sampling engine for the OIPA reproduction.
//!
//! The paper estimates the adoption utility (AU) of an assignment plan via
//! **Multi-Reverse-Reachable (MRR) sets** (§V-A): sample θ root users
//! uniformly; for each root, build one reverse-reachable set per viral
//! piece `t_j` under the piece's homogeneous influence graph
//! (`p(t_j, e) = t_j · p(e)`). The AU estimator is then
//!
//! ```text
//! σ(S̄) ≈ n/θ · Σ_i  1 / (1 + exp(α − β · Σ_j I[R_i^j ∩ S_j ≠ ∅]))
//! ```
//!
//! This crate provides:
//!
//! * [`RrPool`] — θ single-piece RR sets with an inverted node→samples
//!   index (what classical IM greedy consumes);
//! * [`MrrPool`] — the multi-piece extension sharing one root sequence
//!   across pieces, as required by Lemma 2's unbiasedness argument;
//! * [`EdgeProb`] — the edge-probability abstraction (materialized vector
//!   or on-the-fly `t · p(e)` dot products);
//! * [`simulate`] — forward Monte-Carlo cascade simulation, the ground
//!   truth against which the estimator is validated;
//! * [`theta`] — Chernoff/martingale sample-size calculators.
//!
//! Generation is deterministic given a seed, *independent of thread count*:
//! the parallel generator partitions the sample range into fixed chunks,
//! each derived from the base seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binio;
mod edge_prob;
pub mod interdependent;
pub mod lt;
mod mrr;
mod rr;
pub mod simulate;
pub mod testkit;
pub mod theta;

pub use edge_prob::{EdgeProb, MaterializedProbs, PieceProbs};
pub use mrr::{MrrPool, PoolBuildError, RepairOutcome};
pub use rr::{sample_rr_set, RrPool, RrStore};
