//! Interdependent viral pieces — the paper's first future-work direction
//! (§VII: *"It would be interesting to study the interdependence of
//! different viral pieces while still optimizing the adoption utility"*).
//!
//! The base model propagates pieces independently. Here we add a pairwise
//! [`InteractionMatrix`]: when a user who already received piece `i`
//! forwards piece `j`, the pass-through probability of `j` on that user's
//! out-edges is multiplied by `boost[i][j]` (≥ 1 complementary, ≤ 1
//! competitive, 1 independent). Pieces propagate sequentially in campaign
//! order, so earlier pieces condition later ones — the "ordering"
//! sensitivity the comparative-IM literature studies.
//!
//! RR-set sampling does not extend to this model (reverse reachability is
//! no longer piece-local), so the module is simulation-based: a
//! Monte-Carlo evaluator plus a simulation-driven greedy for small
//! instances. It exists to *explore* the future-work model, not to scale.

use crate::edge_prob::EdgeProb;
use oipa_graph::{DiGraph, NodeId};
use oipa_topics::{Campaign, EdgeTopicProbs, LogisticAdoption};
use rand::Rng;

/// Pairwise piece-interaction multipliers.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionMatrix {
    ell: usize,
    /// `boost[i][j]`: multiplier on piece `j`'s probability out of users
    /// who already received piece `i` (`i ≠ j`; the diagonal is unused).
    boost: Vec<f64>,
}

impl InteractionMatrix {
    /// No interaction — reduces to the base model.
    pub fn independent(ell: usize) -> Self {
        InteractionMatrix {
            ell,
            boost: vec![1.0; ell * ell],
        }
    }

    /// Every received piece multiplies every other piece's probability by
    /// `factor` (> 1 complementary, < 1 competitive).
    pub fn uniform(ell: usize, factor: f64) -> Self {
        assert!(factor >= 0.0);
        let mut m = Self::independent(ell);
        for i in 0..ell {
            for j in 0..ell {
                if i != j {
                    m.boost[i * ell + j] = factor;
                }
            }
        }
        m
    }

    /// Sets one directed interaction.
    pub fn set(&mut self, i: usize, j: usize, factor: f64) -> &mut Self {
        assert!(i < self.ell && j < self.ell && i != j);
        assert!(factor >= 0.0);
        self.boost[i * self.ell + j] = factor;
        self
    }

    /// The multiplier from `i` onto `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.boost[i * self.ell + j]
    }

    /// Number of pieces.
    #[inline]
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// Combined multiplier on piece `j` for a user whose received-piece
    /// bitmask is `received`.
    fn multiplier(&self, received: u32, j: usize) -> f64 {
        let mut m = 1.0;
        for i in 0..self.ell {
            if i != j && received >> i & 1 == 1 {
                m *= self.get(i, j);
            }
        }
        m
    }
}

/// Monte-Carlo adoption utility under piece interaction. `assignments[j]`
/// is the seed set for piece `j`; pieces cascade in index order within
/// each run.
#[allow(clippy::too_many_arguments)]
pub fn simulate_adoption_interdependent<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    table: &EdgeTopicProbs,
    campaign: &Campaign,
    assignments: &[Vec<NodeId>],
    model: LogisticAdoption,
    interaction: &InteractionMatrix,
    runs: usize,
) -> f64 {
    let ell = campaign.len();
    assert_eq!(assignments.len(), ell);
    assert_eq!(interaction.ell(), ell);
    assert!(ell <= 32, "bitmask limit");
    assert!(runs > 0);
    let n = graph.node_count();
    // Pre-materialize base probabilities per piece.
    let base: Vec<Vec<f32>> = (0..ell)
        .map(|j| table.materialize(&campaign.piece(j).topics))
        .collect();
    let mut received = vec![0u32; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut next: Vec<NodeId> = Vec::new();
    let mut utility = 0.0f64;
    for _ in 0..runs {
        received.iter_mut().for_each(|r| *r = 0);
        for (j, seeds) in assignments.iter().enumerate() {
            let bit = 1u32 << j;
            frontier.clear();
            for &s in seeds {
                if received[s as usize] & bit == 0 {
                    received[s as usize] |= bit;
                    frontier.push(s);
                }
            }
            while !frontier.is_empty() {
                next.clear();
                for &u in &frontier {
                    // The forwarder's previously received pieces modulate
                    // this piece's pass-through probability.
                    let mult = interaction.multiplier(received[u as usize] & !bit, j);
                    for e in graph.out_edges(u) {
                        if received[e.target as usize] & bit != 0 {
                            continue;
                        }
                        let p = (base[j].prob(e.id) as f64 * mult).clamp(0.0, 1.0);
                        if p > 0.0 && rng.gen_range(0.0..1.0) < p {
                            received[e.target as usize] |= bit;
                            next.push(e.target);
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
            }
        }
        utility += received
            .iter()
            .map(|&r| model.adoption_prob(r.count_ones() as usize))
            .sum::<f64>();
    }
    utility / runs as f64
}

/// Simulation-driven greedy for the interdependent model: repeatedly adds
/// the `(piece, promoter)` with the largest simulated utility gain.
///
/// O(k · ℓ · |candidates| · runs · cascade); strictly a small-instance
/// exploration tool (no approximation guarantee — the objective is not
/// even submodular in the independent case).
#[allow(clippy::too_many_arguments)]
pub fn greedy_by_simulation<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    table: &EdgeTopicProbs,
    campaign: &Campaign,
    model: LogisticAdoption,
    interaction: &InteractionMatrix,
    candidates: &[NodeId],
    k: usize,
    runs: usize,
) -> (Vec<Vec<NodeId>>, f64) {
    let ell = campaign.len();
    let mut assignments: Vec<Vec<NodeId>> = vec![Vec::new(); ell];
    let mut current = 0.0f64;
    for _ in 0..k {
        let mut best: Option<(f64, usize, NodeId)> = None;
        for j in 0..ell {
            for &v in candidates {
                if assignments[j].contains(&v) {
                    continue;
                }
                assignments[j].push(v);
                let u = simulate_adoption_interdependent(
                    rng,
                    graph,
                    table,
                    campaign,
                    &assignments,
                    model,
                    interaction,
                    runs,
                );
                assignments[j].pop();
                let better = match best {
                    None => u > current,
                    Some((bu, bj, bv)) => u > bu || (u == bu && (j, v) < (bj, bv)),
                };
                if better {
                    best = Some((u, j, v));
                }
            }
        }
        let Some((u, j, v)) = best else { break };
        assignments[j].push(v);
        assignments[j].sort_unstable();
        current = u;
    }
    (assignments, current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate_adoption;
    use crate::testkit::fig1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_matches_independent_model() {
        let (g, table, campaign) = fig1();
        let model = LogisticAdoption::example();
        let assignments = vec![vec![0], vec![4]];
        let inter = InteractionMatrix::independent(2);
        let a = simulate_adoption_interdependent(
            &mut StdRng::seed_from_u64(1),
            &g,
            &table,
            &campaign,
            &assignments,
            model,
            &inter,
            40,
        );
        let b = simulate_adoption(
            &mut StdRng::seed_from_u64(2),
            &g,
            &table,
            &campaign,
            &assignments,
            model,
            40,
        );
        // Deterministic graph: both are exact.
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn complementary_boost_helps() {
        // Random graph with sub-certain probabilities so boosts can matter.
        let mut rng = StdRng::seed_from_u64(5);
        let (g, table, campaign) = crate::testkit::small_random_instance(&mut rng, 60, 500, 3, 3);
        let model = LogisticAdoption::new(2.0, 1.0);
        let assignments = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let runs = 600;
        let indep = simulate_adoption_interdependent(
            &mut StdRng::seed_from_u64(7),
            &g,
            &table,
            &campaign,
            &assignments,
            model,
            &InteractionMatrix::independent(3),
            runs,
        );
        let boost = simulate_adoption_interdependent(
            &mut StdRng::seed_from_u64(7),
            &g,
            &table,
            &campaign,
            &assignments,
            model,
            &InteractionMatrix::uniform(3, 2.0),
            runs,
        );
        let compete = simulate_adoption_interdependent(
            &mut StdRng::seed_from_u64(7),
            &g,
            &table,
            &campaign,
            &assignments,
            model,
            &InteractionMatrix::uniform(3, 0.1),
            runs,
        );
        assert!(
            boost >= indep - 0.15,
            "complementary {boost} should not trail independent {indep}"
        );
        assert!(
            compete <= indep + 0.15,
            "competitive {compete} should not beat independent {indep}"
        );
        assert!(boost > compete, "boost {boost} vs compete {compete}");
    }

    #[test]
    fn matrix_accessors() {
        let mut m = InteractionMatrix::independent(3);
        assert_eq!(m.get(0, 1), 1.0);
        m.set(0, 1, 2.5);
        assert_eq!(m.get(0, 1), 2.5);
        assert_eq!(m.get(1, 0), 1.0);
        // Multiplier composes over received pieces.
        m.set(2, 1, 2.0);
        let mult = m.multiplier(0b101, 1); // received pieces 0 and 2
        assert!((mult - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn diagonal_set_rejected() {
        InteractionMatrix::independent(2).set(1, 1, 2.0);
    }

    #[test]
    fn greedy_by_simulation_finds_fig1_optimum() {
        let (g, table, campaign) = fig1();
        let model = LogisticAdoption::example();
        let mut rng = StdRng::seed_from_u64(11);
        let (assignments, utility) = greedy_by_simulation(
            &mut rng,
            &g,
            &table,
            &campaign,
            model,
            &InteractionMatrix::independent(2),
            &[0, 1, 2, 3, 4],
            2,
            8, // deterministic graph: any run count is exact
        );
        assert_eq!(assignments[0], vec![0]);
        assert_eq!(assignments[1], vec![4]);
        assert!((utility - 1.045).abs() < 0.01);
    }

    #[test]
    fn order_dependence_is_observable() {
        // With asymmetric boosts, piece order matters: a strong 0→1 boost
        // only helps piece 1 (which cascades after 0).
        let (g, table, campaign) = fig1();
        let model = LogisticAdoption::example();
        let mut forward = InteractionMatrix::independent(2);
        forward.set(0, 1, 3.0);
        let mut backward = InteractionMatrix::independent(2);
        backward.set(1, 0, 3.0);
        // On the deterministic Fig. 1 graph probabilities are 0/1, so the
        // boost cannot change outcomes — just verify both run and agree.
        let a = simulate_adoption_interdependent(
            &mut StdRng::seed_from_u64(1),
            &g,
            &table,
            &campaign,
            &[vec![0], vec![4]],
            model,
            &forward,
            10,
        );
        let b = simulate_adoption_interdependent(
            &mut StdRng::seed_from_u64(1),
            &g,
            &table,
            &campaign,
            &[vec![0], vec![4]],
            model,
            &backward,
            10,
        );
        assert!((a - b).abs() < 1e-9);
        assert!((a - 1.045).abs() < 0.01);
    }
}
