//! Edge-probability sources for sampling.

use oipa_graph::EdgeId;
use oipa_topics::{EdgeTopicProbs, TopicVector};

/// A source of per-edge activation probabilities for one homogeneous
/// influence graph (one viral piece, or a collapsed topic-oblivious graph).
pub trait EdgeProb: Sync {
    /// Probability that the piece passes through edge `e`.
    fn prob(&self, e: EdgeId) -> f32;
}

/// A flat, pre-materialized per-edge probability vector.
///
/// Fastest option; costs `4·m` bytes per piece. Produced by
/// [`EdgeTopicProbs::materialize`].
#[derive(Debug, Clone)]
pub struct MaterializedProbs(pub Vec<f32>);

impl EdgeProb for MaterializedProbs {
    #[inline]
    fn prob(&self, e: EdgeId) -> f32 {
        self.0[e as usize]
    }
}

impl EdgeProb for Vec<f32> {
    #[inline]
    fn prob(&self, e: EdgeId) -> f32 {
        self[e as usize]
    }
}

/// On-the-fly `t · p(e)` evaluation against the sparse topic table.
///
/// Zero extra memory; each probe costs one sparse dot product (cheap at the
/// real-world supports of ~1.5 entries/edge).
pub struct PieceProbs<'a> {
    table: &'a EdgeTopicProbs,
    piece: &'a TopicVector,
}

impl<'a> PieceProbs<'a> {
    /// Binds a piece to a probability table.
    pub fn new(table: &'a EdgeTopicProbs, piece: &'a TopicVector) -> Self {
        assert_eq!(
            table.topic_count(),
            piece.dim(),
            "piece dimension must match table"
        );
        PieceProbs { table, piece }
    }
}

impl EdgeProb for PieceProbs<'_> {
    #[inline]
    fn prob(&self, e: EdgeId) -> f32 {
        self.table.piece_prob(self.piece, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_topics::{EdgeProbsBuilder, SparseTopicVector};

    #[test]
    fn materialized_and_on_the_fly_agree() {
        let mut b = EdgeProbsBuilder::new(3, 2);
        b.set(0, SparseTopicVector::new(vec![(0, 0.5)], 2).unwrap())
            .unwrap();
        b.set(2, SparseTopicVector::new(vec![(1, 0.9)], 2).unwrap())
            .unwrap();
        let table = b.build();
        let piece = TopicVector::new(vec![1.0, 0.0]).unwrap();
        let mat = MaterializedProbs(table.materialize(&piece));
        let fly = PieceProbs::new(&table, &piece);
        for e in 0..3 {
            assert_eq!(mat.prob(e), fly.prob(e));
        }
        assert_eq!(mat.prob(0), 0.5);
        assert_eq!(mat.prob(2), 0.0);
    }
}
