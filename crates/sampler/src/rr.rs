//! Single-piece reverse-reachable set pools.

use crate::edge_prob::EdgeProb;
use oipa_graph::traverse::BfsScratch;
use oipa_graph::{DiGraph, NodeId};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Flat storage for θ RR sets plus the inverted node→samples index.
///
/// * `offsets[i]..offsets[i+1]` delimits the nodes of set `i` in `nodes`.
/// * `idx_offsets[v]..idx_offsets[v+1]` delimits, in `idx_samples`, the
///   sample ids whose RR set contains `v` — the structure every greedy
///   coverage step walks.
#[derive(Debug, Clone, Default)]
pub struct RrStore {
    offsets: Vec<u64>,
    nodes: Vec<NodeId>,
    idx_offsets: Vec<u64>,
    idx_samples: Vec<u32>,
}

impl RrStore {
    /// Number of RR sets θ.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the store holds no sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The nodes of RR set `i`.
    #[inline]
    pub fn set(&self, i: usize) -> &[NodeId] {
        &self.nodes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Sample ids whose RR set contains `v`.
    #[inline]
    pub fn samples_containing(&self, v: NodeId) -> &[u32] {
        &self.idx_samples
            [self.idx_offsets[v as usize] as usize..self.idx_offsets[v as usize + 1] as usize]
    }

    /// Total nodes across all sets (Σ|R_i|).
    #[inline]
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate resident heap size in bytes: CSR arrays plus the
    /// inverted index. Pool caches (e.g. the `PlannerService` arena) use
    /// this to enforce a byte budget.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.nodes.len() * std::mem::size_of::<NodeId>()
            + self.idx_offsets.len() * std::mem::size_of::<u64>()
            + self.idx_samples.len() * std::mem::size_of::<u32>()
    }

    /// Average RR-set size.
    pub fn avg_set_size(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.total_nodes() as f64 / self.len() as f64
        }
    }

    pub(crate) fn build_index(&mut self, n: usize) {
        let mut counts = vec![0u64; n + 1];
        for &v in &self.nodes {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut idx_samples = vec![0u32; self.nodes.len()];
        let mut cursor = counts.clone();
        for i in 0..self.len() {
            let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
            for &v in &self.nodes[lo..hi] {
                let slot = cursor[v as usize];
                idx_samples[slot as usize] = i as u32;
                cursor[v as usize] += 1;
            }
        }
        self.idx_offsets = counts;
        self.idx_samples = idx_samples;
    }

    /// Raw CSR offsets (for serialization).
    pub(crate) fn raw_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw node array (for serialization).
    pub(crate) fn raw_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Builds an indexed store from a slice of RR sets (used by callers
    /// that accumulate sets incrementally, e.g. the IMM baseline).
    pub fn from_sets(sets: &[Vec<NodeId>], n: usize) -> RrStore {
        let mut offsets = Vec::with_capacity(sets.len() + 1);
        offsets.push(0u64);
        let total: usize = sets.iter().map(|s| s.len()).sum();
        let mut nodes = Vec::with_capacity(total);
        for s in sets {
            nodes.extend_from_slice(s);
            offsets.push(nodes.len() as u64);
        }
        let mut store = RrStore::from_raw(offsets, nodes);
        store.build_index(n);
        store
    }

    /// Builds a store from raw CSR arrays without an inverted index (used
    /// for chunks that will be concatenated; the final index is built by
    /// [`RrStore::concat`]).
    pub(crate) fn from_raw(offsets: Vec<u64>, nodes: Vec<NodeId>) -> RrStore {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().expect("non-empty") as usize, nodes.len());
        RrStore {
            offsets,
            nodes,
            idx_offsets: Vec::new(),
            idx_samples: Vec::new(),
        }
    }

    /// Returns a copy of this store with the sets named in `replacements`
    /// (sorted ascending by set id, each id at most once) replaced and
    /// the inverted index patched.
    ///
    /// This is the splice step of surgical pool repair, and it is
    /// surgical on both axes. The CSR arrays copy live sets in
    /// contiguous *runs* between replacements (one `memcpy` per run, not
    /// one per set), and the inverted index is patched rather than
    /// rebuilt: set ids never move, so only the postings of nodes that
    /// appear in an old or new replaced set change — every other node's
    /// postings are carried over verbatim. The result is bitwise
    /// identical to a full [`RrStore::build_index`] rebuild (postings
    /// stay ascending by set id), so a repaired pool still matches a
    /// cold resample that produced the same per-set contents. Borrowing
    /// rather than mutating lets a repair build the new store straight
    /// from the stale one — no intermediate full-pool clone.
    pub(crate) fn spliced(&self, replacements: &[(u32, Vec<NodeId>)], n: usize) -> RrStore {
        debug_assert!(
            replacements.windows(2).all(|w| w[0].0 < w[1].0),
            "replacements must be sorted by set id without duplicates"
        );
        if replacements.is_empty() {
            return self.clone();
        }

        // Which nodes' postings change, and the additions per node
        // (`(node, set id)` pairs sorted by node then id). Both need the
        // *old* sets, so compute them before splicing.
        let mut affected = vec![false; n];
        let mut additions: Vec<(NodeId, u32)> = Vec::new();
        for (i, new_set) in replacements {
            for &v in self.set(*i as usize) {
                affected[v as usize] = true;
            }
            for &v in new_set {
                affected[v as usize] = true;
                additions.push((v, *i));
            }
        }
        additions.sort_unstable();

        // Splice the CSR arrays: live runs between consecutive dead sets
        // are copied wholesale, with their offsets shifted by the
        // accumulated size delta.
        let old_len: usize = replacements
            .iter()
            .map(|(i, _)| self.set(*i as usize).len())
            .sum();
        let new_len: usize = replacements.iter().map(|(_, s)| s.len()).sum();
        let mut nodes: Vec<NodeId> = Vec::with_capacity(self.nodes.len() - old_len + new_len);
        let mut offsets: Vec<u64> = Vec::with_capacity(self.offsets.len());
        offsets.push(0u64);
        let copy_run = |nodes: &mut Vec<NodeId>, offsets: &mut Vec<u64>, from: usize, to: usize| {
            if from >= to {
                return;
            }
            let (lo, hi) = (self.offsets[from] as usize, self.offsets[to] as usize);
            let shift = (nodes.len() as u64).wrapping_sub(self.offsets[from]);
            nodes.extend_from_slice(&self.nodes[lo..hi]);
            offsets.extend(
                self.offsets[from + 1..=to]
                    .iter()
                    .map(|&o| o.wrapping_add(shift)),
            );
        };
        let mut run_start = 0usize;
        for (i, new_set) in replacements {
            copy_run(&mut nodes, &mut offsets, run_start, *i as usize);
            nodes.extend_from_slice(new_set);
            offsets.push(nodes.len() as u64);
            run_start = *i as usize + 1;
        }
        copy_run(&mut nodes, &mut offsets, run_start, self.len());

        if self.idx_offsets.len() != n + 1 {
            // No index to patch (raw chunk store) — splice and rebuild.
            let mut store = RrStore::from_raw(offsets, nodes);
            store.build_index(n);
            return store;
        }

        // Patch the inverted index. Unaffected nodes keep their postings
        // verbatim; affected nodes merge (old postings minus replaced
        // ids) with their additions — both ascending and disjoint, so
        // the merged postings are ascending exactly as a rebuild would
        // produce them.
        let mut idx_offsets: Vec<u64> = Vec::with_capacity(n + 1);
        let mut idx_samples: Vec<u32> = Vec::with_capacity(nodes.len());
        idx_offsets.push(0u64);
        let mut add_cursor = 0usize;
        for (v, &touched) in affected.iter().enumerate() {
            let (lo, hi) = (
                self.idx_offsets[v] as usize,
                self.idx_offsets[v + 1] as usize,
            );
            if !touched {
                idx_samples.extend_from_slice(&self.idx_samples[lo..hi]);
            } else {
                let adds_lo = add_cursor;
                while add_cursor < additions.len() && additions[add_cursor].0 as usize == v {
                    add_cursor += 1;
                }
                let adds = &additions[adds_lo..add_cursor];
                let mut a = 0usize;
                let mut dead = 0usize;
                for &id in &self.idx_samples[lo..hi] {
                    while dead < replacements.len() && replacements[dead].0 < id {
                        dead += 1;
                    }
                    if dead < replacements.len() && replacements[dead].0 == id {
                        continue;
                    }
                    while a < adds.len() && adds[a].1 < id {
                        idx_samples.push(adds[a].1);
                        a += 1;
                    }
                    idx_samples.push(id);
                }
                for &(_, id) in &adds[a..] {
                    idx_samples.push(id);
                }
            }
            idx_offsets.push(idx_samples.len() as u64);
        }
        debug_assert_eq!(idx_samples.len(), nodes.len());

        RrStore {
            offsets,
            nodes,
            idx_offsets,
            idx_samples,
        }
    }

    /// Concatenates chunked stores (in order) and rebuilds the index.
    pub(crate) fn concat(chunks: Vec<RrStore>, n: usize) -> RrStore {
        let total_sets: usize = chunks.iter().map(|c| c.len()).sum();
        let total_nodes: usize = chunks.iter().map(|c| c.total_nodes()).sum();
        let mut out = RrStore {
            offsets: Vec::with_capacity(total_sets + 1),
            nodes: Vec::with_capacity(total_nodes),
            idx_offsets: Vec::new(),
            idx_samples: Vec::new(),
        };
        out.offsets.push(0);
        for chunk in chunks {
            for i in 0..chunk.len() {
                out.nodes.extend_from_slice(chunk.set(i));
                out.offsets.push(out.nodes.len() as u64);
            }
        }
        out.build_index(n);
        out
    }
}

/// Samples one RR set rooted at `root`: the set of nodes that reach `root`
/// in a live-edge sample of the influence graph, where each in-edge is live
/// independently with its piece probability.
///
/// `scratch` provides O(1)-reset visit marking; `out` receives the set
/// (cleared first).
pub fn sample_rr_set<R: Rng + ?Sized, P: EdgeProb + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    probs: &P,
    root: NodeId,
    scratch: &mut BfsScratch,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    scratch.begin();
    scratch.mark(root);
    out.push(root);
    let mut head = 0usize;
    while head < out.len() {
        let v = out[head];
        head += 1;
        for e in graph.in_edges(v) {
            if scratch.is_marked(e.source) {
                continue;
            }
            let p = probs.prob(e.id);
            if p > 0.0 && rng.gen_range(0.0f32..1.0) < p {
                scratch.mark(e.source);
                out.push(e.source);
            }
        }
    }
}

/// A pool of θ RR sets for one homogeneous influence graph, with roots.
#[derive(Debug, Clone)]
pub struct RrPool {
    n: u32,
    roots: Vec<NodeId>,
    store: RrStore,
}

impl RrPool {
    /// Generates θ RR sets, parallelized across all available threads (or
    /// the ambient rayon thread count, if one is installed). Output is
    /// bitwise deterministic per seed regardless of thread count: each
    /// fixed-size chunk of roots draws from its own seed-derived stream.
    pub fn generate<P: EdgeProb + ?Sized + Sync>(
        graph: &DiGraph,
        probs: &P,
        theta: usize,
        seed: u64,
    ) -> RrPool {
        assert!(graph.node_count() > 0, "cannot sample an empty graph");
        let mut rng = SmallRng::seed_from_u64(seed);
        let pick = Uniform::new(0, graph.node_count() as NodeId);
        let roots: Vec<NodeId> = (0..theta).map(|_| pick.sample(&mut rng)).collect();
        let store = generate_store(graph, probs, &roots, seed ^ 0x9e37_79b9_7f4a_7c15);
        RrPool {
            n: graph.node_count() as u32,
            roots,
            store,
        }
    }

    /// Generates θ RR sets with exactly `threads` workers; output is
    /// bit-identical to [`RrPool::generate`] with the same seed.
    pub fn generate_parallel<P: EdgeProb + ?Sized + Sync>(
        graph: &DiGraph,
        probs: &P,
        theta: usize,
        seed: u64,
        threads: usize,
    ) -> RrPool {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("building sampler thread pool");
        pool.install(|| Self::generate(graph, probs, theta, seed))
    }

    /// Reassembles a pool from parts (crate-internal; LT generation and
    /// deserialization).
    pub(crate) fn from_parts(n: u32, roots: Vec<NodeId>, store: RrStore) -> RrPool {
        assert_eq!(roots.len(), store.len());
        RrPool { n, roots, store }
    }

    /// Number of nodes of the underlying graph (the estimator's `n`).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n as usize
    }

    /// θ.
    #[inline]
    pub fn theta(&self) -> usize {
        self.store.len()
    }

    /// The sampled roots, aligned with set indices.
    #[inline]
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Storage access.
    #[inline]
    pub fn store(&self) -> &RrStore {
        &self.store
    }

    /// The classical IM estimate `σ̂(S) = n/θ · #{i : R_i ∩ S ≠ ∅}`.
    pub fn estimate_spread(&self, seeds: &[NodeId]) -> f64 {
        if self.theta() == 0 {
            return 0.0;
        }
        let mut covered = vec![false; self.theta()];
        for &s in seeds {
            for &i in self.store.samples_containing(s) {
                covered[i as usize] = true;
            }
        }
        let hit = covered.iter().filter(|&&c| c).count();
        self.n as f64 * hit as f64 / self.theta() as f64
    }
}

/// Fixed-size chunks for deterministic parallel generation. Each chunk gets
/// an independent RNG stream derived from (seed, chunk index).
const CHUNK: usize = 4096;

fn generate_store<P: EdgeProb + ?Sized + Sync>(
    graph: &DiGraph,
    probs: &P,
    roots: &[NodeId],
    seed: u64,
) -> RrStore {
    // Chunk jobs are independent seed-derived streams; par_iter + collect
    // preserves chunk order, so concatenation is thread-count-invariant.
    let chunk_jobs: Vec<(usize, &[NodeId])> = roots.chunks(CHUNK).enumerate().collect();
    let chunks: Vec<RrStore> = chunk_jobs
        .par_iter()
        .map(|&(ci, chunk_roots)| generate_chunk(graph, probs, chunk_roots, seed, ci))
        .collect();
    RrStore::concat(chunks, graph.node_count())
}

fn generate_chunk<P: EdgeProb + ?Sized>(
    graph: &DiGraph,
    probs: &P,
    roots: &[NodeId],
    seed: u64,
    chunk_index: usize,
) -> RrStore {
    // Same bijective stream derivation as the MRR/LT samplers: the mix of
    // the chunk index can never collapse two chunks (or every chunk, for
    // an adversarial seed) onto one stream.
    let stream = (chunk_index as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(0x517c_c1b7);
    let mut rng = SmallRng::seed_from_u64(seed ^ stream);
    let mut scratch = BfsScratch::new(graph.node_count());
    let mut set_buf: Vec<NodeId> = Vec::new();
    let mut store = RrStore {
        offsets: Vec::with_capacity(roots.len() + 1),
        nodes: Vec::new(),
        idx_offsets: Vec::new(),
        idx_samples: Vec::new(),
    };
    store.offsets.push(0);
    for &root in roots {
        sample_rr_set(&mut rng, graph, probs, root, &mut scratch, &mut set_buf);
        store.nodes.extend_from_slice(&set_buf);
        store.offsets.push(store.nodes.len() as u64);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_prob::MaterializedProbs;
    use rand::rngs::StdRng;

    fn line_graph() -> (DiGraph, MaterializedProbs) {
        // 0 -> 1 -> 2 with probability 1 everywhere.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let p = MaterializedProbs(vec![1.0; g.edge_count()]);
        (g, p)
    }

    #[test]
    fn rr_set_deterministic_edges() {
        let (g, p) = line_graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = BfsScratch::new(3);
        let mut out = Vec::new();
        sample_rr_set(&mut rng, &g, &p, 2, &mut scratch, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        sample_rr_set(&mut rng, &g, &p, 0, &mut scratch, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn zero_prob_edges_never_cross() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let p = MaterializedProbs(vec![0.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut scratch = BfsScratch::new(2);
        let mut out = Vec::new();
        for _ in 0..50 {
            sample_rr_set(&mut rng, &g, &p, 1, &mut scratch, &mut out);
            assert_eq!(out, vec![1]);
        }
    }

    #[test]
    fn pool_estimates_deterministic_graph_exactly() {
        let (g, p) = line_graph();
        let pool = RrPool::generate(&g, &p, 3000, 7);
        // Seed {0} reaches everyone: spread 3. Estimator must be exact
        // because all probabilities are 0/1.
        assert!((pool.estimate_spread(&[0]) - 3.0).abs() < 1e-9);
        // Seed {2} reaches only itself: RR sets rooted at 2 are the only
        // ones containing 2 ⇒ estimate ≈ n · P(root = 2) ≈ 1.
        let est = pool.estimate_spread(&[2]);
        assert!((est - 1.0).abs() < 0.2, "estimate {est}");
        assert_eq!(pool.estimate_spread(&[]), 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 120, 600);
        let p = MaterializedProbs(vec![0.2; g.edge_count()]);
        let a = RrPool::generate(&g, &p, 10_000, 42);
        let b = RrPool::generate_parallel(&g, &p, 10_000, 42, 4);
        assert_eq!(a.roots(), b.roots());
        assert_eq!(a.store().total_nodes(), b.store().total_nodes());
        for i in (0..a.theta()).step_by(997) {
            assert_eq!(a.store().set(i), b.store().set(i));
        }
    }

    /// One seed ⇒ one pool, for any thread count, compared exhaustively
    /// (every set and the full inverted index).
    #[test]
    fn thread_count_invariance_exhaustive() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 200, 1400);
        let p = MaterializedProbs(vec![0.15; g.edge_count()]);
        // Multiple chunks (CHUNK = 4096) so work really splits.
        let theta = 2 * CHUNK + 101;
        let reference = RrPool::generate_parallel(&g, &p, theta, 7, 1);
        for threads in [2, 5, 16] {
            let pool = RrPool::generate_parallel(&g, &p, theta, 7, threads);
            assert_eq!(reference.roots(), pool.roots(), "{threads} threads");
            for i in 0..theta {
                assert_eq!(
                    reference.store().set(i),
                    pool.store().set(i),
                    "{threads} threads"
                );
            }
            for v in 0..200u32 {
                assert_eq!(
                    reference.store().samples_containing(v),
                    pool.store().samples_containing(v),
                    "inverted index for node {v} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn inverted_index_consistent() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 50, 300);
        let p = MaterializedProbs(vec![0.3; g.edge_count()]);
        let pool = RrPool::generate(&g, &p, 2000, 3);
        // Index must agree with direct membership.
        for v in 0..50u32 {
            let via_index: std::collections::HashSet<u32> =
                pool.store().samples_containing(v).iter().copied().collect();
            for i in 0..pool.theta() {
                let member = pool.store().set(i).contains(&v);
                assert_eq!(member, via_index.contains(&(i as u32)), "node {v} set {i}");
            }
        }
    }

    #[test]
    fn estimator_close_to_truth_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 80, 400);
        let probs = MaterializedProbs(vec![0.15; g.edge_count()]);
        let pool = RrPool::generate(&g, &probs, 60_000, 21);
        let seeds = vec![0u32, 1, 2];
        let est = pool.estimate_spread(&seeds);
        let truth = crate::simulate::simulate_spread(
            &mut StdRng::seed_from_u64(77),
            &g,
            &probs,
            &seeds,
            4000,
        );
        let rel = (est - truth).abs() / truth.max(1.0);
        assert!(rel < 0.08, "estimate {est} vs truth {truth} (rel {rel})");
    }

    #[test]
    fn roots_cover_all_nodes_eventually() {
        let (g, p) = line_graph();
        let pool = RrPool::generate(&g, &p, 500, 13);
        let distinct: std::collections::HashSet<_> = pool.roots().iter().collect();
        assert_eq!(distinct.len(), 3);
    }
}
