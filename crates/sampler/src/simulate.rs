//! Forward Monte-Carlo cascade simulation — the ground truth.
//!
//! The MRR estimator is only trustworthy if it matches the model it claims
//! to estimate. This module runs the generative process of §III directly:
//! independent cascades per piece over live-edge samples, then the logistic
//! adoption model over per-user piece-coverage counts. It is O(runs · ℓ ·
//! m) and only viable on small/medium graphs, which is exactly its role:
//! validating estimators and solvers in tests and benches.

use crate::edge_prob::{EdgeProb, PieceProbs};
use oipa_graph::{DiGraph, NodeId};
use oipa_topics::{Campaign, EdgeTopicProbs, LogisticAdoption};
use rand::Rng;

/// Runs one independent-cascade diffusion from `seeds`, marking activated
/// nodes in `active` (values equal to `stamp` mean active). Returns the
/// number of activated nodes.
#[allow(clippy::too_many_arguments)]
fn run_cascade<R: Rng + ?Sized, P: EdgeProb + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    probs: &P,
    seeds: &[NodeId],
    active: &mut [u32],
    stamp: u32,
    frontier: &mut Vec<NodeId>,
    next: &mut Vec<NodeId>,
) -> usize {
    frontier.clear();
    next.clear();
    let mut count = 0usize;
    for &s in seeds {
        if active[s as usize] != stamp {
            active[s as usize] = stamp;
            frontier.push(s);
            count += 1;
        }
    }
    while !frontier.is_empty() {
        next.clear();
        for &u in frontier.iter() {
            for e in graph.out_edges(u) {
                if active[e.target as usize] == stamp {
                    continue;
                }
                let p = probs.prob(e.id);
                if p > 0.0 && rng.gen_range(0.0f32..1.0) < p {
                    active[e.target as usize] = stamp;
                    next.push(e.target);
                    count += 1;
                }
            }
        }
        std::mem::swap(frontier, next);
    }
    count
}

/// Monte-Carlo estimate of the classical influence spread `σ_IM(S)`.
pub fn simulate_spread<R: Rng + ?Sized, P: EdgeProb + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    probs: &P,
    seeds: &[NodeId],
    runs: usize,
) -> f64 {
    assert!(runs > 0);
    let mut active = vec![0u32; graph.node_count()];
    let (mut frontier, mut next) = (Vec::new(), Vec::new());
    let mut total = 0usize;
    for run in 0..runs {
        total += run_cascade(
            rng,
            graph,
            probs,
            seeds,
            &mut active,
            run as u32 + 1,
            &mut frontier,
            &mut next,
        );
    }
    total as f64 / runs as f64
}

/// Monte-Carlo estimate of the adoption utility `σ(S̄)` of an assignment
/// plan (`assignments[j]` = seed set for piece `j`), per Eqn. (1)–(2).
///
/// Each run samples one live-edge world *per piece* (pieces propagate
/// independently), counts per-user coverage, applies the logistic model
/// (zero coverage ⇒ zero probability), and averages.
pub fn simulate_adoption<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    table: &EdgeTopicProbs,
    campaign: &Campaign,
    assignments: &[Vec<NodeId>],
    model: LogisticAdoption,
    runs: usize,
) -> f64 {
    assert_eq!(
        assignments.len(),
        campaign.len(),
        "one seed set per piece required"
    );
    assert!(runs > 0);
    let n = graph.node_count();
    let mut coverage = vec![0u8; n];
    let mut active = vec![0u32; n];
    let (mut frontier, mut next) = (Vec::new(), Vec::new());
    let mut utility_sum = 0.0f64;
    let mut stamp = 0u32;
    for _ in 0..runs {
        coverage.iter_mut().for_each(|c| *c = 0);
        for (j, seeds) in assignments.iter().enumerate() {
            stamp += 1;
            let piece = &campaign.piece(j).topics;
            let probs = PieceProbs::new(table, piece);
            run_cascade(
                rng,
                graph,
                &probs,
                seeds,
                &mut active,
                stamp,
                &mut frontier,
                &mut next,
            );
            for v in 0..n {
                if active[v] == stamp {
                    coverage[v] += 1;
                }
            }
        }
        utility_sum += coverage
            .iter()
            .map(|&c| model.adoption_prob(c as usize))
            .sum::<f64>();
    }
    utility_sum / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_prob::MaterializedProbs;
    use oipa_topics::{EdgeProbsBuilder, Piece, SparseTopicVector, TopicVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_line_spread() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let p = MaterializedProbs(vec![1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(0);
        assert!((simulate_spread(&mut rng, &g, &p, &[0], 10) - 3.0).abs() < 1e-12);
        assert!((simulate_spread(&mut rng, &g, &p, &[2], 10) - 1.0).abs() < 1e-12);
        assert!((simulate_spread(&mut rng, &g, &p, &[], 10)).abs() < 1e-12);
    }

    #[test]
    fn half_probability_single_edge() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let p = MaterializedProbs(vec![0.5]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = simulate_spread(&mut rng, &g, &p, &[0], 40_000);
        assert!((s - 1.5).abs() < 0.02, "expected ≈1.5, got {s}");
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let p = MaterializedProbs(vec![0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let s = simulate_spread(&mut rng, &g, &p, &[0, 0], 10);
        assert!((s - 1.0).abs() < 1e-12);
    }

    /// Example 1 of the paper: σ({{a}, {e}}) = 1.05 with α = 3, β = 1.
    #[test]
    fn example1_adoption_utility() {
        let (g, table, campaign) = crate::testkit::fig1();
        let mut rng = StdRng::seed_from_u64(3);
        let sigma = simulate_adoption(
            &mut rng,
            &g,
            &table,
            &campaign,
            &[vec![0], vec![4]],
            LogisticAdoption::example(),
            50,
        );
        // Deterministic graph: every run identical; expected value
        // 2·σ(1) + 3·σ(2) = 2·0.1192 + 3·0.2689 ≈ 1.045.
        assert!((sigma - 1.045).abs() < 0.01, "σ = {sigma}");
    }

    #[test]
    fn empty_assignment_zero_utility() {
        let (g, table, campaign) = crate::testkit::fig1();
        let mut rng = StdRng::seed_from_u64(4);
        let sigma = simulate_adoption(
            &mut rng,
            &g,
            &table,
            &campaign,
            &[vec![], vec![]],
            LogisticAdoption::example(),
            10,
        );
        assert_eq!(sigma, 0.0);
    }

    #[test]
    fn more_pieces_more_utility() {
        // Two pieces assigned beats one piece assigned (monotonicity).
        let (g, table, campaign) = crate::testkit::fig1();
        let model = LogisticAdoption::example();
        let mut rng = StdRng::seed_from_u64(5);
        let one = simulate_adoption(
            &mut rng,
            &g,
            &table,
            &campaign,
            &[vec![0], vec![]],
            model,
            20,
        );
        let two = simulate_adoption(
            &mut rng,
            &g,
            &table,
            &campaign,
            &[vec![0], vec![4]],
            model,
            20,
        );
        assert!(two > one);
    }

    #[test]
    fn single_node_graph() {
        let g = DiGraph::from_edges(1, &[]).unwrap();
        let table = EdgeProbsBuilder::new(0, 1).build();
        let campaign = oipa_topics::Campaign::new(vec![Piece::new(
            "only",
            TopicVector::one_hot(1, 0).unwrap(),
        )])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let sigma = simulate_adoption(
            &mut rng,
            &g,
            &table,
            &campaign,
            &[vec![0]],
            LogisticAdoption::new(1.0, 1.0),
            10,
        );
        // One node, one piece: σ = sigmoid(1 − 1) = 0.5.
        assert!((sigma - 0.5).abs() < 1e-9);
        let _ = SparseTopicVector::empty(); // silence unused import in cfg(test)
    }
}
