//! Binary serialization for MRR pools.
//!
//! Generating θ = 10⁶ MRR sets dominates wall-clock on large graphs (the
//! paper's Table III "sample time" row). Since the pool depends only on
//! (graph, p(e|z), campaign topics, θ, seed) — not on the adoption model,
//! the budget, or the promoter pool — a cached pool serves entire
//! parameter sweeps (Figures 3, 4 and 6 all reuse one pool per dataset).
//!
//! Format (little-endian):
//!
//! ```text
//! [8]  magic "OIPAMRRP"
//! [4]  version (u32)
//! [4]  n (u32)
//! [8]  θ (u64)
//! [4]  ℓ (u32)
//! [θ·4]  roots (u32)
//! ℓ × ( [ (θ+1)·8 ] offsets (u64), [Σ|R|·4] nodes (u32) )
//! ```
//!
//! The inverted index is rebuilt on load (linear, faster than reading it).

use crate::mrr::MrrPool;
use crate::rr::RrStore;
use oipa_graph::binio::{read_u32, read_u64, write_u32, write_u64};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"OIPAMRRP";
const VERSION: u32 = 1;

/// Serialization errors.
#[derive(Debug)]
pub enum PoolIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Not a pool file / wrong version / inconsistent lengths.
    Format(String),
}

impl std::fmt::Display for PoolIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolIoError::Io(e) => write!(f, "io error: {e}"),
            PoolIoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PoolIoError {}

impl From<std::io::Error> for PoolIoError {
    fn from(e: std::io::Error) -> Self {
        PoolIoError::Io(e)
    }
}

/// Writes a pool to a writer.
pub fn write_pool<W: Write>(pool: &MrrPool, writer: W) -> Result<(), PoolIoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, pool.node_count() as u32)?;
    write_u64(&mut w, pool.theta() as u64)?;
    write_u32(&mut w, pool.ell() as u32)?;
    for &r in pool.roots() {
        write_u32(&mut w, r)?;
    }
    for j in 0..pool.ell() {
        let store = pool.piece_store(j);
        for &off in store.raw_offsets() {
            write_u64(&mut w, off)?;
        }
        for &v in store.raw_nodes() {
            write_u32(&mut w, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a pool from a reader, rebuilding inverted indexes.
pub fn read_pool<R: Read>(reader: R) -> Result<MrrPool, PoolIoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PoolIoError::Format(
            "bad magic: not an OIPA MRR pool".into(),
        ));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(PoolIoError::Format(format!(
            "unsupported pool version {version}"
        )));
    }
    let n = read_u32(&mut r)? as usize;
    let theta = read_u64(&mut r)? as usize;
    let ell = read_u32(&mut r)? as usize;
    if ell == 0 {
        return Err(PoolIoError::Format(
            "pool must have at least one piece".into(),
        ));
    }
    let mut roots = Vec::with_capacity(theta.min(1 << 28));
    for _ in 0..theta {
        let root = read_u32(&mut r)?;
        if root as usize >= n {
            return Err(PoolIoError::Format(format!("root {root} out of range")));
        }
        roots.push(root);
    }
    let mut stores = Vec::with_capacity(ell);
    for _ in 0..ell {
        let mut offsets = Vec::with_capacity(theta + 1);
        for _ in 0..=theta {
            offsets.push(read_u64(&mut r)?);
        }
        let total = *offsets.last().expect("non-empty offsets") as usize;
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(PoolIoError::Format("offsets not monotone".into()));
        }
        let mut nodes = Vec::with_capacity(total.min(1 << 28));
        for _ in 0..total {
            let v = read_u32(&mut r)?;
            if v as usize >= n {
                return Err(PoolIoError::Format(format!("node {v} out of range")));
            }
            nodes.push(v);
        }
        let mut store = RrStore::from_raw(offsets, nodes);
        store.build_index(n);
        stores.push(store);
    }
    MrrPool::from_parts(n as u32, roots, stores).map_err(PoolIoError::Format)
}

/// Writes a pool to a file.
pub fn write_pool_file<P: AsRef<Path>>(pool: &MrrPool, path: P) -> Result<(), PoolIoError> {
    write_pool(pool, std::fs::File::create(path)?)
}

/// Reads a pool from a file.
pub fn read_pool_file<P: AsRef<Path>>(path: P) -> Result<MrrPool, PoolIoError> {
    read_pool(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::fig1;

    #[test]
    fn roundtrip_preserves_everything() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 5_000, 9);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        let back = read_pool(&buf[..]).unwrap();
        assert_eq!(back.theta(), pool.theta());
        assert_eq!(back.ell(), pool.ell());
        assert_eq!(back.node_count(), pool.node_count());
        assert_eq!(back.roots(), pool.roots());
        for j in 0..pool.ell() {
            for i in (0..pool.theta()).step_by(617) {
                assert_eq!(back.rr_set(j, i), pool.rr_set(j, i));
            }
            for v in 0..5u32 {
                assert_eq!(back.samples_containing(j, v), pool.samples_containing(j, v));
            }
        }
    }

    #[test]
    fn bad_magic() {
        assert!(matches!(
            read_pool(&b"NOTAPOOL"[..]),
            Err(PoolIoError::Format(_))
        ));
    }

    #[test]
    fn truncation_detected() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 500, 9);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_pool(&buf[..]).is_err());
    }

    #[test]
    fn corrupt_node_id_detected() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 100, 9);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        // Overwrite a node near the end with an out-of-range id.
        let len = buf.len();
        buf[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_pool(&buf[..]), Err(PoolIoError::Format(_))));
    }
}
