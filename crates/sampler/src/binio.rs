//! Binary serialization for MRR pools.
//!
//! Generating θ = 10⁶ MRR sets dominates wall-clock on large graphs (the
//! paper's Table III "sample time" row). Since the pool depends only on
//! (graph, p(e|z), campaign topics, θ, seed) — not on the adoption model,
//! the budget, or the promoter pool — a cached pool serves entire
//! parameter sweeps (Figures 3, 4 and 6 all reuse one pool per dataset),
//! and the persistent pool store (`oipa-store`) keeps these files across
//! process restarts.
//!
//! Format v2 (little-endian):
//!
//! ```text
//! [8]  magic "OIPAMRRP"
//! [4]  version (u32; v1 readable, v2 written)
//! [4]  n (u32)
//! [8]  θ (u64)
//! [4]  ℓ (u32)
//! [θ·4]  roots (u32)
//! ℓ × ( [ (θ+1)·8 ] offsets (u64), [Σ|R|·4] nodes (u32) )
//! [4]  CRC-32 of everything above (v2 only)
//! ```
//!
//! The trailing checksum covers the magic through the last node, so a
//! single flipped bit anywhere — including inside values that pass the
//! structural range checks — fails the load with
//! [`PoolIoError::Format`]. Version-1 files (no trailer) still load.
//! The inverted index is rebuilt on load (linear, faster than reading it).

use crate::mrr::MrrPool;
use crate::rr::RrStore;
use oipa_graph::binio::{read_u32, read_u64, write_u32, write_u64};
use oipa_graph::checksum::{Crc32Reader, Crc32Writer};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"OIPAMRRP";
/// Current write version: v2 appends a CRC-32 trailer.
const VERSION: u32 = 2;
/// Oldest readable version (no checksum trailer).
const MIN_VERSION: u32 = 1;

/// Serialization errors.
#[derive(Debug)]
pub enum PoolIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Not a pool file / wrong version / inconsistent lengths / checksum
    /// mismatch / truncated stream.
    Format(String),
}

impl std::fmt::Display for PoolIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolIoError::Io(e) => write!(f, "io error: {e}"),
            PoolIoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PoolIoError {}

impl From<std::io::Error> for PoolIoError {
    fn from(e: std::io::Error) -> Self {
        // A stream that ends mid-value is a malformed file, not an
        // environment failure: truncated pools must surface as `Format`
        // so callers (the store's quarantine path, the CLI) treat them
        // like any other corruption.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PoolIoError::Format("unexpected end of file (truncated pool?)".into())
        } else {
            PoolIoError::Io(e)
        }
    }
}

/// Writes a pool to a writer. Returns the CRC-32 the v2 trailer records,
/// so callers that index pool files (the store manifest) get the checksum
/// without re-reading what they just wrote.
pub fn write_pool<W: Write>(pool: &MrrPool, writer: W) -> Result<u32, PoolIoError> {
    let mut w = Crc32Writer::new(BufWriter::new(writer));
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, pool.node_count() as u32)?;
    write_u64(&mut w, pool.theta() as u64)?;
    write_u32(&mut w, pool.ell() as u32)?;
    write_u32_bulk(&mut w, pool.roots())?;
    for j in 0..pool.ell() {
        let store = pool.piece_store(j);
        write_u64_bulk(&mut w, store.raw_offsets())?;
        write_u32_bulk(&mut w, store.raw_nodes())?;
    }
    let crc = w.digest();
    // The trailer itself is outside the digest (captured above).
    write_u32(&mut w, crc)?;
    w.flush()?;
    Ok(crc)
}

/// Reads a pool from a reader, rebuilding inverted indexes. Accepts
/// format v1 (no checksum) and v2 (CRC-32 trailer, verified).
pub fn read_pool<R: Read>(reader: R) -> Result<MrrPool, PoolIoError> {
    let mut r = Crc32Reader::new(BufReader::with_capacity(1 << 16, reader));
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PoolIoError::Format(
            "bad magic: not an OIPA MRR pool".into(),
        ));
    }
    let version = read_u32(&mut r)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(PoolIoError::Format(format!(
            "unsupported pool version {version} (readable: {MIN_VERSION}..={VERSION})"
        )));
    }
    let n = read_u32(&mut r)? as usize;
    let theta = read_u64(&mut r)? as usize;
    let ell = read_u32(&mut r)? as usize;
    if ell == 0 {
        return Err(PoolIoError::Format(
            "pool must have at least one piece".into(),
        ));
    }
    let roots = read_u32_bulk(&mut r, theta)?;
    if let Some(&root) = roots.iter().find(|&&root| root as usize >= n) {
        return Err(PoolIoError::Format(format!("root {root} out of range")));
    }
    let mut stores = Vec::with_capacity(ell.min(1 << 16));
    for _ in 0..ell {
        let offsets = read_u64_bulk(&mut r, theta + 1)?;
        let total = *offsets.last().expect("non-empty offsets") as usize;
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(PoolIoError::Format("offsets not monotone".into()));
        }
        let nodes = read_u32_bulk(&mut r, total)?;
        if let Some(&v) = nodes.iter().find(|&&v| v as usize >= n) {
            return Err(PoolIoError::Format(format!("node {v} out of range")));
        }
        let mut store = RrStore::from_raw(offsets, nodes);
        store.build_index(n);
        stores.push(store);
    }
    if version >= 2 {
        // Capture the payload digest before touching the trailer, then
        // read the stored checksum through the inner reader (unhashed).
        let computed = r.digest();
        let stored = read_u32(r.get_mut())?;
        if stored != computed {
            return Err(PoolIoError::Format(format!(
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x} \
                 (corrupt pool file)"
            )));
        }
    }
    MrrPool::from_parts(n as u32, roots, stores).map_err(PoolIoError::Format)
}

/// Writes a pool to a file, returning the payload CRC-32.
pub fn write_pool_file<P: AsRef<Path>>(pool: &MrrPool, path: P) -> Result<u32, PoolIoError> {
    write_pool(pool, std::fs::File::create(path)?)
}

/// Reads a pool from a file.
pub fn read_pool_file<P: AsRef<Path>>(path: P) -> Result<MrrPool, PoolIoError> {
    read_pool(std::fs::File::open(path)?)
}

/// 64 KiB staging buffer for bulk value IO: large enough to amortize
/// per-call overhead, small enough that corrupt length fields cannot
/// trigger huge allocations before the stream runs dry.
const BULK: usize = 64 * 1024;

fn write_u32_bulk<W: Write>(w: &mut W, vs: &[u32]) -> std::io::Result<()> {
    let mut buf = [0u8; BULK];
    for chunk in vs.chunks(BULK / 4) {
        let bytes = &mut buf[..chunk.len() * 4];
        for (slot, &v) in bytes.chunks_exact_mut(4).zip(chunk) {
            slot.copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(bytes)?;
    }
    Ok(())
}

fn write_u64_bulk<W: Write>(w: &mut W, vs: &[u64]) -> std::io::Result<()> {
    let mut buf = [0u8; BULK];
    for chunk in vs.chunks(BULK / 8) {
        let bytes = &mut buf[..chunk.len() * 8];
        for (slot, &v) in bytes.chunks_exact_mut(8).zip(chunk) {
            slot.copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(bytes)?;
    }
    Ok(())
}

fn read_u32_bulk<R: Read>(r: &mut R, count: usize) -> Result<Vec<u32>, PoolIoError> {
    let mut out = Vec::with_capacity(count.min(1 << 26));
    let mut buf = [0u8; BULK];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(BULK / 4);
        let bytes = &mut buf[..take * 4];
        r.read_exact(bytes)?;
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

fn read_u64_bulk<R: Read>(r: &mut R, count: usize) -> Result<Vec<u64>, PoolIoError> {
    let mut out = Vec::with_capacity(count.min(1 << 25));
    let mut buf = [0u8; BULK];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(BULK / 8);
        let bytes = &mut buf[..take * 8];
        r.read_exact(bytes)?;
        out.extend(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::fig1;

    #[test]
    fn roundtrip_preserves_everything() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 5_000, 9);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        let back = read_pool(&buf[..]).unwrap();
        assert_eq!(back.theta(), pool.theta());
        assert_eq!(back.ell(), pool.ell());
        assert_eq!(back.node_count(), pool.node_count());
        assert_eq!(back.roots(), pool.roots());
        assert_eq!(back.fingerprint(), pool.fingerprint());
        for j in 0..pool.ell() {
            for i in (0..pool.theta()).step_by(617) {
                assert_eq!(back.rr_set(j, i), pool.rr_set(j, i));
            }
            for v in 0..5u32 {
                assert_eq!(back.samples_containing(j, v), pool.samples_containing(j, v));
            }
        }
    }

    #[test]
    fn bad_magic() {
        assert!(matches!(
            read_pool(&b"NOTAPOOL"[..]),
            Err(PoolIoError::Format(_))
        ));
    }

    /// A v1 file is a v2 file with the version field patched down and the
    /// 4-byte checksum trailer removed (the payload bytes are identical).
    fn downgrade_to_v1(mut v2: Vec<u8>) -> Vec<u8> {
        v2[8..12].copy_from_slice(&1u32.to_le_bytes());
        v2.truncate(v2.len() - 4);
        v2
    }

    #[test]
    fn v1_files_still_load() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 700, 3);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        let v1 = downgrade_to_v1(buf);
        let back = read_pool(&v1[..]).unwrap();
        assert_eq!(back.fingerprint(), pool.fingerprint());
    }

    #[test]
    fn future_versions_rejected() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 50, 3);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        buf[8..12].copy_from_slice(&99u32.to_le_bytes());
        let err = read_pool(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn write_returns_payload_crc() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 300, 5);
        let mut buf = Vec::new();
        let crc = write_pool(&pool, &mut buf).unwrap();
        // The trailer is the returned CRC…
        let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
        assert_eq!(stored, crc);
        // …and it matches an independent digest of the payload bytes.
        assert_eq!(oipa_graph::checksum::crc32(&buf[..buf.len() - 4]), crc);
    }

    /// A v2 file cut at *every* 64-byte boundary must fail with a
    /// `Format` error — never a panic, an `Io` error, or a silently short
    /// pool (the satellite contract of the persistent-store PR).
    #[test]
    fn truncation_at_every_64_byte_boundary_is_a_format_error() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 500, 9);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        for cut in (0..buf.len()).step_by(64) {
            match read_pool(&buf[..cut]) {
                Err(PoolIoError::Format(_)) => {}
                Err(PoolIoError::Io(e)) => panic!("cut at {cut}: Io instead of Format: {e}"),
                Ok(_) => panic!("cut at {cut}: silently loaded a truncated pool"),
            }
        }
    }

    #[test]
    fn checksum_catches_structurally_valid_corruption() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 400, 9);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        // Flip the low bit of one root (byte 28): the new value is still a
        // valid node id on the 5-node fig1 graph, so only the checksum can
        // catch it.
        buf[28] ^= 1;
        assert!(
            (buf[28] as usize) < 5,
            "corrupted root must stay structurally valid for this test"
        );
        let err = read_pool(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // The same corruption in a v1 file loads silently — exactly the
        // gap v2 closes.
        let mut v1 = buf;
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        v1.truncate(v1.len() - 4);
        assert!(read_pool(&v1[..]).is_ok());
    }

    #[test]
    fn corrupt_node_id_detected() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 100, 9);
        let mut buf = Vec::new();
        write_pool(&pool, &mut buf).unwrap();
        // Overwrite a node near the end (before the trailer) with an
        // out-of-range id: the structural check fires before the checksum.
        let len = buf.len();
        buf[len - 8..len - 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_pool(&buf[..]), Err(PoolIoError::Format(_))));
    }
}
