//! Sample-size (θ) calculators.
//!
//! The paper fixes θ = 10⁶ across experiments and notes (§V-A) that the
//! Chernoff bounds used for RR sets (ref 26) carry over to MRR sets because the
//! estimator is a mean of θ i.i.d. bounded variables. These helpers expose
//! that arithmetic so callers can pick θ for a target accuracy instead of a
//! magic constant.

/// Two-sided multiplicative Chernoff bound: number of i.i.d. samples of a
/// `[0, 1]`-bounded variable with mean `μ ≥ mu_lower` needed so that the
/// empirical mean is within relative error `eps` with probability
/// `1 − delta`:
///
/// `θ ≥ (2 + eps) · ln(2/δ) / (eps² · μ_lower)`.
pub fn chernoff_theta(mu_lower: f64, eps: f64, delta: f64) -> usize {
    assert!(mu_lower > 0.0 && mu_lower <= 1.0, "mean bound in (0, 1]");
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    let theta = (2.0 + eps) * (2.0 / delta).ln() / (eps * eps * mu_lower);
    theta.ceil() as usize
}

/// θ for estimating an adoption utility of at least `sigma_lower` (in
/// users) on an `n`-node graph within relative error `eps`, failure
/// probability `delta`.
///
/// The per-sample variable `X_i ∈ [0, 1]` has mean `σ(S̄)/n`, so the bound
/// is [`chernoff_theta`] at `μ_lower = sigma_lower / n`.
pub fn theta_for_utility(n: usize, sigma_lower: f64, eps: f64, delta: f64) -> usize {
    assert!(n > 0);
    assert!(sigma_lower > 0.0);
    chernoff_theta((sigma_lower / n as f64).min(1.0), eps, delta)
}

/// `ln C(n, k)` via the log-gamma series — used by IMM-style bounds where
/// the union bound runs over all size-k seed sets.
pub fn ln_choose(n: usize, k: usize) -> f64 {
    assert!(k <= n, "k must not exceed n");
    let k = k.min(n - k);
    // ln C(n,k) = Σ_{i=1..k} ln((n - k + i) / i).
    (1..=k)
        .map(|i| (((n - k + i) as f64) / i as f64).ln())
        .sum()
}

/// The IMM-flavoured θ (Tang, Shi, Xiao — SIGMOD 2015, Eqn. 9 shape):
///
/// `θ = (8 + 2ε) n (ln(1/δ) + ln C(n,k)) / (ε² · OPT_lower)`.
///
/// Used by the standalone IMM baseline; the paper's own experiments bypass
/// this and fix θ directly.
pub fn imm_theta(n: usize, k: usize, opt_lower: f64, eps: f64, delta: f64) -> usize {
    assert!(n > 0 && opt_lower > 0.0 && eps > 0.0 && delta > 0.0 && delta < 1.0);
    let numer = (8.0 + 2.0 * eps) * n as f64 * ((1.0 / delta).ln() + ln_choose(n, k));
    (numer / (eps * eps * opt_lower)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_monotone_in_accuracy() {
        let loose = chernoff_theta(0.1, 0.2, 0.05);
        let tight = chernoff_theta(0.1, 0.1, 0.05);
        assert!(tight > loose);
        let confident = chernoff_theta(0.1, 0.2, 0.001);
        assert!(confident > loose);
    }

    #[test]
    fn chernoff_scale() {
        // μ=0.01, ε=0.1, δ=0.01: θ = 2.1·ln(200)/(0.1²·0.01) ≈ 1.11e5.
        let theta = chernoff_theta(0.01, 0.1, 0.01);
        assert!((100_000..130_000).contains(&theta), "theta {theta}");
    }

    #[test]
    fn utility_wrapper() {
        let a = theta_for_utility(1000, 10.0, 0.1, 0.01);
        let b = chernoff_theta(0.01, 0.1, 0.01);
        assert_eq!(a, b);
    }

    #[test]
    fn ln_choose_known_values() {
        assert!((ln_choose(5, 2) - (10f64).ln()).abs() < 1e-9);
        assert!((ln_choose(10, 0)).abs() < 1e-12);
        assert!((ln_choose(10, 10)).abs() < 1e-12);
        // Symmetry.
        assert!((ln_choose(50, 3) - ln_choose(50, 47)).abs() < 1e-9);
    }

    #[test]
    fn imm_theta_grows_with_k() {
        let t1 = imm_theta(10_000, 10, 100.0, 0.3, 0.01);
        let t2 = imm_theta(10_000, 50, 100.0, 0.3, 0.01);
        assert!(t2 > t1);
    }

    #[test]
    #[should_panic(expected = "k must not exceed n")]
    fn ln_choose_rejects_bad_k() {
        let _ = ln_choose(3, 4);
    }
}
