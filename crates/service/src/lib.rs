//! # oipa-service
//!
//! `PlannerService`: a session-oriented, multi-query engine over the OIPA
//! solver stack.
//!
//! The paper's pipeline is one-shot — sample θ MRR sets, solve once. A
//! serving system answers *streams* of queries against the same graph:
//! different budgets, methods, adoption models, and campaigns. Sampling
//! dominates per-query latency, yet a pool depends only on (campaign, θ,
//! seed) — so a session that caches pools under that key amortizes
//! sampling across every request that shares it, IMM-style (§V-A), while
//! the per-request work shrinks to the solve itself.
//!
//! One service owns:
//!
//! * a social graph and its topic-wise edge probabilities (optional when
//!   a pre-sampled pool is injected instead);
//! * a **tiered pool store** — the in-memory LRU arena of sampled
//!   [`MrrPool`]s keyed by (campaign, θ, seed) ([`PoolArena`]), backed by
//!   an optional persistent disk tier
//!   ([`PlannerService::attach_store`]) so warm pools survive byte
//!   pressure and process restarts;
//! * the **solver registry** — every method (`bab`, `bab-p`, `plain`,
//!   `greedy`, `brute`, `im`, `tim`) behind one [`Solver`] trait, so
//!   dispatch is data-driven and answers are bitwise-identical to the
//!   historical direct entry points.
//!
//! **Concurrency:** [`PlannerService::solve`] and
//! [`PlannerService::simulate`] take `&self`, and the service is `Send +
//! Sync` — put it behind an `Arc` and answer requests from as many
//! threads as the hardware offers. Warm requests hit the pool store's
//! shared read path; N concurrent cache misses on the same pool key
//! sample **exactly once** (the first requester samples, the rest wait
//! for its pool instead of burning CPU on identical sampling), and
//! answers are bitwise-identical to a sequential run at any thread
//! count. Session *reconfiguration* (`attach_graph`, `attach_store`,
//! `clear_arena`) remains `&mut self`: Rust's borrow rules then
//! guarantee no request is in flight while the session is rewired.
//!
//! Requests and responses are plain serde types ([`SolveRequest`] /
//! [`SolveResponse`]), so the same engine backs the library API, the
//! `oipa-cli solve`/`batch` commands, and any future network frontend.
//!
//! ```
//! use oipa_service::{Method, PlannerService, SolveRequest};
//!
//! let (graph, probs, campaign) = oipa_sampler::testkit::fig1();
//! let service = PlannerService::new(graph, probs).unwrap();
//!
//! let mut request = SolveRequest::new(Method::Bab, 2);
//! request.campaign = Some(campaign);
//! request.theta = Some(20_000);
//! request.promoters = Some((0..5).collect());
//!
//! let first = service.solve(&request).unwrap();   // samples the pool
//! let second = service.solve(&request).unwrap();  // arena hit: no sampling
//! assert!(!first.pool_cache_hit && second.pool_cache_hit);
//! assert_eq!(first.plan, second.plan);
//! assert_eq!(first.plan.set(0), &[0]); // Example 1's optimum
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod request;
mod solver;

pub use oipa_graph::{EdgeChange, GraphDelta, Lineage, TopicProb};
pub use oipa_store::{
    ArenaStats, DiskStats, EvictionPolicyKind, PoolArena, PoolKey, PoolStore, PoolTier,
    PurgeRecord, StatsSnapshot, StoreConfig, StoreStats, TierHealthSnapshot, DEFAULT_SHARDS,
    STATS_SCHEMA,
};
pub use request::{
    AutoThetaReport, AutoThetaRequest, DeltaReport, Method, PoolRepair, SearchStats,
    SimulateRequest, SimulateResponse, SolveRequest, SolveResponse,
};
pub use solver::{registry, solver_for, SolveContext, Solver, SolverOutput};

use oipa_baselines::paper::collapsed_pool;
use oipa_core::auto::{solve_auto_theta, AutoThetaConfig};
use oipa_core::{OipaError, OipaInstance};
use oipa_graph::{DiGraph, NodeId};
use oipa_obs::{Counter, Histogram, Registry, Trace};
use oipa_sampler::{simulate, MrrPool, RrPool};
use oipa_topics::{Campaign, EdgeTopicProbs, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default arena byte budget (≈256 MiB).
pub const DEFAULT_ARENA_BYTES: usize = 256 << 20;

/// Default MRR samples per pool (the `oipa-cli sample` default).
pub const DEFAULT_THETA: usize = 100_000;

/// Default base seed (the workspace-wide convention).
pub const DEFAULT_SEED: u64 = 42;

/// Default promoter-pool fraction (§VI-A uses 10% of all users).
pub const DEFAULT_PROMOTER_FRACTION: f64 = 0.1;

/// Default logistic ratio β/α.
pub const DEFAULT_RATIO: f64 = 0.5;

/// Default progressive-bound ε (the paper fixes 0.5 after tuning).
pub const DEFAULT_EPS: f64 = 0.5;

/// A long-lived planning session: graph + probabilities + pool arena +
/// solver registry. See the crate docs for the full story.
pub struct PlannerService {
    graph: Option<DiGraph>,
    table: Option<EdgeTopicProbs>,
    /// The epoch chain the session's graph is at: rooted at the (graph,
    /// table) content fingerprint, advanced by each applied delta's
    /// digest. `None` on pool-only sessions (no graph to mutate).
    lineage: Option<Lineage>,
    /// `epoch_dirty[i]` is the dirty-target set of the delta that moved
    /// epoch `i` to `i + 1` — a pool stamped at epoch `e` repairs
    /// against the union of `epoch_dirty[e..]`.
    epoch_dirty: Vec<Vec<NodeId>>,
    store: PoolStore,
    /// Arena key of an injected pool, used when a request names no
    /// campaign of its own.
    default_pool: Option<PoolKey>,
    /// Campaign of the injected pool, if the caller provided one.
    default_campaign: Option<Campaign>,
    /// Single-entry cache for the `im` baseline's collapsed-probability
    /// RR pool, keyed by (θ, seed). Invalidated with the graph. Behind a
    /// mutex so concurrent `im` requests build it exactly once.
    flat_cache: Mutex<Option<FlatPoolCache>>,
    /// Per-key sampling coordination: the first requester to miss a key
    /// parks a slot here and samples; concurrent missers for the same key
    /// block on the slot, then take the sampled pool from it (the slot
    /// carries the pool itself, so the hand-off works even for oversized
    /// pools the arena refuses to cache). N concurrent misses ⇒ exactly
    /// one sampling run.
    sampling: Mutex<HashMap<PoolKey, Arc<SamplingSlot>>>,
    /// Metric handles into an attached observability registry
    /// ([`Self::attach_obs`]). `OnceLock` so attaching works through a
    /// shared `Arc<PlannerService>`; until attached, instrumentation is
    /// a single `get()` returning `None`.
    obs: OnceLock<ServiceMetrics>,
}

/// Pre-fetched `Arc` handles into the registry, resolved once at
/// [`PlannerService::attach_obs`] so the request hot path records into
/// relaxed atomics and never takes the registry's registration lock.
struct ServiceMetrics {
    phase_pool_lookup: Arc<Histogram>,
    phase_sampling: Arc<Histogram>,
    phase_solve: Arc<Histogram>,
    phase_repair: Arc<Histogram>,
    pool_hit_memory: Arc<Counter>,
    pool_hit_disk: Arc<Counter>,
    pool_sampled: Arc<Counter>,
    pool_repaired: Arc<Counter>,
    invalidated_dirty: Arc<Counter>,
    invalidated_purged: Arc<Counter>,
    store_purges: Arc<Counter>,
    tau_evaluations: Arc<Counter>,
    seed_cache_hits: Arc<Counter>,
    seed_cache_misses: Arc<Counter>,
    solve_errors: Arc<Counter>,
}

impl ServiceMetrics {
    fn from_registry(registry: &Registry) -> ServiceMetrics {
        const PHASE: &str = "oipa_solver_phase_seconds";
        const PHASE_HELP: &str =
            "Time spent per solver phase: pool_lookup (tiered store get), sampling \
             (MRR pool generation on a miss), solve (the method itself).";
        const POOL: &str = "oipa_pool_requests_total";
        const POOL_HELP: &str =
            "Pool resolutions by outcome: hit_memory, hit_disk, repaired, or sampled.";
        const INVALIDATED: &str = "oipa_pool_invalidations_total";
        const INVALIDATED_HELP: &str =
            "Cached pools invalidated, by kind: dirty (stale-repairable after a graph \
             delta) or purged (dropped — unrelated instance).";
        ServiceMetrics {
            phase_pool_lookup: registry.histogram(PHASE, PHASE_HELP, &[("phase", "pool_lookup")]),
            phase_sampling: registry.histogram(PHASE, PHASE_HELP, &[("phase", "sampling")]),
            phase_solve: registry.histogram(PHASE, PHASE_HELP, &[("phase", "solve")]),
            phase_repair: registry.histogram(
                "oipa_pool_repair_seconds",
                "Time spent delta-repairing a stale pool (dead-walk classification \
                 plus partial resampling) on the request path.",
                &[],
            ),
            pool_hit_memory: registry.counter(POOL, POOL_HELP, &[("outcome", "hit_memory")]),
            pool_hit_disk: registry.counter(POOL, POOL_HELP, &[("outcome", "hit_disk")]),
            pool_sampled: registry.counter(POOL, POOL_HELP, &[("outcome", "sampled")]),
            pool_repaired: registry.counter(POOL, POOL_HELP, &[("outcome", "repaired")]),
            invalidated_dirty: registry.counter(
                INVALIDATED,
                INVALIDATED_HELP,
                &[("kind", "dirty")],
            ),
            invalidated_purged: registry.counter(
                INVALIDATED,
                INVALIDATED_HELP,
                &[("kind", "purged")],
            ),
            store_purges: registry.counter(
                "oipa_store_purges_total",
                "Whole-store purges: the announced instance fingerprint shared no \
                 lineage with the stored pools.",
                &[],
            ),
            tau_evaluations: registry.counter(
                "oipa_solver_tau_evaluations_total",
                "CELF-style marginal-utility (τ) evaluations across solves.",
                &[],
            ),
            seed_cache_hits: registry.counter(
                "oipa_solver_seed_cache_hits_total",
                "Solver seed-cache hits across solves.",
                &[],
            ),
            seed_cache_misses: registry.counter(
                "oipa_solver_seed_cache_misses_total",
                "Solver seed-cache misses across solves.",
                &[],
            ),
            solve_errors: registry.counter(
                "oipa_solve_errors_total",
                "Solve requests that returned a typed error.",
                &[],
            ),
        }
    }
}

/// A per-key sampling slot: locked by the thread doing the sampling,
/// filled with the finished pool for the waiters queued on it.
type SamplingSlot = Mutex<Option<Arc<MrrPool>>>;

/// How [`PlannerService::resolve_pool`] obtained a request's pool.
enum PoolOutcome {
    /// Served warm from a store tier — no sampling at all.
    Hit(PoolTier),
    /// A stale cached pool was delta-repaired (partial resampling).
    Repaired(PoolRepair),
    /// Sampled cold for this request.
    Sampled,
}

struct FlatPoolCache {
    theta: usize,
    seed: u64,
    pool: Arc<RrPool>,
}

impl PlannerService {
    /// Creates a session that samples its own pools from a graph and its
    /// edge probabilities (validated against each other).
    pub fn new(graph: DiGraph, table: EdgeTopicProbs) -> Result<Self, OipaError> {
        if graph.node_count() == 0 {
            return Err(OipaError::config("the graph has no nodes"));
        }
        table
            .check_against(&graph)
            .map_err(|e| OipaError::Mismatch {
                what: e.to_string(),
            })?;
        let root = instance_fingerprint(&graph, &table);
        let store = PoolStore::memory_only(DEFAULT_ARENA_BYTES);
        store.set_lineage(&[root]).map_err(store_err)?;
        Ok(PlannerService {
            graph: Some(graph),
            table: Some(table),
            lineage: Some(Lineage::new(root)),
            epoch_dirty: Vec::new(),
            store,
            default_pool: None,
            default_campaign: None,
            flat_cache: Mutex::new(None),
            sampling: Mutex::new(HashMap::new()),
            obs: OnceLock::new(),
        })
    }

    /// Creates a session around a pre-sampled pool (e.g. loaded from a
    /// `oipa-cli sample` file). Requests that name no campaign use this
    /// pool; requests that do need a graph attached ([`Self::attach_graph`]).
    pub fn from_pool(pool: MrrPool) -> Self {
        // The key carries the pool's content fingerprint, so two
        // different injected pools never alias one entry.
        let key = PoolKey::external("injected", &pool);
        let store = PoolStore::memory_only(DEFAULT_ARENA_BYTES);
        // Pinned: byte pressure from sampled pools must never evict the
        // pool the session was built around.
        store.insert_pinned(key.clone(), Arc::new(pool));
        PlannerService {
            graph: None,
            table: None,
            lineage: None,
            epoch_dirty: Vec::new(),
            store,
            default_pool: Some(key),
            default_campaign: None,
            flat_cache: Mutex::new(None),
            sampling: Mutex::new(HashMap::new()),
            obs: OnceLock::new(),
        }
    }

    /// Attaches a metrics registry: solver-phase timings, pool-outcome
    /// counters, and CELF cache counters start flowing into it. Takes
    /// `&self` (works through a shared `Arc`); the first attachment
    /// wins, later calls are no-ops — one service reports to one
    /// registry for its lifetime.
    pub fn attach_obs(&self, registry: &Registry) {
        let _ = self.obs.set(ServiceMetrics::from_registry(registry));
    }

    /// Attaches a persistent disk tier behind the pool arena (see
    /// [`oipa_store::PoolStore`]): pools evicted by memory pressure
    /// spill to the store directory, arena misses consult it before
    /// resampling, and a later session over the same directory serves
    /// yesterday's pools at disk speed. When the session already owns a
    /// graph and probability table, the store is stamped with their
    /// fingerprint — a directory of pools sampled from *different*
    /// inputs is purged, never served.
    pub fn attach_store(&mut self, config: StoreConfig) -> Result<(), OipaError> {
        self.store.attach_disk(config).map_err(store_err)?;
        if let Some(lineage) = self.lineage.clone() {
            // The full chain, not just the head: a directory stamped with
            // an ancestor epoch keeps its pools (stale-repairable), only
            // a directory from an unrelated instance is purged.
            self.restamp(lineage.fingerprints())?;
        }
        Ok(())
    }

    /// Records the campaign an injected pool was sampled for. Campaign-less
    /// requests keep using the injected pool directly; the recorded
    /// campaign only feeds paths that must resample, i.e. `auto_theta`
    /// requests (which otherwise need `campaign`/`ell` in the request).
    pub fn set_default_campaign(&mut self, campaign: Campaign) {
        self.default_campaign = Some(campaign);
    }

    /// Attaches (or replaces) the graph and probability table, validated
    /// against each other. Needed by `im` and by pool-sampling requests
    /// on a [`Self::from_pool`] session.
    ///
    /// Every pool the session sampled from the previous graph is evicted
    /// — stale pools must not answer requests against the new one.
    /// Injected (pinned) pools are kept: the caller vouched for those.
    pub fn attach_graph(&mut self, graph: DiGraph, table: EdgeTopicProbs) -> Result<(), OipaError> {
        if graph.node_count() == 0 {
            return Err(OipaError::config("the graph has no nodes"));
        }
        table
            .check_against(&graph)
            .map_err(|e| OipaError::Mismatch {
                what: e.to_string(),
            })?;
        self.store.evict_unpinned();
        // Neither tier may keep serving pools sampled from the old
        // inputs: restamp (purging on lineage divergence) before the new
        // graph answers anything. A replacement graph starts a fresh
        // lineage — deltas applied to the old one do not carry over.
        let root = instance_fingerprint(&graph, &table);
        self.restamp(&[root])?;
        self.lineage = Some(Lineage::new(root));
        self.epoch_dirty.clear();
        self.graph = Some(graph);
        self.table = Some(table);
        *lock(&self.flat_cache) = None;
        Ok(())
    }

    /// Announces a lineage to the pool store and folds the outcome into
    /// the invalidation metrics: entries that went stale count as `dirty`,
    /// entries that disappeared count as `purged`. Returns both counts.
    fn restamp(&self, lineage: &[u64]) -> Result<(u64, u64), OipaError> {
        let before = self.store.stats();
        let purged = self.store.set_lineage(lineage).map_err(store_err)?;
        let (dirty, dropped) = invalidation_counts(&before, &self.store.stats());
        if let Some(obs) = self.obs.get() {
            obs.invalidated_dirty.add(dirty);
            obs.invalidated_purged.add(dropped);
            if purged {
                obs.store_purges.inc();
            }
        }
        Ok((dirty, dropped))
    }

    /// Applies a [`GraphDelta`] to the session: rebuilds the graph and
    /// probability table for the post-delta edge set, advances the
    /// lineage by one epoch, and marks every cached pool stale — each
    /// repairs lazily ([`MrrPool::repair`]) the next time a request
    /// addresses it, resampling only the RR sets the delta actually
    /// killed. Answers after the delta are bitwise identical to a
    /// service cold-started on the post-delta inputs.
    ///
    /// `&mut self` — like every session rewiring, deltas are exclusive
    /// with in-flight requests (the server drains before applying).
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<DeltaReport, OipaError> {
        let start = Instant::now();
        if delta.is_empty() {
            return Err(OipaError::config("the delta performs no operations"));
        }
        let (Some(graph), Some(table)) = (self.graph.as_ref(), self.table.as_ref()) else {
            return Err(OipaError::MissingInput {
                what: "the social graph and edge probabilities".to_string(),
                hint: "deltas mutate the session's graph; construct the service with \
                       PlannerService::new(graph, table) or call attach_graph"
                    .to_string(),
            });
        };
        let app = graph.apply_delta(delta).map_err(|e| OipaError::Mismatch {
            what: e.to_string(),
        })?;
        let new_table = table
            .apply_delta(delta, &app)
            .map_err(|e| OipaError::Mismatch {
                what: e.to_string(),
            })?;
        // Inputs validated; commit. The lineage exists whenever the graph
        // does (both are set together by new/attach_graph).
        let lineage = self
            .lineage
            .as_mut()
            .expect("graph sessions carry a lineage");
        let fingerprint = lineage.advance(app.digest);
        let epoch = lineage.epoch();
        let chain = lineage.fingerprints().to_vec();
        let (pools_dirty, pools_purged) = self.restamp(&chain)?;
        self.epoch_dirty.push(app.dirty_targets.clone());
        self.graph = Some(app.graph);
        self.table = Some(new_table);
        *lock(&self.flat_cache) = None;
        Ok(DeltaReport {
            epoch,
            fingerprint,
            ops: delta.op_count(),
            dirty_targets: app.dirty_targets.len(),
            pools_dirty: pools_dirty as usize,
            pools_purged: pools_purged as usize,
            seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// The session's epoch chain: `None` on pool-only sessions, else the
    /// fingerprint lineage from the cold-load root to the current epoch.
    pub fn lineage(&self) -> Option<&Lineage> {
        self.lineage.as_ref()
    }

    /// Replaces the memory tier's byte budget, evicting (and, with a
    /// disk tier attached, spilling) LRU entries that no longer fit.
    pub fn with_arena_capacity(self, capacity_bytes: usize) -> Self {
        self.store.set_mem_capacity(capacity_bytes);
        self
    }

    /// Occupancy and hit/miss/eviction counters of the memory pool tier.
    pub fn arena_stats(&self) -> ArenaStats {
        self.store.arena_stats()
    }

    /// Occupancy and counters of both pool tiers (the disk half is
    /// `None` until [`Self::attach_store`]).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// The serde-round-trip wire form of [`Self::store_stats`]: what the
    /// `oipa-server` `/stats` endpoint serves and `bench serve` reads
    /// back (see [`oipa_store::StatsSnapshot`]).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::from(self.store.stats())
    }

    /// The disk tier's health, when a store is attached (`None` on
    /// memory-only sessions — nothing to degrade). Degraded means the
    /// tier is short-circuiting to memory/resample fallbacks; answers
    /// are unaffected, only cache effectiveness and latency.
    pub fn health(&self) -> Option<TierHealthSnapshot> {
        self.store.health()
    }

    /// Drops every memory-cached pool (the injected default pool
    /// included). Disk segments are kept: they remain valid for the
    /// instance they are stamped with.
    pub fn clear_arena(&mut self) {
        self.store.clear_memory();
        self.default_pool = None;
        *lock(&self.flat_cache) = None;
    }

    /// Answers one solve request. See [`SolveRequest`] for the knobs and
    /// their defaults. Takes `&self`: any number of threads may solve
    /// against one session concurrently.
    pub fn solve(&self, request: &SolveRequest) -> Result<SolveResponse, OipaError> {
        self.solve_traced(request, None)
    }

    /// [`Self::solve`] with per-phase spans recorded into `trace` (and,
    /// once a registry is attached via [`Self::attach_obs`], into the
    /// solver-phase histograms). The phases are `pool_lookup` (tiered
    /// store get), `sampling` (MRR generation on a miss), and `solve`
    /// (the method itself). `solve(r)` is exactly
    /// `solve_traced(r, None)`.
    pub fn solve_traced(
        &self,
        request: &SolveRequest,
        trace: Option<&Trace>,
    ) -> Result<SolveResponse, OipaError> {
        let result = self.solve_inner(request, trace);
        if result.is_err() {
            if let Some(obs) = self.obs.get() {
                obs.solve_errors.inc();
            }
        }
        result
    }

    fn solve_inner(
        &self,
        request: &SolveRequest,
        trace: Option<&Trace>,
    ) -> Result<SolveResponse, OipaError> {
        let start = Instant::now();
        if request.budget == 0 {
            return Err(OipaError::InvalidBudget);
        }
        let model = resolve_model(request.ratio, request.alpha, request.beta)?;
        if request.theta == Some(0) {
            return Err(OipaError::config("θ must be at least 1"));
        }
        let seed = request.seed.unwrap_or(DEFAULT_SEED);
        if let Some(auto) = &request.auto_theta {
            return self.solve_auto(request, auto, model, seed, start, trace);
        }
        let gap = request.gap;
        let eps = request.eps.unwrap_or(DEFAULT_EPS);
        validate_tuning(gap, eps)?;
        let (pool, outcome) = self.resolve_pool(request, seed, trace)?;
        if let Some(obs) = self.obs.get() {
            match &outcome {
                PoolOutcome::Hit(PoolTier::Memory) => obs.pool_hit_memory.inc(),
                PoolOutcome::Hit(PoolTier::Disk) => obs.pool_hit_disk.inc(),
                PoolOutcome::Repaired(_) => obs.pool_repaired.inc(),
                PoolOutcome::Sampled => obs.pool_sampled.inc(),
            }
        }
        // Reject bad promoters before paying any im collapsed-pool
        // sampling below.
        let promoters = resolve_promoters(
            request.promoters.clone(),
            request.promoter_fraction,
            pool.node_count(),
            seed,
        )?;
        let flat_pool = if request.method == Method::Im {
            self.resolve_flat_pool(request.theta.unwrap_or_else(|| pool.theta()), seed)
        } else {
            None
        };
        let context = SolveContext {
            pool: &pool,
            model,
            promoters: &promoters,
            budget: request.budget,
            gap,
            eps,
            max_nodes: request.max_nodes,
            seed,
            graph: self.graph.as_ref(),
            table: self.table.as_ref(),
            collapsed_theta: request.theta,
            flat_pool: flat_pool.as_deref(),
        };
        let solve_started = Instant::now();
        let output = solver_for(request.method).solve(&context)?;
        self.observe_phase("solve", solve_started, trace);
        let stats = output.stats.as_ref().map(SearchStats::from);
        if let (Some(obs), Some(s)) = (self.obs.get(), stats.as_ref()) {
            obs.tau_evaluations.add(s.tau_evaluations);
            obs.seed_cache_hits.add(s.seed_cache_hits);
            obs.seed_cache_misses.add(s.seed_cache_misses);
        }
        Ok(SolveResponse {
            method: request.method,
            k: request.budget,
            theta: pool.theta(),
            pool_cache_hit: matches!(outcome, PoolOutcome::Hit(_)),
            pool_tier: match &outcome {
                PoolOutcome::Hit(tier) => Some(tier.name().to_string()),
                _ => None,
            },
            utility: output.utility,
            upper_bound: output.upper_bound,
            plan: output.plan,
            seconds: start.elapsed().as_secs_f64(),
            stats,
            auto_theta: None,
            pool_repair: match outcome {
                PoolOutcome::Repaired(repair) => Some(repair),
                _ => None,
            },
        })
    }

    /// Records a completed phase into the trace (when one rides along)
    /// and the attached phase histogram (when a registry is attached).
    /// Near-free when neither: two `None` checks.
    fn observe_phase(&self, name: &'static str, started: Instant, trace: Option<&Trace>) {
        let ended = Instant::now();
        if let Some(trace) = trace {
            trace.record_span(name, started, ended);
        }
        if let Some(obs) = self.obs.get() {
            let histogram = match name {
                "pool_lookup" => &obs.phase_pool_lookup,
                "sampling" => &obs.phase_sampling,
                "repair" => &obs.phase_repair,
                _ => &obs.phase_solve,
            };
            histogram.record_duration(ended.saturating_duration_since(started));
        }
    }

    /// Forward Monte-Carlo evaluation of a plan on the session's graph.
    pub fn simulate(&self, request: &SimulateRequest) -> Result<SimulateResponse, OipaError> {
        let start = Instant::now();
        let (Some(graph), Some(table)) = (self.graph.as_ref(), self.table.as_ref()) else {
            return Err(OipaError::MissingInput {
                what: "the social graph and edge probabilities".to_string(),
                hint: "simulation spreads cascades on the graph; construct the service with \
                       PlannerService::new(graph, table) or call attach_graph"
                    .to_string(),
            });
        };
        check_campaign_topics(&request.campaign, table)?;
        if request.plan.ell() != request.campaign.len() {
            return Err(OipaError::Mismatch {
                what: format!(
                    "plan has {} pieces but the campaign has {}",
                    request.plan.ell(),
                    request.campaign.len()
                ),
            });
        }
        let model = resolve_model(request.ratio, request.alpha, request.beta)?;
        let runs = request.runs.unwrap_or(500);
        if runs == 0 {
            return Err(OipaError::config("runs must be at least 1"));
        }
        let seed = request.seed.unwrap_or(DEFAULT_SEED);
        let utility = simulate::simulate_adoption(
            &mut StdRng::seed_from_u64(seed),
            graph,
            table,
            &request.campaign,
            &request.plan.to_vecs(),
            model,
            runs,
        );
        Ok(SimulateResponse {
            runs,
            utility,
            seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Fetches the pool a request addresses: a tiered-store hit, a
    /// delta-repair of a stale cached pool, or — only when neither is
    /// possible — a full cold sampling run.
    fn resolve_pool(
        &self,
        request: &SolveRequest,
        seed: u64,
        trace: Option<&Trace>,
    ) -> Result<(Arc<MrrPool>, PoolOutcome), OipaError> {
        let campaign = self.resolve_campaign(request, seed)?;
        let Some(campaign) = campaign else {
            // No campaign in the request: fall back to the injected pool.
            let Some(key) = self.default_pool.clone() else {
                return Err(OipaError::MissingInput {
                    what: "a campaign".to_string(),
                    hint: "set `campaign` (explicit topic mixes) or `ell` (seeded one-hot \
                           pieces) in the request, or inject a pre-sampled pool with \
                           PlannerService::from_pool"
                        .to_string(),
                });
            };
            // Invariant: `default_pool` is Some only while its pinned
            // entry is resident — byte pressure never evicts pinned
            // entries (pins survive same-key replaces) and `clear_arena`
            // nulls both together. Should the invariant ever break, the
            // request gets a typed error, not the process a panic.
            let lookup_started = Instant::now();
            let found = self.store.get(&key);
            self.observe_phase("pool_lookup", lookup_started, trace);
            let Some((pool, tier)) = found else {
                return Err(OipaError::MissingInput {
                    what: "the injected default pool".to_string(),
                    hint: "the pinned pool this session was built around is no longer \
                           resident; re-inject it with PlannerService::from_pool or name a \
                           campaign in the request"
                        .to_string(),
                });
            };
            return Ok((pool, PoolOutcome::Hit(tier)));
        };
        let campaign_json = serde_json::to_string(&campaign).map_err(|e| OipaError::Io {
            what: "serializing the campaign cache key".to_string(),
            detail: e.to_string(),
        })?;
        let theta = request.theta.unwrap_or(DEFAULT_THETA);
        let key = PoolKey::sampled(campaign_json, theta, seed);
        // Tiered lookup: memory arena first, then (when attached) the
        // persistent disk tier — only a miss on both pays for sampling.
        let lookup_started = Instant::now();
        let found = self.store.get(&key);
        self.observe_phase("pool_lookup", lookup_started, trace);
        if let Some((pool, tier)) = found {
            return Ok((pool, PoolOutcome::Hit(tier)));
        }
        // Miss: coordinate with concurrent missers of the same key so the
        // sampling runs exactly once. The first thread claims the key's
        // slot and samples; the rest block on the slot, then re-check the
        // store and find the finished pool there.
        let slot = {
            let mut sampling = lock(&self.sampling);
            Arc::clone(sampling.entry(key.clone()).or_default())
        };
        let mut claimed = lock(&slot);
        // A filled slot means the thread we waited on finished sampling:
        // take its pool directly. This hand-off does not depend on the
        // store accepting the pool, so even an oversized pool (bigger
        // than the arena budget, never cached) is sampled exactly once.
        if let Some(pool) = claimed.as_ref() {
            let pool = Arc::clone(pool);
            drop(claimed);
            self.release_slot(&key, &slot);
            return Ok((pool, PoolOutcome::Hit(PoolTier::Memory)));
        }
        // Re-check the store without re-counting the miss (the lookup
        // above already did): a hit here means an earlier slot-holder
        // published and already retired its slot before we parked a
        // fresh one.
        if let Some((pool, tier)) = self.store.get_recheck(&key) {
            drop(claimed);
            self.release_slot(&key, &slot);
            return Ok((pool, PoolOutcome::Hit(tier)));
        }
        // A stale ancestor of this key beats cold resampling: repair it
        // (resample only the delta-killed RR sets) instead. The repaired
        // pool is bitwise identical to a cold sample at the current
        // epoch, so waiters on the slot can't tell the difference.
        if let Some((pool, repair)) = self.try_repair(&key, &campaign, seed, trace) {
            *claimed = Some(Arc::clone(&pool));
            drop(claimed);
            self.release_slot(&key, &slot);
            return Ok((pool, PoolOutcome::Repaired(repair)));
        }
        let sampling_started = Instant::now();
        let sampled = self.sample_pool(&campaign, theta, seed);
        self.observe_phase("sampling", sampling_started, trace);
        if let Ok(pool) = &sampled {
            // Publish to the store AND fill the slot before releasing it:
            // a waiter must find the pool the moment it unblocks, with or
            // without the arena agreeing to cache it.
            self.store.insert(key.clone(), Arc::clone(pool));
            *claimed = Some(Arc::clone(pool));
        }
        drop(claimed);
        self.release_slot(&key, &slot);
        Ok((sampled?, PoolOutcome::Sampled))
    }

    /// Attempts a delta repair for a missed key: finds a stale ancestor
    /// in either store tier, resamples only the RR sets whose walks
    /// crossed a dirty target, and re-inserts the result at the current
    /// epoch. `None` when there is nothing stale under the key (or the
    /// session has no lineage/graph to repair against) — the caller
    /// samples cold.
    fn try_repair(
        &self,
        key: &PoolKey,
        campaign: &Campaign,
        seed: u64,
        trace: Option<&Trace>,
    ) -> Option<(Arc<MrrPool>, PoolRepair)> {
        let lineage = self.lineage.as_ref()?;
        let current = lineage.epoch();
        if current == 0 {
            return None;
        }
        let (graph, table) = (self.graph.as_ref()?, self.table.as_ref()?);
        let (stale, epoch, _tier) = self.store.get_any(key)?;
        // Accumulated invalidation frontier from the pool's epoch to now.
        let dirty = self.dirty_since(epoch)?;
        let started = Instant::now();
        let (pool, outcome) = stale.repaired(graph, table, campaign, &dirty, seed).ok()?;
        drop(stale);
        let pool = Arc::new(pool);
        // Re-insert under the same key: the store stamps the current
        // epoch and rewrites the disk payload in place.
        self.store.insert(key.clone(), Arc::clone(&pool));
        self.observe_phase("repair", started, trace);
        Some((
            pool,
            PoolRepair {
                from_epoch: epoch,
                to_epoch: current,
                sets_total: outcome.sets_total,
                sets_resampled: outcome.sets_resampled,
                seconds: started.elapsed().as_secs_f64(),
            },
        ))
    }

    /// The union of every dirty-target set from `epoch` (exclusive of
    /// nothing — the delta that retired `epoch` is included) to the
    /// current epoch, sorted and deduplicated. `None` if `epoch` is not
    /// strictly older than the current epoch.
    fn dirty_since(&self, epoch: u64) -> Option<Vec<NodeId>> {
        let tail = self.epoch_dirty.get(epoch as usize..)?;
        if tail.is_empty() {
            return None;
        }
        let mut dirty: Vec<NodeId> = tail.iter().flatten().copied().collect();
        dirty.sort_unstable();
        dirty.dedup();
        Some(dirty)
    }

    /// Unmaps a sampling slot once its holder is done with the key —
    /// after publishing, after a waiter found the published pool, and
    /// after errors (so a later, possibly fixed, request retries instead
    /// of finding a stale slot). Only the slot the caller actually
    /// claimed may be removed: after a sampling error another thread can
    /// have parked a fresh slot under the same key, and deleting *that*
    /// would let a third thread start a duplicate sampling run.
    fn release_slot(&self, key: &PoolKey, slot: &Arc<SamplingSlot>) {
        let mut sampling = lock(&self.sampling);
        if sampling.get(key).is_some_and(|s| Arc::ptr_eq(s, slot)) {
            sampling.remove(key);
        }
    }

    /// Samples a pool for a campaign (the cache-miss slow path).
    fn sample_pool(
        &self,
        campaign: &Campaign,
        theta: usize,
        seed: u64,
    ) -> Result<Arc<MrrPool>, OipaError> {
        let (Some(graph), Some(table)) = (self.graph.as_ref(), self.table.as_ref()) else {
            return Err(OipaError::MissingInput {
                what: "the social graph and edge probabilities".to_string(),
                hint: "sampling a pool for this campaign needs them; construct the service \
                       with PlannerService::new(graph, table) or call attach_graph"
                    .to_string(),
            });
        };
        check_campaign_topics(campaign, table)?;
        Ok(Arc::new(
            MrrPool::try_generate(graph, table, campaign, theta, seed).map_err(|e| {
                OipaError::Mismatch {
                    what: e.to_string(),
                }
            })?,
        ))
    }

    /// The campaign a request itself names: explicit or seeded one-hot.
    /// `None` means the request addresses the session's injected pool
    /// (the session default campaign is only a fallback for paths that
    /// cannot run without one, such as auto-θ).
    fn resolve_campaign(
        &self,
        request: &SolveRequest,
        seed: u64,
    ) -> Result<Option<Campaign>, OipaError> {
        if let Some(campaign) = &request.campaign {
            if campaign.is_empty() {
                return Err(OipaError::config("the campaign has no pieces"));
            }
            return Ok(Some(campaign.clone()));
        }
        if let Some(ell) = request.ell {
            if ell == 0 {
                return Err(OipaError::config("ell must be at least 1"));
            }
            let Some(table) = self.table.as_ref() else {
                return Err(OipaError::MissingInput {
                    what: "edge probabilities".to_string(),
                    hint: "a seeded one-hot campaign draws topics from the probability \
                           table; attach one or pass an explicit `campaign`"
                        .to_string(),
                });
            };
            let mut rng = StdRng::seed_from_u64(seed);
            return Ok(Some(Campaign::sample_one_hot(
                &mut rng,
                table.topic_count(),
                ell,
            )));
        }
        Ok(None)
    }

    /// The collapsed-probability RR pool the `im` baseline needs,
    /// cached per (θ, seed) so repeated `im` requests skip its sampling
    /// cost just like the MRR arena skips theirs. The cache mutex is held
    /// across the build, so concurrent `im` requests sample it once.
    /// Returns `None` when no graph is attached (the solver then reports
    /// the missing input).
    fn resolve_flat_pool(&self, theta: usize, seed: u64) -> Option<Arc<RrPool>> {
        let (graph, table) = (self.graph.as_ref()?, self.table.as_ref()?);
        let mut cache = lock(&self.flat_cache);
        if let Some(cached) = cache.as_ref() {
            if cached.theta == theta && cached.seed == seed {
                return Some(Arc::clone(&cached.pool));
            }
        }
        let pool = Arc::new(collapsed_pool(graph, table, theta, seed));
        *cache = Some(FlatPoolCache {
            theta,
            seed,
            pool: Arc::clone(&pool),
        });
        Some(pool)
    }

    /// The auto-θ path: escalating solve-and-cross-validate rounds on
    /// fresh pools (these do not enter the arena — each round's θ is
    /// provisional by design).
    fn solve_auto(
        &self,
        request: &SolveRequest,
        auto: &AutoThetaRequest,
        model: LogisticAdoption,
        seed: u64,
        start: Instant,
        trace: Option<&Trace>,
    ) -> Result<SolveResponse, OipaError> {
        if !matches!(request.method, Method::Bab | Method::BabP | Method::Plain) {
            return Err(OipaError::config(format!(
                "auto θ drives the branch-and-bound methods (bab, bab-p, plain); \
                 method {} takes a fixed θ",
                request.method
            )));
        }
        let defaults = AutoThetaConfig::default();
        let mut bab = match request.method {
            Method::Bab => oipa_core::BabConfig::bab(),
            Method::BabP => oipa_core::BabConfig::bab_p(request.eps.unwrap_or(DEFAULT_EPS)),
            Method::Plain => oipa_core::BabConfig {
                method: oipa_core::BoundMethod::PlainGreedy,
                ..oipa_core::BabConfig::bab()
            },
            _ => unreachable!("filtered above"),
        };
        if let Some(gap) = request.gap {
            bab.gap = gap;
        }
        bab.max_nodes = request.max_nodes;
        let config = AutoThetaConfig {
            initial_theta: auto.initial_theta.unwrap_or(defaults.initial_theta),
            max_theta: auto.max_theta.unwrap_or(defaults.max_theta),
            rel_tol: auto.rel_tol.unwrap_or(defaults.rel_tol),
            seed,
            bab,
            ..defaults
        };
        // Validate the policy up front — before touching the graph or the
        // sampler — so a malformed request (`initial_theta: 0`, a ceiling
        // below the start, a non-finite tolerance) is a typed config
        // error at the service boundary, never a panic deeper down.
        // `AutoThetaConfig::validate` is the single source of truth for
        // the accepted domain; `solve_auto_theta` re-checks it for free.
        config.validate()?;
        let campaign = self
            .resolve_campaign(request, seed)?
            .or_else(|| self.default_campaign.clone())
            .ok_or_else(|| OipaError::MissingInput {
                what: "a campaign".to_string(),
                hint: "auto θ resamples pools per round, so the request must carry \
                       `campaign` or `ell`"
                    .to_string(),
            })?;
        let (Some(graph), Some(table)) = (self.graph.as_ref(), self.table.as_ref()) else {
            return Err(OipaError::MissingInput {
                what: "the social graph and edge probabilities".to_string(),
                hint: "auto θ resamples pools per round; construct the service with \
                       PlannerService::new(graph, table) or call attach_graph"
                    .to_string(),
            });
        };
        check_campaign_topics(&campaign, table)?;
        let promoters = resolve_promoters(
            request.promoters.clone(),
            request.promoter_fraction,
            graph.node_count(),
            seed,
        )?;
        // Auto-θ interleaves sampling and solving per round; one "solve"
        // span covers the whole escalation.
        let solve_started = Instant::now();
        let result = solve_auto_theta(
            graph,
            table,
            &campaign,
            model,
            &promoters,
            request.budget,
            config,
        )?;
        self.observe_phase("solve", solve_started, trace);
        Ok(SolveResponse {
            method: request.method,
            k: request.budget,
            theta: result.theta,
            pool_cache_hit: false,
            pool_tier: None,
            utility: result.solution.utility,
            upper_bound: Some(result.solution.upper_bound),
            plan: result.solution.plan,
            seconds: start.elapsed().as_secs_f64(),
            stats: Some(SearchStats::from(&result.solution.stats)),
            auto_theta: Some(AutoThetaReport {
                converged: result.converged,
                rounds: result.rounds.len(),
            }),
            pool_repair: None,
        })
    }
}

/// Locks a mutex, recovering from poisoning: service state behind these
/// locks is a cache (rebuildable), so one panicked request must not take
/// every other request thread down with it.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Maps a store-directory failure into the service's typed error space.
fn store_err(e: oipa_store::StoreError) -> OipaError {
    OipaError::Io {
        what: "the persistent pool store".to_string(),
        detail: e.to_string(),
    }
}

/// How many store entries (across both tiers) went stale and how many
/// disappeared between two stats snapshots — the per-restamp deltas
/// behind `oipa_pool_invalidations_total`.
fn invalidation_counts(before: &StoreStats, after: &StoreStats) -> (u64, u64) {
    let stale = |s: &StoreStats| s.mem.stale + s.disk.as_ref().map_or(0, |d| d.stale_entries);
    let entries = |s: &StoreStats| s.mem.entries + s.disk.as_ref().map_or(0, |d| d.entries);
    let dirty = stale(after).saturating_sub(stale(before)) as u64;
    let dropped = entries(before).saturating_sub(entries(after)) as u64;
    (dirty, dropped)
}

/// Fingerprint of the sampling inputs a pool store is valid for: mixes
/// the graph topology and the probability table. Stamped into the store
/// manifest so a directory can never serve pools across instances.
fn instance_fingerprint(graph: &DiGraph, table: &EdgeTopicProbs) -> u64 {
    use std::hash::Hasher as _;
    let mut h = oipa_graph::hashing::FxHasher::default();
    h.write_u64(graph.fingerprint());
    h.write_u64(table.fingerprint());
    h.finish()
}

/// Builds the logistic model from the request's `ratio` or `alpha`+`beta`
/// (mutually exclusive; default ratio 0.5).
fn resolve_model(
    ratio: Option<f64>,
    alpha: Option<f64>,
    beta: Option<f64>,
) -> Result<LogisticAdoption, OipaError> {
    match (ratio, alpha, beta) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) => Err(OipaError::config(
            "give either `ratio` or `alpha`+`beta`, not both",
        )),
        (_, Some(a), Some(b)) => {
            if !(a.is_finite() && b.is_finite() && a > 0.0 && b > 0.0) {
                return Err(OipaError::config(format!(
                    "alpha and beta must be positive and finite, got α={a}, β={b}"
                )));
            }
            Ok(LogisticAdoption::new(a, b))
        }
        (_, Some(_), None) | (_, None, Some(_)) => {
            Err(OipaError::config("alpha and beta must be given together"))
        }
        (r, None, None) => {
            let r = r.unwrap_or(DEFAULT_RATIO);
            if !(r.is_finite() && r > 0.0) {
                return Err(OipaError::config(format!(
                    "ratio must be positive and finite, got {r}"
                )));
            }
            Ok(LogisticAdoption::from_ratio(r))
        }
    }
}

/// Materializes the promoter pool: an explicit id list (validated and
/// normalized) or a seeded uniform sample of `fraction · n` users.
fn resolve_promoters(
    explicit: Option<Vec<NodeId>>,
    fraction: Option<f64>,
    node_count: usize,
    seed: u64,
) -> Result<Vec<NodeId>, OipaError> {
    if let Some(mut promoters) = explicit {
        promoters.sort_unstable();
        promoters.dedup();
        if let Some(&bad) = promoters.iter().find(|&&v| (v as usize) >= node_count) {
            return Err(OipaError::PromoterOutOfRange {
                promoter: bad,
                node_count,
            });
        }
        if promoters.is_empty() {
            return Err(OipaError::EmptyPromoters);
        }
        return Ok(promoters);
    }
    let fraction = fraction.unwrap_or(DEFAULT_PROMOTER_FRACTION);
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(OipaError::config(format!(
            "promoter fraction must be in (0, 1], got {fraction}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(OipaInstance::sample_promoters(
        &mut rng, node_count, fraction,
    ))
}

/// Tuning-parameter checks shared by every method, so a malformed
/// request fails identically regardless of dispatch target.
/// Every piece's topic vector must live in the probability table's topic
/// space; anything else would panic deep inside the sampler.
fn check_campaign_topics(campaign: &Campaign, table: &EdgeTopicProbs) -> Result<(), OipaError> {
    if let Some(piece) = campaign
        .pieces()
        .iter()
        .find(|p| p.topics.dim() != table.topic_count())
    {
        return Err(OipaError::Mismatch {
            what: format!(
                "campaign piece {:?} has {}-dimensional topics but the probability table \
                 has {} topics",
                piece.name,
                piece.topics.dim(),
                table.topic_count()
            ),
        });
    }
    Ok(())
}

fn validate_tuning(gap: Option<f64>, eps: f64) -> Result<(), OipaError> {
    if let Some(gap) = gap {
        if gap.is_nan() || gap < 0.0 {
            return Err(OipaError::config(format!(
                "gap must be nonnegative, got {gap}"
            )));
        }
    }
    if eps.is_nan() || eps <= 0.0 {
        return Err(OipaError::config(format!("ε must be positive, got {eps}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole contract: a session must be shareable across request
    /// threads (compile-time check).
    #[test]
    fn planner_service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlannerService>();
        assert_send_sync::<PoolStore>();
    }

    #[test]
    fn model_resolution_rules() {
        assert!(resolve_model(None, None, None).is_ok());
        assert!(resolve_model(Some(0.7), None, None).is_ok());
        assert!(resolve_model(None, Some(2.0), Some(1.0)).is_ok());
        assert!(resolve_model(Some(0.5), Some(2.0), Some(1.0)).is_err());
        assert!(resolve_model(None, Some(2.0), None).is_err());
        assert!(resolve_model(Some(-1.0), None, None).is_err());
    }

    #[test]
    fn promoter_resolution_rules() {
        let explicit = resolve_promoters(Some(vec![3, 1, 1, 2]), None, 5, 0).unwrap();
        assert_eq!(explicit, vec![1, 2, 3]);
        assert!(matches!(
            resolve_promoters(Some(vec![9]), None, 5, 0),
            Err(OipaError::PromoterOutOfRange { promoter: 9, .. })
        ));
        assert!(matches!(
            resolve_promoters(Some(vec![]), None, 5, 0),
            Err(OipaError::EmptyPromoters)
        ));
        let sampled = resolve_promoters(None, Some(0.5), 100, 7).unwrap();
        assert_eq!(sampled.len(), 50);
        assert!(resolve_promoters(None, Some(1.5), 100, 7).is_err());
    }
}
