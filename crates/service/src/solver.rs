//! The unified [`Solver`] trait and the method registry.
//!
//! Historically each method had its own entry point with its own
//! signature — `BranchAndBound::solve`, `relaxed::envelope_heuristic`,
//! the `oipa-baselines` free functions, `brute::brute_force_best` — and
//! callers hard-coded the dispatch. Here every method implements one
//! trait over one [`SolveContext`], and dispatch is data-driven through
//! [`registry`]/[`solver_for`]. Each implementation delegates to the
//! pre-existing entry point unchanged, so registry answers are
//! bitwise-identical to direct calls (enforced by
//! `crates/service/tests/service_api.rs`).

use crate::request::Method;
use oipa_baselines::paper::collapsed_pool;
use oipa_baselines::{im_baseline, tim_baseline};
use oipa_core::brute::brute_force_best;
use oipa_core::relaxed::envelope_heuristic;
use oipa_core::{
    AssignmentPlan, AuEstimator, BabConfig, BabStats, BoundMethod, BranchAndBound, OipaError,
    OipaInstance,
};
use oipa_graph::{DiGraph, NodeId};
use oipa_sampler::MrrPool;
use oipa_topics::{EdgeTopicProbs, LogisticAdoption};

/// Everything a solver may need, resolved from a request by the
/// `PlannerService` (pool fetched or sampled, promoters materialized,
/// model built, defaults applied).
pub struct SolveContext<'a> {
    /// The MRR pool to optimize over.
    pub pool: &'a MrrPool,
    /// The logistic adoption model.
    pub model: LogisticAdoption,
    /// The promoter pool `V^p` (validated, deduplicated, sorted).
    pub promoters: &'a [NodeId],
    /// Budget `k`.
    pub budget: usize,
    /// Branch-and-bound termination gap (`None` → the 1% default).
    pub gap: Option<f64>,
    /// Progressive-bound ε.
    pub eps: f64,
    /// Hard node cap for branch-and-bound methods.
    pub max_nodes: Option<usize>,
    /// Seed for method-internal sampling (the `im` collapsed pool).
    pub seed: u64,
    /// The social graph, when the session owns one (`im` needs it).
    pub graph: Option<&'a DiGraph>,
    /// Edge probabilities, when the session owns them (`im` needs them).
    pub table: Option<&'a EdgeTopicProbs>,
    /// θ for the `im` baseline's collapsed pool (`None` → the pool's θ).
    pub collapsed_theta: Option<usize>,
    /// Pre-built collapsed-probability RR pool for `im` (the
    /// `PlannerService` caches one per (θ, seed); when absent the solver
    /// samples it itself).
    pub flat_pool: Option<&'a oipa_sampler::RrPool>,
}

/// What every solver returns.
pub struct SolverOutput {
    /// The assignment plan found.
    pub plan: AssignmentPlan,
    /// MRR-estimated adoption utility, in users.
    pub utility: f64,
    /// Certified upper bound (branch-and-bound methods only).
    pub upper_bound: Option<f64>,
    /// Search statistics (branch-and-bound methods only).
    pub stats: Option<BabStats>,
}

/// A registered solve method.
pub trait Solver: Sync {
    /// The method this solver implements.
    fn method(&self) -> Method;

    /// Runs the method over a resolved context.
    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolverOutput, OipaError>;
}

/// The three branch-and-bound flavors share a config builder and driver.
struct BabSolver(Method);

impl BabSolver {
    fn config(&self, ctx: &SolveContext<'_>) -> BabConfig {
        let mut config = match self.0 {
            Method::Bab => BabConfig::bab(),
            Method::BabP => BabConfig::bab_p(ctx.eps),
            Method::Plain => BabConfig {
                method: BoundMethod::PlainGreedy,
                ..BabConfig::bab()
            },
            other => unreachable!("BabSolver registered for {other}"),
        };
        if let Some(gap) = ctx.gap {
            config.gap = gap;
        }
        config.max_nodes = ctx.max_nodes;
        config
    }
}

impl Solver for BabSolver {
    fn method(&self) -> Method {
        self.0
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolverOutput, OipaError> {
        let instance = OipaInstance::new(ctx.pool, ctx.model, ctx.promoters.to_vec(), ctx.budget)?;
        let solution = BranchAndBound::try_new(&instance, self.config(ctx))?.solve();
        Ok(SolverOutput {
            plan: solution.plan,
            utility: solution.utility,
            upper_bound: Some(solution.upper_bound),
            stats: Some(solution.stats),
        })
    }
}

/// The §VII concave-envelope relaxation heuristic.
struct GreedySolver;

impl Solver for GreedySolver {
    fn method(&self) -> Method {
        Method::Greedy
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolverOutput, OipaError> {
        let (plan, utility) = envelope_heuristic(ctx.pool, ctx.model, ctx.promoters, ctx.budget);
        Ok(SolverOutput {
            plan,
            utility,
            upper_bound: None,
            stats: None,
        })
    }
}

/// Exact enumeration, gated on the candidate-count limit.
struct BruteSolver;

/// `brute_force_best` enumerates `C(candidates, k)` plans; beyond this
/// many candidates it would not terminate in reasonable time.
const BRUTE_CANDIDATE_LIMIT: usize = 26;

impl Solver for BruteSolver {
    fn method(&self) -> Method {
        Method::Brute
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolverOutput, OipaError> {
        let candidates = ctx.pool.ell() * ctx.promoters.len();
        if candidates > BRUTE_CANDIDATE_LIMIT {
            return Err(OipaError::TooLarge {
                what: "brute-force candidate count (ℓ × |promoters|)".to_string(),
                limit: BRUTE_CANDIDATE_LIMIT,
                got: candidates,
            });
        }
        let mut estimator = AuEstimator::new(ctx.pool, ctx.model);
        let (plan, utility) =
            brute_force_best(&mut estimator, ctx.promoters, ctx.pool.ell(), ctx.budget);
        Ok(SolverOutput {
            plan,
            utility,
            upper_bound: None,
            stats: None,
        })
    }
}

/// The paper's topic-oblivious `IM` baseline.
struct ImSolver;

impl Solver for ImSolver {
    fn method(&self) -> Method {
        Method::Im
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolverOutput, OipaError> {
        let (Some(graph), Some(table)) = (ctx.graph, ctx.table) else {
            return Err(OipaError::MissingInput {
                what: "the social graph and edge probabilities".to_string(),
                hint: "the im baseline samples a collapsed-probability pool; construct the \
                       service with PlannerService::new(graph, table) or call attach_graph"
                    .to_string(),
            });
        };
        let theta = ctx.collapsed_theta.unwrap_or_else(|| ctx.pool.theta());
        let owned;
        let flat = match ctx.flat_pool {
            Some(flat) => flat,
            None => {
                owned = collapsed_pool(graph, table, theta, ctx.seed);
                &owned
            }
        };
        let mut estimator = AuEstimator::new(ctx.pool, ctx.model);
        let result = im_baseline(flat, ctx.pool, &mut estimator, ctx.promoters, ctx.budget);
        Ok(SolverOutput {
            plan: result.plan,
            utility: result.utility,
            upper_bound: None,
            stats: None,
        })
    }
}

/// The paper's per-piece `TIM` baseline.
struct TimSolver;

impl Solver for TimSolver {
    fn method(&self) -> Method {
        Method::Tim
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolverOutput, OipaError> {
        let mut estimator = AuEstimator::new(ctx.pool, ctx.model);
        let result = tim_baseline(ctx.pool, &mut estimator, ctx.promoters, ctx.budget);
        Ok(SolverOutput {
            plan: result.plan,
            utility: result.utility,
            upper_bound: None,
            stats: None,
        })
    }
}

static BAB: BabSolver = BabSolver(Method::Bab);
static BAB_P: BabSolver = BabSolver(Method::BabP);
static PLAIN: BabSolver = BabSolver(Method::Plain);
static GREEDY: GreedySolver = GreedySolver;
static BRUTE: BruteSolver = BruteSolver;
static IM: ImSolver = ImSolver;
static TIM: TimSolver = TimSolver;

static REGISTRY: [&dyn Solver; 7] = [&BAB, &BAB_P, &PLAIN, &GREEDY, &BRUTE, &IM, &TIM];

/// Every registered solver, in [`Method::ALL`] order.
pub fn registry() -> &'static [&'static dyn Solver] {
    &REGISTRY
}

/// The solver registered for a method.
pub fn solver_for(method: Method) -> &'static dyn Solver {
    REGISTRY
        .iter()
        .copied()
        .find(|s| s.method() == method)
        .expect("every Method variant is registered")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_method() {
        assert_eq!(registry().len(), Method::ALL.len());
        for m in Method::ALL {
            assert_eq!(solver_for(m).method(), m);
        }
    }
}
