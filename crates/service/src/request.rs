//! The service wire format: serde-serializable requests and responses.
//!
//! A [`SolveRequest`] is a self-contained description of one OIPA query —
//! method, budget, promoter policy, adoption model, θ policy (fixed or
//! auto), and campaign — with every optional field defaulting to the
//! paper's experimental settings. Requests stream naturally as JSONL
//! (`oipa-cli batch`), and the matching [`SolveResponse`] carries the
//! plan, its utility, the θ actually used, and solver statistics.

use oipa_core::{AssignmentPlan, BabStats, OipaError};
use oipa_topics::Campaign;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// The registered solve methods, in registry order.
///
/// Wire names match the CLI's historical `--method` values: `bab`,
/// `bab-p`, `plain`, `greedy`, `brute`, `im`, `tim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Branch-and-bound with the CELF greedy bound (Algorithm 1 + 2).
    Bab,
    /// Branch-and-bound with the progressive bound (Algorithm 3).
    BabP,
    /// Branch-and-bound with the plain rescan bound (ablation).
    Plain,
    /// The §VII concave-envelope relaxation heuristic (CELF greedy).
    Greedy,
    /// Exact enumeration (tiny instances only).
    Brute,
    /// The paper's topic-oblivious `IM` baseline (needs the graph).
    Im,
    /// The paper's per-piece `TIM` baseline.
    Tim,
}

impl Method {
    /// Every method, in registry order.
    pub const ALL: [Method; 7] = [
        Method::Bab,
        Method::BabP,
        Method::Plain,
        Method::Greedy,
        Method::Brute,
        Method::Im,
        Method::Tim,
    ];

    /// The wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Bab => "bab",
            Method::BabP => "bab-p",
            Method::Plain => "plain",
            Method::Greedy => "greedy",
            Method::Brute => "brute",
            Method::Im => "im",
            Method::Tim => "tim",
        }
    }

    /// Parses a wire/CLI name, listing the registered names on failure.
    pub fn parse(name: &str) -> Result<Method, OipaError> {
        Method::ALL
            .into_iter()
            .find(|m| m.name() == name)
            .ok_or_else(|| OipaError::UnknownMethod {
                got: name.to_string(),
                known: Method::ALL.iter().map(|m| m.name().to_string()).collect(),
            })
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// Hand-written serde: the wire names (`bab-p`) are not valid Rust variant
// identifiers, so the shim's unit-enum derive cannot produce them.
impl Serialize for Method {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Deserialize for Method {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v {
            Value::String(s) => Method::parse(s).map_err(SerdeError::msg),
            other => Err(SerdeError(format!(
                "expected a method name string, found {}",
                other.kind()
            ))),
        }
    }
}

/// The auto-θ policy: solve at a small θ and escalate until a fresh-pool
/// cross-validation agrees (see `oipa_core::auto`). Absent fields take
/// [`oipa_core::auto::AutoThetaConfig`] defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoThetaRequest {
    /// Starting θ (default 10 000).
    pub initial_theta: Option<usize>,
    /// Hard θ ceiling (default 1 000 000).
    pub max_theta: Option<usize>,
    /// Relative agreement tolerance (default 0.02).
    pub rel_tol: Option<f64>,
}

/// One OIPA query. Only `method` and `budget` are mandatory; everything
/// else defaults to the paper's experimental settings (promoter fraction
/// 10%, logistic ratio β/α = 0.5, gap 1%, ε = 0.5, θ = 100 000).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveRequest {
    /// The solve method (registry name).
    pub method: Method,
    /// Budget `k`: total promoter assignments across pieces.
    pub budget: usize,
    /// Explicit promoter ids (overrides `promoter_fraction`).
    pub promoters: Option<Vec<u32>>,
    /// Uniformly sampled promoter-pool fraction (default 0.1).
    pub promoter_fraction: Option<f64>,
    /// Base seed for promoter sampling and pool generation (default 42).
    pub seed: Option<u64>,
    /// Logistic ratio β/α shorthand (default 0.5; exclusive with
    /// `alpha`/`beta`).
    pub ratio: Option<f64>,
    /// Logistic α (requires `beta`).
    pub alpha: Option<f64>,
    /// Logistic β (requires `alpha`).
    pub beta: Option<f64>,
    /// Branch-and-bound termination gap (default 0.01).
    pub gap: Option<f64>,
    /// Progressive-bound ε for `bab-p` (default 0.5).
    pub eps: Option<f64>,
    /// Hard cap on expanded branch-and-bound nodes (default: none).
    pub max_nodes: Option<usize>,
    /// Explicit campaign (topic mix per piece).
    pub campaign: Option<Campaign>,
    /// Piece count for a seeded one-hot campaign (when `campaign` is
    /// absent; requires the service to own a probability table).
    pub ell: Option<usize>,
    /// Fixed θ policy: MRR samples per pool (default 100 000). With an
    /// externally injected pool this only sizes the `im` baseline's
    /// collapsed pool.
    pub theta: Option<usize>,
    /// Auto-θ policy; overrides `theta` (branch-and-bound methods only).
    pub auto_theta: Option<AutoThetaRequest>,
}

impl SolveRequest {
    /// A request with every optional field left to its default.
    pub fn new(method: Method, budget: usize) -> Self {
        SolveRequest {
            method,
            budget,
            promoters: None,
            promoter_fraction: None,
            seed: None,
            ratio: None,
            alpha: None,
            beta: None,
            gap: None,
            eps: None,
            max_nodes: None,
            campaign: None,
            ell: None,
            theta: None,
            auto_theta: None,
        }
    }
}

/// Search statistics echoed in a [`SolveResponse`] (the serializable
/// subset of [`BabStats`]; only branch-and-bound methods produce them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Heap nodes expanded.
    pub nodes_expanded: usize,
    /// Bound computations.
    pub bounds_computed: usize,
    /// Nodes pruned against the incumbent.
    pub nodes_pruned: usize,
    /// τ marginal-gain evaluations (the paper's §V-C cost metric).
    pub tau_evaluations: u64,
    /// Cached-seed bound computations (incremental engine).
    pub seed_cache_hits: u64,
    /// Fresh-scan bound computations (incremental engine).
    pub seed_cache_misses: u64,
}

impl From<&BabStats> for SearchStats {
    fn from(s: &BabStats) -> Self {
        SearchStats {
            nodes_expanded: s.nodes_expanded,
            bounds_computed: s.bounds_computed,
            nodes_pruned: s.nodes_pruned,
            tau_evaluations: s.tau_evaluations,
            seed_cache_hits: s.seed_cache_hits,
            seed_cache_misses: s.seed_cache_misses,
        }
    }
}

/// How a request's pool was brought forward after graph deltas: instead
/// of resampling all θ · ℓ RR sets from scratch, only the sets whose
/// walks crossed a dirty target were regenerated (see
/// [`oipa_sampler::MrrPool::repair`]). The repaired pool is bitwise
/// identical to a cold resample at the current epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolRepair {
    /// Epoch the stale pool was sampled at.
    pub from_epoch: u64,
    /// Epoch the pool was repaired to (the session's current epoch).
    pub to_epoch: u64,
    /// Total RR sets in the pool (θ · ℓ).
    pub sets_total: usize,
    /// Sets classified dead and resampled.
    pub sets_resampled: usize,
    /// Wall-clock seconds spent classifying and resampling.
    pub seconds: f64,
}

/// What applying one [`oipa_graph::GraphDelta`] to a session did — the
/// `POST /delta` response body.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaReport {
    /// The session's epoch after the delta (one per applied delta).
    pub epoch: u64,
    /// The lineage head fingerprint at the new epoch.
    pub fingerprint: u64,
    /// Edge operations in the delta (insert + remove + reweight).
    pub ops: usize,
    /// Nodes whose in-edge row changed — the invalidation frontier.
    pub dirty_targets: usize,
    /// Cached pools marked stale-repairable by this delta (across both
    /// store tiers; each repairs lazily on its next request).
    pub pools_dirty: usize,
    /// Cached pools dropped outright (0 unless the lineage diverged,
    /// which a delta never causes — attaching an unrelated graph does).
    pub pools_purged: usize,
    /// Wall-clock seconds for the CSR rebuild and cache restamp.
    pub seconds: f64,
}

/// How an auto-θ request converged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoThetaReport {
    /// Whether the cross-validation tolerance was met (false ⇒ the θ
    /// ceiling stopped the escalation).
    pub converged: bool,
    /// Escalation rounds performed.
    pub rounds: usize,
}

/// The answer to one [`SolveRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveResponse {
    /// The method that produced the plan.
    pub method: Method,
    /// The budget the plan was optimized for.
    pub k: usize,
    /// MRR samples θ of the pool the plan was evaluated on.
    pub theta: usize,
    /// Whether the pool came from the session's pool store (amortized)
    /// rather than being sampled for this request.
    pub pool_cache_hit: bool,
    /// Which store tier served the pool on a cache hit: `"memory"` or
    /// `"disk"`. `None` when the request paid for sampling.
    pub pool_tier: Option<String>,
    /// MRR-estimated adoption utility of the plan, in users.
    pub utility: f64,
    /// Certified upper bound (branch-and-bound methods only).
    pub upper_bound: Option<f64>,
    /// The assignment plan.
    pub plan: AssignmentPlan,
    /// End-to-end request latency in seconds (includes sampling on a
    /// pool-cache miss).
    pub seconds: f64,
    /// Search statistics (branch-and-bound methods only).
    pub stats: Option<SearchStats>,
    /// Auto-θ convergence report (auto-θ requests only).
    pub auto_theta: Option<AutoThetaReport>,
    /// Present when the pool was delta-repaired for this request rather
    /// than served warm or sampled cold ([`pool_cache_hit`] stays
    /// `false`: the request did pay for partial resampling).
    ///
    /// [`pool_cache_hit`]: SolveResponse::pool_cache_hit
    pub pool_repair: Option<PoolRepair>,
}

/// A forward Monte-Carlo evaluation request: spread each piece from its
/// assigned promoters and average adopted users over `runs` cascades.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulateRequest {
    /// The plan to evaluate.
    pub plan: AssignmentPlan,
    /// The campaign the plan indexes into.
    pub campaign: Campaign,
    /// Logistic ratio β/α shorthand (default 0.5).
    pub ratio: Option<f64>,
    /// Logistic α (requires `beta`).
    pub alpha: Option<f64>,
    /// Logistic β (requires `alpha`).
    pub beta: Option<f64>,
    /// Monte-Carlo cascades (default 500).
    pub runs: Option<usize>,
    /// RNG seed (default 42).
    pub seed: Option<u64>,
}

/// The answer to a [`SimulateRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulateResponse {
    /// Cascades simulated.
    pub runs: usize,
    /// Mean adopted users across cascades.
    pub utility: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_wire_names_round_trip() {
        for m in Method::ALL {
            let json = serde_json::to_string(&m).unwrap();
            let back: Method = serde_json::from_str(&json).unwrap();
            assert_eq!(m, back);
            assert_eq!(Method::parse(m.name()).unwrap(), m);
        }
        assert_eq!(serde_json::to_string(&Method::BabP).unwrap(), "\"bab-p\"");
        let err = Method::parse("bap").unwrap_err();
        assert!(err.to_string().contains("bab-p"), "{err}");
    }

    #[test]
    fn absent_fields_deserialize_as_none() {
        let req: SolveRequest = serde_json::from_str(r#"{"method":"bab","budget":3}"#).unwrap();
        assert_eq!(req.method, Method::Bab);
        assert_eq!(req.budget, 3);
        assert!(req.theta.is_none() && req.campaign.is_none() && req.auto_theta.is_none());
    }
}
