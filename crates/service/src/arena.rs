//! The keyed pool arena: an LRU cache of sampled [`MrrPool`]s, bounded
//! by resident bytes.
//!
//! Sampling θ MRR sets dominates end-to-end latency (the paper's Table
//! III "sample time" row), yet a pool depends only on the campaign's
//! topic mix, θ, and the sampling seed — not on the adoption model, the
//! budget, the promoter pool, or the solve method. A multi-query session
//! therefore caches pools under that key and lets every subsequent
//! request that shares it skip sampling entirely (the IMM-style
//! amortization of §V-A, applied across requests instead of across
//! parameter sweeps).

use oipa_sampler::MrrPool;
use serde::Serialize;
use std::sync::Arc;

/// Cache key: everything pool contents depend on.
///
/// The campaign component is its canonical JSON rendering, so two
/// requests with structurally equal campaigns share an entry while any
/// difference in topic mixes keys a distinct pool. Externally loaded
/// pools (e.g. a `--pool` file in the CLI) get an `@external:` key that
/// no sampled request can collide with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolKey {
    campaign: String,
    theta: usize,
    seed: u64,
}

impl PoolKey {
    /// Key for a pool the service samples itself.
    pub fn sampled(campaign_json: String, theta: usize, seed: u64) -> Self {
        PoolKey {
            campaign: campaign_json,
            theta,
            seed,
        }
    }

    /// Key for a pool injected from outside (file, caller-built).
    pub fn external(label: &str, theta: usize) -> Self {
        PoolKey {
            campaign: format!("@external:{label}"),
            theta,
            seed: 0,
        }
    }

    /// The θ the key was built with.
    pub fn theta(&self) -> usize {
        self.theta
    }
}

struct ArenaEntry {
    key: PoolKey,
    pool: Arc<MrrPool>,
    bytes: usize,
    last_used: u64,
    /// Pinned entries (injected pools) are never evicted by byte
    /// pressure — only `clear`/`evict_unpinned` removes them.
    pinned: bool,
}

/// Cumulative arena counters plus the current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ArenaStats {
    /// Pools currently resident.
    pub entries: usize,
    /// Bytes currently resident.
    pub bytes: usize,
    /// The configured byte budget.
    pub capacity_bytes: usize,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that required sampling (or an insert).
    pub misses: u64,
    /// Pools evicted to stay under the byte budget.
    pub evictions: u64,
}

/// An LRU pool cache bounded by [`MrrPool::memory_bytes`].
pub struct PoolArena {
    capacity_bytes: usize,
    entries: Vec<ArenaEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PoolArena {
    /// Creates an arena with the given byte budget. A budget of 0 still
    /// holds the most recently inserted pool (a usable pool is never
    /// evicted before it serves its own request).
    pub fn new(capacity_bytes: usize) -> Self {
        PoolArena {
            capacity_bytes,
            entries: Vec::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a pool, refreshing its recency on a hit.
    pub fn get(&mut self, key: &PoolKey) -> Option<Arc<MrrPool>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.iter_mut().find(|e| &e.key == key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits += 1;
                Some(Arc::clone(&entry.pool))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) a pool, then evicts least-recently-used
    /// entries until the arena fits its byte budget. The pool just
    /// inserted is exempt from eviction even if it alone exceeds the
    /// budget — a request must be able to use the pool it paid for.
    pub fn insert(&mut self, key: PoolKey, pool: Arc<MrrPool>) {
        self.insert_entry(key, pool, false);
    }

    /// Inserts a pool that byte pressure must never evict (an injected
    /// pool the session was built around). Only [`Self::clear`] removes
    /// pinned entries.
    pub fn insert_pinned(&mut self, key: PoolKey, pool: Arc<MrrPool>) {
        self.insert_entry(key, pool, true);
    }

    fn insert_entry(&mut self, key: PoolKey, pool: Arc<MrrPool>, pinned: bool) {
        self.clock += 1;
        let bytes = pool.memory_bytes();
        self.entries.retain(|e| e.key != key);
        self.entries.push(ArenaEntry {
            key,
            pool,
            bytes,
            last_used: self.clock,
            pinned,
        });
        self.enforce_budget(Some(self.clock));
    }

    /// Evicts unpinned LRU entries until the budget fits; `protect` marks
    /// a `last_used` stamp that must survive (the entry just inserted).
    fn enforce_budget(&mut self, protect: Option<u64>) {
        while self.bytes() > self.capacity_bytes {
            let Some((victim, _)) = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.pinned && Some(e.last_used) != protect)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break; // only pinned/protected entries left
            };
            self.entries.remove(victim);
            self.evictions += 1;
        }
    }

    /// Bytes currently resident.
    pub fn bytes(&self) -> usize {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Pools currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the arena holds no pools.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached pool (counters are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Changes the byte budget, evicting least-recently-used unpinned
    /// entries until the arena fits (the most recent unpinned entry is
    /// kept if it is all that remains).
    pub fn set_capacity(&mut self, capacity_bytes: usize) {
        self.capacity_bytes = capacity_bytes;
        let newest = self.entries.iter().map(|e| e.last_used).max();
        self.enforce_budget(newest);
    }

    /// Drops every *sampled* (unpinned) pool, keeping injected ones.
    /// Called when the graph or probability table changes: pools sampled
    /// from the old inputs must not serve the new ones.
    pub fn evict_unpinned(&mut self) {
        let before = self.entries.len();
        self.entries.retain(|e| e.pinned);
        self.evictions += (before - self.entries.len()) as u64;
    }

    /// Occupancy and cumulative counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            entries: self.len(),
            bytes: self.bytes(),
            capacity_bytes: self.capacity_bytes,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::testkit::fig1;

    fn pool(theta: usize, seed: u64) -> Arc<MrrPool> {
        let (g, table, campaign) = fig1();
        Arc::new(MrrPool::generate(&g, &table, &campaign, theta, seed))
    }

    #[test]
    fn hit_refreshes_recency() {
        // One seed ⇒ equal byte sizes, so the budget fits exactly two.
        let a = pool(500, 1);
        let bytes = a.memory_bytes();
        let mut arena = PoolArena::new(2 * bytes + 8);
        arena.insert(PoolKey::external("a", 500), a);
        arena.insert(PoolKey::external("b", 500), pool(500, 1));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(arena.get(&PoolKey::external("a", 500)).is_some());
        arena.insert(PoolKey::external("c", 500), pool(500, 1));
        assert!(arena.get(&PoolKey::external("a", 500)).is_some());
        assert!(arena.get(&PoolKey::external("b", 500)).is_none());
        let stats = arena.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn oversized_pool_survives_its_own_insert() {
        let mut arena = PoolArena::new(0);
        arena.insert(PoolKey::external("big", 1000), pool(1000, 4));
        assert_eq!(arena.len(), 1);
        assert!(arena.get(&PoolKey::external("big", 1000)).is_some());
        // The next insert evicts it.
        arena.insert(PoolKey::external("next", 500), pool(500, 5));
        assert_eq!(arena.len(), 1);
        assert!(arena.get(&PoolKey::external("big", 1000)).is_none());
    }
}
