//! End-to-end surgical invalidation at the service layer: applying graph
//! deltas to a live session must leave every later answer **bitwise
//! identical** to a service cold-started on the post-delta inputs — while
//! the session repairs its cached pools instead of resampling them.

use oipa_graph::{DiGraph, NodeId};
use oipa_sampler::testkit::small_random_instance;
use oipa_service::{EdgeChange, GraphDelta, Method, PlannerService, SolveRequest, TopicProb};
use oipa_topics::EdgeTopicProbs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_row(rng: &mut StdRng, topic_count: usize) -> Vec<TopicProb> {
    let topic = rng.gen_range(0..topic_count) as u16;
    vec![TopicProb {
        topic,
        prob: rng.gen_range(0.05..0.8f32),
    }]
}

/// A random non-empty valid delta against `graph`: removals, reweights of
/// survivors, and insertions of absent edges.
fn random_delta(rng: &mut StdRng, graph: &DiGraph, topic_count: usize) -> GraphDelta {
    loop {
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|e| (e.source, e.target)).collect();
        let n = graph.node_count() as NodeId;
        let mut delta = GraphDelta::default();
        let mut removed = std::collections::HashSet::new();
        for _ in 0..rng.gen_range(0..3usize) {
            let pick = edges[rng.gen_range(0..edges.len())];
            if removed.insert(pick) {
                delta.remove.push(pick);
            }
        }
        for _ in 0..rng.gen_range(0..3usize) {
            let pick = edges[rng.gen_range(0..edges.len())];
            if !removed.contains(&pick)
                && !delta.reweight.iter().any(|c| (c.source, c.target) == pick)
            {
                delta.reweight.push(EdgeChange {
                    source: pick.0,
                    target: pick.1,
                    probs: random_row(rng, topic_count),
                });
            }
        }
        for _ in 0..rng.gen_range(0..3usize) {
            for _attempt in 0..32 {
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                let absent = graph.find_edge(u, v).is_none() || removed.contains(&(u, v));
                if u != v && absent && !delta.insert.iter().any(|c| (c.source, c.target) == (u, v))
                {
                    delta.insert.push(EdgeChange {
                        source: u,
                        target: v,
                        probs: random_row(rng, topic_count),
                    });
                    break;
                }
            }
        }
        if !delta.is_empty() {
            return delta;
        }
    }
}

fn request() -> SolveRequest {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let (_, _, campaign) = small_random_instance(&mut rng, 60, 350, 4, 2);
    let mut request = SolveRequest::new(Method::Bab, 2);
    request.campaign = Some(campaign);
    request.theta = Some(2_000);
    request
}

fn instance() -> (DiGraph, EdgeTopicProbs) {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let (graph, table, _) = small_random_instance(&mut rng, 60, 350, 4, 2);
    (graph, table)
}

/// Drives one delta-evolved session at `warm_threads` against a
/// cold-started reference at `cold_threads` and asserts the answers are
/// bitwise identical (plan, utility, bound) — with the evolved session
/// repairing its pool rather than resampling it.
fn run_against_cold(case_seed: u64, warm_threads: usize, cold_threads: usize) {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let (graph, table) = instance();
    let request = request();
    let mut service = PlannerService::new(graph.clone(), table.clone()).unwrap();
    let warm_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(warm_threads)
        .build()
        .unwrap();
    let first = warm_pool.install(|| service.solve(&request)).unwrap();
    assert!(!first.pool_cache_hit && first.pool_repair.is_none());

    // Evolve the session by three deltas, mirroring them onto a copy of
    // the inputs for the cold reference.
    let (mut cold_graph, mut cold_table) = (graph, table);
    for step in 0..3u64 {
        let delta = random_delta(&mut rng, &cold_graph, cold_table.topic_count());
        let report = service.apply_delta(&delta).unwrap();
        assert_eq!(report.epoch, step + 1);
        assert_eq!(report.ops, delta.op_count());
        assert!(report.dirty_targets > 0);
        assert_eq!(report.pools_purged, 0, "deltas never purge");
        if step == 0 {
            assert_eq!(report.pools_dirty, 1, "the cached pool went stale");
        }
        let app = cold_graph.apply_delta(&delta).unwrap();
        cold_table = cold_table.apply_delta(&delta, &app).unwrap();
        cold_graph = app.graph;
    }
    assert_eq!(service.lineage().unwrap().epoch(), 3);

    let repaired = warm_pool.install(|| service.solve(&request)).unwrap();
    let repair = repaired.pool_repair.expect("the stale pool was repaired");
    assert_eq!(repair.from_epoch, 0);
    assert_eq!(repair.to_epoch, 3);
    assert!(repair.sets_resampled <= repair.sets_total);
    assert!(!repaired.pool_cache_hit, "repair is not a free hit");

    let cold_service = PlannerService::new(cold_graph, cold_table).unwrap();
    let cold = rayon::ThreadPoolBuilder::new()
        .num_threads(cold_threads)
        .build()
        .unwrap()
        .install(|| cold_service.solve(&request))
        .unwrap();
    assert!(cold.pool_repair.is_none() && !cold.pool_cache_hit);
    assert_eq!(repaired.plan, cold.plan, "case {case_seed}: plans diverged");
    assert_eq!(repaired.utility, cold.utility);
    assert_eq!(repaired.upper_bound, cold.upper_bound);

    // The repaired pool is warm at the current epoch from here on.
    let warm = service.solve(&request).unwrap();
    assert!(warm.pool_cache_hit && warm.pool_repair.is_none());
    assert_eq!(warm.plan, cold.plan);
}

#[test]
fn delta_repaired_answers_match_cold_service_one_thread() {
    run_against_cold(11, 1, 4);
}

#[test]
fn delta_repaired_answers_match_cold_service_four_threads() {
    run_against_cold(23, 4, 1);
}

#[test]
fn invalid_and_empty_deltas_are_rejected() {
    let (graph, table) = instance();
    let mut service = PlannerService::new(graph.clone(), table).unwrap();
    assert!(service.apply_delta(&GraphDelta::default()).is_err());
    // Inserting an existing edge is all-or-nothing rejected: the session
    // keeps serving at epoch 0.
    let edge = graph.edges().next().unwrap();
    let bad = GraphDelta {
        insert: vec![EdgeChange {
            source: edge.source,
            target: edge.target,
            probs: vec![TopicProb {
                topic: 0,
                prob: 0.5,
            }],
        }],
        ..GraphDelta::default()
    };
    assert!(service.apply_delta(&bad).is_err());
    assert_eq!(service.lineage().unwrap().epoch(), 0);

    // Pool-only sessions have no graph to mutate.
    let (g, t, campaign) = oipa_sampler::testkit::fig1();
    let pool = oipa_sampler::MrrPool::generate(&g, &t, &campaign, 500, 1);
    let mut injected = PlannerService::from_pool(pool);
    let delta = GraphDelta {
        remove: vec![(0, 1)],
        ..GraphDelta::default()
    };
    assert!(injected.apply_delta(&delta).is_err());
}

#[test]
fn repair_metrics_flow_into_an_attached_registry() {
    let mut rng = StdRng::seed_from_u64(77);
    let (graph, table) = instance();
    let request = request();
    let mut service = PlannerService::new(graph, table).unwrap();
    let registry = oipa_obs::Registry::new();
    service.attach_obs(&registry);
    service.solve(&request).unwrap();
    let delta = {
        let lineage_graph = instance().0;
        random_delta(&mut rng, &lineage_graph, 4)
    };
    service.apply_delta(&delta).unwrap();
    let repaired = service.solve(&request).unwrap();
    assert!(repaired.pool_repair.is_some());

    let outcome = |o: &'static str| {
        registry
            .counter("oipa_pool_requests_total", "", &[("outcome", o)])
            .get()
    };
    assert_eq!(outcome("sampled"), 1);
    assert_eq!(outcome("repaired"), 1);
    assert_eq!(
        registry
            .counter("oipa_pool_invalidations_total", "", &[("kind", "dirty")])
            .get(),
        1
    );
    assert_eq!(
        registry
            .counter("oipa_pool_invalidations_total", "", &[("kind", "purged")])
            .get(),
        0
    );
    assert_eq!(
        registry
            .histogram("oipa_pool_repair_seconds", "", &[])
            .count(),
        1
    );
}
