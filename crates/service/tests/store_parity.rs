//! Golden parity across the three pool paths a stored session can take:
//! **cold** (sample now), **mem-warm** (arena hit), and **disk-warm**
//! (restart: fresh service over a populated store directory). Plans and
//! utilities must be bitwise-identical on all three — the store may only
//! ever change latency, never answers.

use oipa_sampler::testkit::small_random_instance;
use oipa_service::{EvictionPolicyKind, Method, PlannerService, SolveRequest, StoreConfig};
use oipa_topics::Campaign;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oipa-service-store").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn instance() -> (oipa_graph::DiGraph, oipa_topics::EdgeTopicProbs, Campaign) {
    let mut rng = StdRng::seed_from_u64(17);
    small_random_instance(&mut rng, 80, 600, 4, 2)
}

fn request(campaign: &Campaign) -> SolveRequest {
    let mut req = SolveRequest::new(Method::BabP, 3);
    req.campaign = Some(campaign.clone());
    req.theta = Some(6_000);
    req.seed = Some(5);
    req.promoter_fraction = Some(0.3);
    req.max_nodes = Some(30);
    req
}

#[test]
fn cold_disk_warm_and_mem_warm_answers_are_bitwise_identical() {
    let dir = tmpdir("parity");
    let (graph, table, campaign) = instance();
    let req = request(&campaign);

    // Cold, no store: the reference answer.
    let plain = PlannerService::new(graph.clone(), table.clone()).unwrap();
    let cold = plain.solve(&req).unwrap();
    assert!(!cold.pool_cache_hit);
    assert_eq!(cold.pool_tier, None);

    // Cold with a store attached: same answer, and the pool persists.
    let mut writer = PlannerService::new(graph.clone(), table.clone()).unwrap();
    writer.attach_store(StoreConfig::new(&dir)).unwrap();
    let cold_stored = writer.solve(&req).unwrap();
    assert!(!cold_stored.pool_cache_hit);
    assert_eq!(cold_stored.plan, cold.plan);
    assert_eq!(cold_stored.utility.to_bits(), cold.utility.to_bits());

    // Mem-warm: second request on the same session.
    let mem_warm = writer.solve(&req).unwrap();
    assert_eq!(mem_warm.pool_tier.as_deref(), Some("memory"));
    assert_eq!(mem_warm.plan, cold.plan);
    assert_eq!(mem_warm.utility.to_bits(), cold.utility.to_bits());
    drop(writer);

    // Disk-warm: a fresh session ("restart") over the same directory.
    let mut restarted = PlannerService::new(graph, table).unwrap();
    restarted.attach_store(StoreConfig::new(&dir)).unwrap();
    let disk_warm = restarted.solve(&req).unwrap();
    assert!(disk_warm.pool_cache_hit, "restart must hit the disk tier");
    assert_eq!(disk_warm.pool_tier.as_deref(), Some("disk"));
    assert_eq!(disk_warm.plan, cold.plan, "disk-warm plan diverged");
    assert_eq!(
        disk_warm.utility.to_bits(),
        cold.utility.to_bits(),
        "disk-warm utility diverged"
    );
    // The disk hit promoted the pool: the next request is memory-tier.
    let promoted = restarted.solve(&req).unwrap();
    assert_eq!(promoted.pool_tier.as_deref(), Some("memory"));

    let stats = restarted.store_stats();
    let disk = stats.disk.expect("disk tier attached");
    assert_eq!(disk.hits, 1);
}

/// Shard count and eviction policy are latency/capacity knobs, never
/// answer knobs: the same request solved through 1-, 4-, and 16-shard
/// stores (and under LFU) returns bitwise-identical plans and utilities
/// on both the cold and warm paths.
#[test]
fn answers_are_bitwise_identical_at_any_shard_count() {
    let (graph, table, campaign) = instance();
    let req = request(&campaign);

    let reference = PlannerService::new(graph.clone(), table.clone())
        .unwrap()
        .solve(&req)
        .unwrap();

    for (shards, eviction) in [
        (1, EvictionPolicyKind::Lru),
        (4, EvictionPolicyKind::Lru),
        (16, EvictionPolicyKind::Lfu),
    ] {
        let dir = tmpdir(&format!("shard-parity-{shards}"));
        let mut config = StoreConfig::new(&dir);
        config.shards = Some(shards);
        config.eviction = Some(eviction);
        let mut service = PlannerService::new(graph.clone(), table.clone()).unwrap();
        service.attach_store(config).unwrap();

        let cold = service.solve(&req).unwrap();
        assert!(!cold.pool_cache_hit);
        assert_eq!(cold.plan, reference.plan, "{shards}-shard cold plan");
        assert_eq!(
            cold.utility.to_bits(),
            reference.utility.to_bits(),
            "{shards}-shard cold utility diverged"
        );

        let warm = service.solve(&req).unwrap();
        assert_eq!(warm.pool_tier.as_deref(), Some("memory"));
        assert_eq!(warm.plan, reference.plan, "{shards}-shard warm plan");
        assert_eq!(
            warm.utility.to_bits(),
            reference.utility.to_bits(),
            "{shards}-shard warm utility diverged"
        );

        let stats = service.store_stats();
        assert_eq!(stats.mem_shards.len(), shards, "stats must expose stripes");
    }
}

/// A store directory is bound to the (graph, table) it was filled from:
/// a service over *different* inputs must purge it rather than serve
/// pools that were sampled elsewhere.
#[test]
fn store_directory_never_serves_a_different_instance() {
    let dir = tmpdir("instance-guard");
    let (graph, table, campaign) = instance();
    let req = request(&campaign);

    let mut writer = PlannerService::new(graph, table).unwrap();
    writer.attach_store(StoreConfig::new(&dir)).unwrap();
    writer.solve(&req).unwrap();
    drop(writer);

    // A different seeded instance ⇒ different fingerprint ⇒ purge.
    let mut rng = StdRng::seed_from_u64(99);
    let (other_graph, other_table, _) = small_random_instance(&mut rng, 80, 600, 4, 2);
    let mut other = PlannerService::new(other_graph, other_table).unwrap();
    other.attach_store(StoreConfig::new(&dir)).unwrap();
    let response = other.solve(&req).unwrap();
    assert!(
        !response.pool_cache_hit,
        "a pool sampled from another graph was served"
    );
}

/// `attach_graph` mid-session restamps the disk tier too — stale pools
/// are purged from both tiers in one move.
#[test]
fn attach_graph_restamps_the_disk_tier() {
    let dir = tmpdir("attach-graph");
    let (graph, table, campaign) = instance();
    let req = request(&campaign);

    let mut service = PlannerService::new(graph, table).unwrap();
    service.attach_store(StoreConfig::new(&dir)).unwrap();
    service.solve(&req).unwrap();

    let mut rng = StdRng::seed_from_u64(123);
    let (g2, t2, _) = small_random_instance(&mut rng, 80, 600, 4, 2);
    service.attach_graph(g2, t2).unwrap();
    let response = service.solve(&req).unwrap();
    assert!(
        !response.pool_cache_hit,
        "pool from the pre-attach_graph instance served after the swap"
    );
}
