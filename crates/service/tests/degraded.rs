//! Degraded-mode serving: a disk-tier outage must never change an
//! answer or fail a request. The store may only ever change latency —
//! even while the disk underneath it is on fire — and once the fault
//! clears, the request-ticked probe brings the tier back without any
//! operator action.

use oipa_sampler::testkit::fig1;
use oipa_service::{Method, PlannerService, SolveRequest, SolveResponse, StoreConfig};
use oipa_store::io::{FaultIo, FaultSchedule};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("oipa-service-degraded")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fig-1 solve; `seed` discriminates pool keys, so fresh seeds force
/// the cold path (arena miss → disk lookup → sample → insert).
fn request(seed: u64) -> SolveRequest {
    let (_, _, campaign) = fig1();
    let mut req = SolveRequest::new(Method::Bab, 2);
    req.campaign = Some(campaign);
    req.theta = Some(400);
    req.seed = Some(seed);
    req.promoters = Some((0..5).collect());
    req
}

/// The answer-bearing fields: plan plus exact utility bits.
fn answer(r: &SolveResponse) -> (String, u64) {
    (serde_json::to_string(&r.plan).unwrap(), r.utility.to_bits())
}

#[test]
fn disk_outage_serves_bitwise_identical_answers_then_recovers() {
    let dir = tmpdir("outage");
    let (graph, probs, _) = fig1();

    // The store-free reference: what every answer must equal, bit for
    // bit, no matter what the disk does.
    let reference = PlannerService::new(graph.clone(), probs.clone()).unwrap();

    let fault = FaultIo::over_real(FaultSchedule::none());
    let mut service = PlannerService::new(graph, probs).unwrap();
    service
        .attach_store(StoreConfig::new(&dir).with_io(fault.clone()))
        .unwrap();

    // Healthy baseline: the first pool lands on disk.
    let healthy = service.solve(&request(5)).unwrap();
    assert_eq!(
        answer(&healthy),
        answer(&reference.solve(&request(5)).unwrap())
    );
    assert!(service.health().unwrap().is_healthy());

    // The disk goes away wholesale. Requests must not notice.
    fault.set_outage(true);
    let during = service.solve(&request(6)).unwrap();
    assert_eq!(
        answer(&during),
        answer(&reference.solve(&request(6)).unwrap()),
        "an answer changed during the disk outage"
    );
    let health = service.health().unwrap();
    assert!(!health.is_healthy(), "the outage must trip the tier");
    assert!(health.errors > 0);

    // Warm keys still serve from memory, identically.
    let warm = service.solve(&request(5)).unwrap();
    assert_eq!(warm.pool_tier.as_deref(), Some("memory"));
    assert_eq!(answer(&warm), answer(&healthy));

    // The health state rides the stats snapshot for operators.
    let snapshot = service.stats_snapshot();
    let disk_health = snapshot.disk_health.expect("disk tier attached");
    assert!(!disk_health.is_healthy());

    // Fault clears; fresh cold requests tick the backoff-gated probe
    // until the tier recovers — no background thread, no restart.
    fault.set_outage(false);
    for seed in 20..28 {
        let resp = service.solve(&request(seed)).unwrap();
        assert_eq!(
            answer(&resp),
            answer(&reference.solve(&request(seed)).unwrap()),
            "answer diverged while the tier was probing its way back"
        );
    }
    let health = service.health().unwrap();
    assert!(
        health.is_healthy(),
        "the tier must self-recover: {health:?}"
    );
    assert!(health.recoveries >= 1);
}

/// A service whose store directory is broken *at attach time* must still
/// come up (degraded) and serve, rather than refuse to start.
#[test]
fn attach_store_over_a_read_only_directory_degrades_not_fails() {
    let dir = tmpdir("ro-attach");
    let (graph, probs, _) = fig1();

    // Populate the directory healthily first so there is state to protect.
    {
        let mut service = PlannerService::new(graph.clone(), probs.clone()).unwrap();
        service.attach_store(StoreConfig::new(&dir)).unwrap();
        service.solve(&request(5)).unwrap();
    }

    let reference = PlannerService::new(graph.clone(), probs.clone()).unwrap();
    let fault = FaultIo::over_real(FaultSchedule::none());
    fault.set_readonly(true);
    let mut service = PlannerService::new(graph, probs).unwrap();
    service
        .attach_store(StoreConfig::new(&dir).with_io(fault.clone()))
        .expect("a read-only store directory attaches degraded, not failed");
    assert!(!service.health().unwrap().is_healthy());

    // Degraded disk ⇒ the cold path resamples; the answer is identical.
    let resp = service.solve(&request(5)).unwrap();
    assert_eq!(
        answer(&resp),
        answer(&reference.solve(&request(5)).unwrap())
    );

    // Writable again: the probe restores the tier and the persisted pool
    // becomes reachable once memory pressure would need it.
    fault.set_readonly(false);
    for seed in 40..46 {
        service.solve(&request(seed)).unwrap();
    }
    assert!(service.health().unwrap().is_healthy());
}
