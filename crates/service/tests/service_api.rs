//! Acceptance suite for the `PlannerService` redesign.
//!
//! * **Wire format** — `SolveRequest`/`SolveResponse` round-trip through
//!   JSON bitwise (floats use shortest-round-trip rendering).
//! * **Golden parity** — for every registered method, service answers are
//!   bitwise-identical (plan, utility, bounds) to the pre-redesign direct
//!   entry points, on the Fig. 1 fixture and on a seeded medium instance.
//! * **Arena** — repeat requests hit the pool cache; θ/seed/campaign
//!   changes key distinct pools; a byte budget evicts LRU entries.

use oipa_baselines::paper::collapsed_pool;
use oipa_baselines::{im_baseline, tim_baseline};
use oipa_core::auto::{solve_auto_theta, AutoThetaConfig};
use oipa_core::brute::brute_force_best;
use oipa_core::relaxed::envelope_heuristic;
use oipa_core::{AuEstimator, BabConfig, BoundMethod, BranchAndBound, OipaError, OipaInstance};
use oipa_graph::DiGraph;
use oipa_sampler::testkit::{fig1, small_random_instance};
use oipa_sampler::MrrPool;
use oipa_service::{AutoThetaRequest, Method, PlannerService, SolveRequest, SolveResponse};
use oipa_topics::{Campaign, EdgeTopicProbs, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The seeded medium instance shared by the parity tests and the service
/// bench: regenerating from the same seed is bitwise deterministic, so
/// the service and the direct calls see identical inputs.
fn medium() -> (DiGraph, EdgeTopicProbs, Campaign) {
    let mut rng = StdRng::seed_from_u64(9);
    small_random_instance(&mut rng, 90, 700, 4, 3)
}

struct Fixture {
    graph: DiGraph,
    table: EdgeTopicProbs,
    campaign: Campaign,
    promoters: Vec<u32>,
    k: usize,
    theta: usize,
    seed: u64,
    max_nodes: Option<usize>,
}

impl Fixture {
    fn fig1() -> Fixture {
        let (graph, table, campaign) = fig1();
        Fixture {
            graph,
            table,
            campaign,
            promoters: (0..5).collect(),
            k: 2,
            theta: 20_000,
            seed: 7,
            max_nodes: None,
        }
    }

    fn medium() -> Fixture {
        let (graph, table, campaign) = medium();
        Fixture {
            graph,
            table,
            campaign,
            // ℓ · |Vᵖ| = 24 keeps `brute` inside its candidate limit.
            promoters: (0..24).step_by(3).collect(),
            k: 4,
            theta: 12_000,
            seed: 11,
            max_nodes: Some(60),
        }
    }

    fn pool(&self) -> MrrPool {
        MrrPool::generate(
            &self.graph,
            &self.table,
            &self.campaign,
            self.theta,
            self.seed,
        )
    }

    fn request(&self, method: Method) -> SolveRequest {
        let mut req = SolveRequest::new(method, self.k);
        req.campaign = Some(self.campaign.clone());
        req.theta = Some(self.theta);
        req.seed = Some(self.seed);
        req.promoters = Some(self.promoters.clone());
        req.max_nodes = self.max_nodes;
        req
    }

    fn service(&self) -> PlannerService {
        PlannerService::new(self.graph.clone(), self.table.clone()).unwrap()
    }

    /// The pre-redesign direct call for a method, with the exact
    /// configuration the service derives from `self.request(method)`.
    fn direct(&self, method: Method) -> (oipa_core::AssignmentPlan, f64, Option<f64>) {
        let pool = self.pool();
        let model = LogisticAdoption::from_ratio(0.5);
        match method {
            Method::Bab | Method::BabP | Method::Plain => {
                let config = match method {
                    Method::Bab => BabConfig {
                        max_nodes: self.max_nodes,
                        ..BabConfig::bab()
                    },
                    Method::BabP => BabConfig {
                        max_nodes: self.max_nodes,
                        ..BabConfig::bab_p(0.5)
                    },
                    _ => BabConfig {
                        max_nodes: self.max_nodes,
                        method: BoundMethod::PlainGreedy,
                        ..BabConfig::bab()
                    },
                };
                let instance =
                    OipaInstance::new(&pool, model, self.promoters.clone(), self.k).unwrap();
                let sol = BranchAndBound::new(&instance, config).solve();
                (sol.plan, sol.utility, Some(sol.upper_bound))
            }
            Method::Greedy => {
                let (plan, utility) = envelope_heuristic(&pool, model, &self.promoters, self.k);
                (plan, utility, None)
            }
            Method::Brute => {
                let mut est = AuEstimator::new(&pool, model);
                let (plan, utility) =
                    brute_force_best(&mut est, &self.promoters, pool.ell(), self.k);
                (plan, utility, None)
            }
            Method::Im => {
                let flat = collapsed_pool(&self.graph, &self.table, self.theta, self.seed);
                let mut est = AuEstimator::new(&pool, model);
                let r = im_baseline(&flat, &pool, &mut est, &self.promoters, self.k);
                (r.plan, r.utility, None)
            }
            Method::Tim => {
                let mut est = AuEstimator::new(&pool, model);
                let r = tim_baseline(&pool, &mut est, &self.promoters, self.k);
                (r.plan, r.utility, None)
            }
        }
    }
}

fn assert_parity(fixture: &Fixture, label: &str) {
    let service = fixture.service();
    for method in Method::ALL {
        let response = service.solve(&fixture.request(method)).unwrap();
        let (plan, utility, upper) = fixture.direct(method);
        assert_eq!(response.plan, plan, "{label}/{method}: plans diverged");
        assert_eq!(
            response.utility.to_bits(),
            utility.to_bits(),
            "{label}/{method}: utility diverged ({} vs {utility})",
            response.utility
        );
        assert_eq!(
            response.upper_bound.map(f64::to_bits),
            upper.map(f64::to_bits),
            "{label}/{method}: upper bound diverged"
        );
        assert_eq!(response.k, fixture.k);
        assert_eq!(response.theta, fixture.theta);
    }
    // All seven methods shared one sampled pool: 6 arena hits.
    let stats = service.arena_stats();
    assert_eq!(stats.entries, 1, "{label}: one campaign ⇒ one pool");
    assert_eq!(stats.hits, (Method::ALL.len() - 1) as u64, "{label}");
}

#[test]
fn registry_parity_on_fig1() {
    assert_parity(&Fixture::fig1(), "fig1");
}

#[test]
fn registry_parity_on_seeded_medium_instance() {
    assert_parity(&Fixture::medium(), "medium");
}

#[test]
fn solve_request_round_trips_through_json() {
    let fixture = Fixture::fig1();
    let mut req = fixture.request(Method::BabP);
    req.promoter_fraction = Some(0.25);
    req.ratio = Some(0.7);
    req.gap = Some(0.0);
    req.eps = Some(0.4);
    req.ell = Some(2);
    req.auto_theta = Some(AutoThetaRequest {
        initial_theta: Some(1_000),
        max_theta: Some(8_000),
        rel_tol: Some(0.05),
    });
    let json = serde_json::to_string(&req).unwrap();
    let back: SolveRequest = serde_json::from_str(&json).unwrap();
    assert_eq!(req, back);

    // A minimal request needs only method and budget.
    let minimal: SolveRequest = serde_json::from_str(r#"{"method":"greedy","budget":5}"#).unwrap();
    assert_eq!(minimal.method, Method::Greedy);
    assert_eq!(minimal.budget, 5);
}

#[test]
fn solve_response_round_trips_through_json() {
    let fixture = Fixture::fig1();
    let service = fixture.service();
    let response = service.solve(&fixture.request(Method::Bab)).unwrap();
    let json = serde_json::to_string_pretty(&response).unwrap();
    let back: SolveResponse = serde_json::from_str(&json).unwrap();
    assert_eq!(response, back, "response JSON round-trip is lossy");
    assert_eq!(back.utility.to_bits(), response.utility.to_bits());
    assert!(back.stats.is_some(), "bab responses carry search stats");
}

#[test]
fn repeat_requests_hit_the_pool_cache() {
    let fixture = Fixture::fig1();
    let service = fixture.service();
    let first = service.solve(&fixture.request(Method::Bab)).unwrap();
    let second = service.solve(&fixture.request(Method::Bab)).unwrap();
    assert!(!first.pool_cache_hit);
    assert!(second.pool_cache_hit);
    assert_eq!(first.plan, second.plan);
    assert_eq!(first.utility.to_bits(), second.utility.to_bits());

    // A different θ keys a different pool.
    let mut other = fixture.request(Method::Bab);
    other.theta = Some(10_000);
    let third = service.solve(&other).unwrap();
    assert!(!third.pool_cache_hit);
    assert_eq!(service.arena_stats().entries, 2);

    // A different sampling seed keys a different pool too.
    let mut reseeded = fixture.request(Method::Bab);
    reseeded.seed = Some(fixture.seed + 1);
    let fourth = service.solve(&reseeded).unwrap();
    assert!(!fourth.pool_cache_hit);
    assert_eq!(service.arena_stats().entries, 3);
}

#[test]
fn arena_byte_budget_evicts_lru_pools() {
    let fixture = Fixture::fig1();
    let pool_bytes = fixture.pool().memory_bytes();
    // Room for two pools of this size, not three.
    let service = fixture.service().with_arena_capacity(2 * pool_bytes + 64);
    let mut seeds = Vec::new();
    for s in 0..3u64 {
        let mut req = fixture.request(Method::Greedy);
        req.seed = Some(100 + s);
        service.solve(&req).unwrap();
        seeds.push(100 + s);
    }
    let stats = service.arena_stats();
    assert!(stats.evictions >= 1, "no eviction under a 2-pool budget");
    assert!(stats.entries <= 2);
    assert!(stats.bytes <= 2 * pool_bytes + 64);
    // The most recent seed must still be cached.
    let mut req = fixture.request(Method::Greedy);
    req.seed = Some(102);
    assert!(service.solve(&req).unwrap().pool_cache_hit);
    // The least recent must have been the one evicted.
    let mut req = fixture.request(Method::Greedy);
    req.seed = Some(100);
    assert!(!service.solve(&req).unwrap().pool_cache_hit);
}

#[test]
fn auto_theta_matches_direct_call() {
    let fixture = Fixture::fig1();
    let service = fixture.service();
    let mut req = fixture.request(Method::BabP);
    req.theta = None;
    req.auto_theta = Some(AutoThetaRequest {
        initial_theta: Some(2_000),
        max_theta: Some(50_000),
        rel_tol: None,
    });
    let response = service.solve(&req).unwrap();

    let direct = solve_auto_theta(
        &fixture.graph,
        &fixture.table,
        &fixture.campaign,
        LogisticAdoption::from_ratio(0.5),
        &fixture.promoters,
        fixture.k,
        AutoThetaConfig {
            initial_theta: 2_000,
            max_theta: 50_000,
            seed: fixture.seed,
            bab: BabConfig::bab_p(0.5),
            ..AutoThetaConfig::default()
        },
    )
    .unwrap();
    assert_eq!(response.plan, direct.solution.plan);
    assert_eq!(
        response.utility.to_bits(),
        direct.solution.utility.to_bits()
    );
    assert_eq!(response.theta, direct.theta);
    let report = response.auto_theta.expect("auto-θ report");
    assert_eq!(report.converged, direct.converged);
    assert_eq!(report.rounds, direct.rounds.len());
}

#[test]
fn typed_errors_for_bad_requests() {
    let fixture = Fixture::fig1();
    let service = fixture.service();

    let mut zero_budget = fixture.request(Method::Bab);
    zero_budget.budget = 0;
    assert!(matches!(
        service.solve(&zero_budget),
        Err(OipaError::InvalidBudget)
    ));

    let mut out_of_range = fixture.request(Method::Bab);
    out_of_range.promoters = Some(vec![99]);
    assert!(matches!(
        service.solve(&out_of_range),
        Err(OipaError::PromoterOutOfRange { promoter: 99, .. })
    ));

    let mut no_campaign = SolveRequest::new(Method::Bab, 2);
    no_campaign.theta = Some(1_000);
    assert!(matches!(
        service.solve(&no_campaign),
        Err(OipaError::MissingInput { .. })
    ));

    // Exceed the brute-force candidate limit on the medium instance.
    let medium = Fixture::medium();
    let mut brute_big = medium.request(Method::Brute);
    brute_big.promoters = Some((0..30).collect()); // 3 × 30 = 90 > 26
    let medium_service = medium.service();
    assert!(matches!(
        medium_service.solve(&brute_big),
        Err(OipaError::TooLarge { got: 90, .. })
    ));

    let mut bad_gap = fixture.request(Method::Bab);
    bad_gap.gap = Some(-0.5);
    assert!(matches!(
        service.solve(&bad_gap),
        Err(OipaError::InvalidConfig { .. })
    ));

    // im without a graph: a from_pool session cannot run it.
    let pool = fixture.pool();
    let pool_only = PlannerService::from_pool(pool);
    let mut im_req = SolveRequest::new(Method::Im, 2);
    im_req.promoters = Some(vec![0, 1, 2]);
    assert!(matches!(
        pool_only.solve(&im_req),
        Err(OipaError::MissingInput { .. })
    ));
}

#[test]
fn injected_pool_serves_campaignless_requests() {
    let fixture = Fixture::fig1();
    let pool = fixture.pool();
    let theta = pool.theta();
    let service = PlannerService::from_pool(pool);
    let mut req = SolveRequest::new(Method::Bab, 2);
    req.promoters = Some(fixture.promoters.clone());
    req.seed = Some(fixture.seed);
    let response = service.solve(&req).unwrap();
    assert_eq!(response.theta, theta);
    assert!(response.pool_cache_hit, "injected pools are always cached");
    let (plan, utility, _) = fixture.direct(Method::Bab);
    assert_eq!(response.plan, plan);
    assert_eq!(response.utility.to_bits(), utility.to_bits());
}

#[test]
fn attach_graph_invalidates_sampled_pools() {
    let fixture = Fixture::fig1();
    let mut service = fixture.service();
    assert!(
        !service
            .solve(&fixture.request(Method::Bab))
            .unwrap()
            .pool_cache_hit
    );
    assert!(
        service
            .solve(&fixture.request(Method::Bab))
            .unwrap()
            .pool_cache_hit
    );
    // Re-attaching a graph (even the same one) must evict sampled pools:
    // the service cannot know the new inputs produce identical samples.
    service
        .attach_graph(fixture.graph.clone(), fixture.table.clone())
        .unwrap();
    let response = service.solve(&fixture.request(Method::Bab)).unwrap();
    assert!(
        !response.pool_cache_hit,
        "stale pool served after attach_graph"
    );
    assert_eq!(service.arena_stats().entries, 1);
}

#[test]
fn injected_pool_survives_arena_pressure() {
    let fixture = Fixture::fig1();
    let injected = fixture.pool();
    let injected_theta = injected.theta();
    // Budget of one pool: every sampled pool evicts the previous sampled
    // one, but never the pinned injected pool.
    let mut service =
        PlannerService::from_pool(injected).with_arena_capacity(fixture.pool().memory_bytes() + 64);
    service
        .attach_graph(fixture.graph.clone(), fixture.table.clone())
        .unwrap();
    for s in 0..3u64 {
        let mut req = fixture.request(Method::Greedy);
        req.seed = Some(200 + s);
        service.solve(&req).unwrap();
    }
    let mut campaignless = SolveRequest::new(Method::Bab, 2);
    campaignless.promoters = Some(fixture.promoters.clone());
    let response = service.solve(&campaignless).unwrap();
    assert_eq!(response.theta, injected_theta);
    assert!(
        response.pool_cache_hit,
        "pinned pool was evicted by pressure"
    );
}

#[test]
fn im_flat_pool_is_cached_across_requests() {
    let fixture = Fixture::fig1();
    let service = fixture.service();
    let first = service.solve(&fixture.request(Method::Im)).unwrap();
    let start = std::time::Instant::now();
    let second = service.solve(&fixture.request(Method::Im)).unwrap();
    let warm = start.elapsed();
    assert_eq!(first.plan, second.plan);
    assert_eq!(first.utility.to_bits(), second.utility.to_bits());
    assert!(second.pool_cache_hit);
    // Warm im requests skip both the MRR pool and the collapsed pool; on
    // this fixture that makes them far faster than the cold one. The
    // parity test already pins the answer; here we only require reuse to
    // not change it and the request to stay sub-cold.
    assert!(warm.as_secs_f64() < first.seconds, "flat pool not reused");
}

#[test]
fn default_campaign_does_not_reroute_injected_pool_requests() {
    let fixture = Fixture::fig1();
    let mut service = PlannerService::from_pool(fixture.pool());
    service.set_default_campaign(fixture.campaign.clone());
    // A campaign-less request must keep using the injected pool…
    let mut req = SolveRequest::new(Method::Bab, 2);
    req.promoters = Some(fixture.promoters.clone());
    req.seed = Some(fixture.seed);
    let response = service.solve(&req).unwrap();
    assert!(
        response.pool_cache_hit,
        "rerouted away from the injected pool"
    );
    assert_eq!(response.theta, fixture.theta);
    // …and θ = 0 is rejected up front on this path too (im would
    // otherwise build an empty collapsed pool).
    let mut zero = req.clone();
    zero.method = Method::Im;
    zero.theta = Some(0);
    assert!(matches!(
        service.solve(&zero),
        Err(OipaError::InvalidConfig { .. })
    ));
}

#[test]
fn mismatched_campaign_topics_are_typed_errors_everywhere() {
    use oipa_service::SimulateRequest;
    // A 5-topic campaign against fig1's 2-topic table must yield a typed
    // Mismatch on every path — fixed-θ, auto-θ, simulate, and the raw
    // sampler — never a panic.
    let fixture = Fixture::fig1();
    let mut rng = StdRng::seed_from_u64(3);
    let wide = Campaign::sample_one_hot(&mut rng, 5, 2);
    let service = fixture.service();

    let mut fixed = fixture.request(Method::Bab);
    fixed.campaign = Some(wide.clone());
    assert!(matches!(
        service.solve(&fixed),
        Err(OipaError::Mismatch { .. })
    ));

    let mut auto = fixture.request(Method::Bab);
    auto.campaign = Some(wide.clone());
    auto.theta = None;
    auto.auto_theta = Some(AutoThetaRequest {
        initial_theta: Some(1_000),
        max_theta: Some(2_000),
        rel_tol: None,
    });
    assert!(matches!(
        service.solve(&auto),
        Err(OipaError::Mismatch { .. })
    ));

    let sim = SimulateRequest {
        plan: oipa_core::AssignmentPlan::empty(2),
        campaign: wide.clone(),
        ratio: None,
        alpha: None,
        beta: None,
        runs: Some(10),
        seed: None,
    };
    assert!(matches!(
        service.simulate(&sim),
        Err(OipaError::Mismatch { .. })
    ));

    assert!(matches!(
        MrrPool::try_generate(&fixture.graph, &fixture.table, &wide, 100, 1),
        Err(oipa_sampler::PoolBuildError::TableMismatch(_))
    ));
}

/// The PR-5 auto-θ bugfix: a malformed `auto_theta` policy must come
/// back as a typed `InvalidConfig` at the service boundary — never a
/// panic (or a silent accept) deep in the sampler. All three knobs are
/// validated against `AutoThetaConfig::validate`'s documented domain
/// (a non-trivial `initial_theta`, `max_theta ≥ initial_theta`,
/// `rel_tol` finite and positive) before any graph or sampler work.
#[test]
fn auto_theta_policy_is_validated_up_front() {
    let fixture = Fixture::fig1();
    let service = fixture.service();
    let auto_req = |initial, max, tol| {
        let mut req = fixture.request(Method::Bab);
        req.theta = None;
        req.auto_theta = Some(AutoThetaRequest {
            initial_theta: initial,
            max_theta: max,
            rel_tol: tol,
        });
        req
    };

    // {"auto_theta":{"initial_theta":0}} — the wire shape from the issue.
    let from_wire: SolveRequest = serde_json::from_str(
        r#"{"method":"bab","budget":2,"ell":1,"auto_theta":{"initial_theta":0}}"#,
    )
    .unwrap();
    assert!(matches!(
        service.solve(&from_wire),
        Err(OipaError::InvalidConfig { .. })
    ));

    for (initial, max, tol) in [
        (Some(0), None, None),             // θ start of zero
        (Some(2_000), Some(1_000), None),  // ceiling below the start
        (Some(2_000), Some(0), None),      // zero ceiling
        (None, None, Some(f64::INFINITY)), // non-finite tolerance
        (None, None, Some(f64::NAN)),      // NaN tolerance
        (None, None, Some(0.0)),           // zero tolerance
        (None, None, Some(-0.5)),          // negative tolerance
    ] {
        let err = service
            .solve(&auto_req(initial, max, tol))
            .expect_err("malformed auto-θ policy accepted");
        assert!(
            matches!(err, OipaError::InvalidConfig { .. }),
            "({initial:?}, {max:?}, {tol:?}) must be a typed config error, got {err}"
        );
    }

    // The boundary cases stay solvable: max == initial is a single round.
    let ok = service
        .solve(&auto_req(Some(1_000), Some(1_000), Some(0.5)))
        .expect("a tight-but-valid policy must solve");
    assert!(ok.auto_theta.is_some());
}
