//! Concurrency suite for the `&self` `PlannerService`: M threads × K
//! requests over shared pool keys must produce bitwise-identical answers
//! to a sequential run, sample each missed key exactly once, and leave
//! the pool store with internally consistent stats.

use oipa_sampler::testkit::small_random_instance;
use oipa_service::{Method, PlannerService, SolveRequest, SolveResponse};
use oipa_topics::Campaign;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Barrier};

fn instance() -> (oipa_graph::DiGraph, oipa_topics::EdgeTopicProbs, Campaign) {
    let mut rng = StdRng::seed_from_u64(31);
    small_random_instance(&mut rng, 70, 500, 4, 2)
}

fn service() -> PlannerService {
    let (graph, table, _) = instance();
    PlannerService::new(graph, table).unwrap()
}

fn request(campaign: &Campaign, method: Method, budget: usize, seed: u64) -> SolveRequest {
    let mut req = SolveRequest::new(method, budget);
    req.campaign = Some(campaign.clone());
    req.theta = Some(3_000);
    req.seed = Some(seed);
    req.promoter_fraction = Some(0.3);
    req.max_nodes = Some(20);
    req
}

/// The answer-bearing part of a response (timing excluded — wall-clock
/// can never be bitwise-reproducible; cache-hit flags excluded — *which*
/// request pays for sampling is scheduling-dependent, the answers are
/// not).
fn answer(r: &SolveResponse) -> (String, u64, Option<u64>, usize) {
    (
        serde_json::to_string(&r.plan).unwrap(),
        r.utility.to_bits(),
        r.upper_bound.map(f64::to_bits),
        r.theta,
    )
}

/// The tentpole acceptance gate: M threads × K requests over shared keys
/// answer bitwise-identically to the sequential run, at every thread
/// count.
#[test]
fn threaded_answers_match_sequential_bitwise() {
    let (_, _, campaign) = instance();
    // 6 request shapes over 2 distinct pool keys (seeds 5 and 6).
    let requests: Vec<SolveRequest> = [
        (Method::BabP, 3, 5),
        (Method::Greedy, 3, 5),
        (Method::BabP, 2, 5),
        (Method::Greedy, 4, 6),
        (Method::BabP, 3, 6),
        (Method::Tim, 3, 6),
    ]
    .into_iter()
    .map(|(m, k, s)| request(&campaign, m, k, s))
    .collect();

    // Sequential reference on a fresh session.
    let reference: Vec<_> = {
        let service = service();
        requests
            .iter()
            .map(|r| answer(&service.solve(r).unwrap()))
            .collect()
    };

    for threads in [2usize, 4] {
        let shared = Arc::new(service());
        let barrier = Arc::new(Barrier::new(threads));
        let answers: Vec<Vec<_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let shared = Arc::clone(&shared);
                    let barrier = Arc::clone(&barrier);
                    let requests = &requests;
                    scope.spawn(move || {
                        barrier.wait();
                        // Each thread walks the request list from its own
                        // offset so pool misses collide across threads.
                        (0..requests.len())
                            .map(|i| {
                                let idx = (i + t) % requests.len();
                                (idx, answer(&shared.solve(&requests[idx]).unwrap()))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let mut per_thread = vec![None; requests.len()];
                    for (idx, ans) in h.join().expect("request thread panicked") {
                        per_thread[idx] = Some(ans);
                    }
                    per_thread.into_iter().map(Option::unwrap).collect()
                })
                .collect()
        });
        for (t, thread_answers) in answers.iter().enumerate() {
            for (i, ans) in thread_answers.iter().enumerate() {
                assert_eq!(
                    ans, &reference[i],
                    "thread {t} of {threads}: request {i} diverged from the sequential run"
                );
            }
        }
        let stats = shared.arena_stats();
        assert_eq!(stats.lookups, stats.hits + stats.misses);
        assert_eq!(stats.entries, 2, "two pool keys ⇒ two arena entries");
    }
}

/// The once-sampling gate: N concurrent misses on one `PoolKey` sample
/// exactly once — one request reports a cache miss, every other request
/// is served the sampled pool.
#[test]
fn concurrent_misses_on_one_key_sample_exactly_once() {
    const THREADS: usize = 8;
    let (_, _, campaign) = instance();
    let shared = Arc::new(service());
    let req = request(&campaign, Method::Greedy, 3, 17);
    let barrier = Arc::new(Barrier::new(THREADS));

    let responses: Vec<SolveResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let barrier = Arc::clone(&barrier);
                let req = req.clone();
                scope.spawn(move || {
                    barrier.wait();
                    shared.solve(&req).unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("request thread panicked"))
            .collect()
    });

    let misses = responses.iter().filter(|r| !r.pool_cache_hit).count();
    assert_eq!(
        misses, 1,
        "exactly one of {THREADS} concurrent requests must pay for sampling"
    );
    let first = answer_key(&responses[0]);
    for r in &responses[1..] {
        assert_eq!(answer_key(r), first, "concurrent answers diverged");
    }
    assert_eq!(shared.arena_stats().entries, 1, "one key ⇒ one pool");
}

fn answer_key(r: &SolveResponse) -> (String, u64) {
    (serde_json::to_string(&r.plan).unwrap(), r.utility.to_bits())
}

/// Concurrent `im` requests share one collapsed flat pool (the cache is
/// built once and reused), and their answers agree with sequential.
#[test]
fn concurrent_im_requests_share_the_flat_pool() {
    const THREADS: usize = 4;
    let (_, _, campaign) = instance();
    let req = {
        let mut r = request(&campaign, Method::Im, 3, 9);
        r.theta = Some(2_000);
        r
    };
    let reference = answer_key(&service().solve(&req).unwrap());

    let shared = Arc::new(service());
    let barrier = Arc::new(Barrier::new(THREADS));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let shared = Arc::clone(&shared);
            let barrier = Arc::clone(&barrier);
            let req = req.clone();
            let reference = reference.clone();
            scope.spawn(move || {
                barrier.wait();
                let response = shared.solve(&req).unwrap();
                assert_eq!(answer_key(&response), reference, "im answer diverged");
            });
        }
    });
}

/// A session behind an `Arc` must be shareable across threads at the
/// type level — the compile-time face of the `&self` refactor.
#[test]
fn service_solves_through_a_plain_shared_reference() {
    let (_, _, campaign) = instance();
    let shared: Arc<PlannerService> = Arc::new(service());
    let req = request(&campaign, Method::Greedy, 2, 1);
    // No &mut anywhere: two solves through the same shared reference.
    let a = shared.solve(&req).unwrap();
    let b = shared.solve(&req).unwrap();
    assert!(!a.pool_cache_hit && b.pool_cache_hit);
    assert_eq!(answer_key(&a), answer_key(&b));
}

/// The once-sampling hand-off must not depend on the arena accepting the
/// pool: with a budget smaller than any pool (every pool "oversized",
/// never cached), N concurrent misses on one key must still sample
/// exactly once — waiters take the pool from the sampling slot itself.
#[test]
fn oversized_pools_still_sample_exactly_once() {
    const THREADS: usize = 6;
    let (graph, table, campaign) = instance();
    let shared = Arc::new(
        PlannerService::new(graph, table)
            .unwrap()
            .with_arena_capacity(64), // smaller than any real pool
    );
    let req = request(&campaign, Method::Greedy, 3, 23);
    let barrier = Arc::new(Barrier::new(THREADS));

    let responses: Vec<SolveResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let barrier = Arc::clone(&barrier);
                let req = req.clone();
                scope.spawn(move || {
                    barrier.wait();
                    shared.solve(&req).unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("request thread panicked"))
            .collect()
    });

    let misses = responses.iter().filter(|r| !r.pool_cache_hit).count();
    assert_eq!(
        misses, 1,
        "oversized pool sampled more than once across {THREADS} racing requests"
    );
    let first = answer_key(&responses[0]);
    for r in &responses[1..] {
        assert_eq!(answer_key(r), first, "oversized-pool answers diverged");
    }
    assert_eq!(
        shared.arena_stats().entries,
        0,
        "an oversized pool must still never be cached"
    );
}
