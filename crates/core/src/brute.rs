//! Exact enumeration for tiny instances — the validation oracle.
//!
//! OIPA is NP-hard (§IV), so no polynomial exact solver exists; but on
//! instances with a handful of candidates, enumerating all plans of size
//! ≤ k against the MRR estimator gives the true optimum of the *estimated*
//! objective. Tests use it to certify the branch-and-bound's (1 − 1/e)
//! guarantee (Theorem 2) empirically.
//!
//! The enumeration walks the subset tree with [`TauState`]'s trail-based
//! push/pop: each tree edge commits one candidate via [`TauState::add`]
//! and rewinds it with [`TauState::pop_to`] on backtrack — the same
//! incremental machinery the branch-and-bound engine uses. Per node this
//! costs one inverted-index row for the state update plus an
//! O(covered samples) σ fold, instead of re-walking every chosen row as
//! the previous evaluate-from-scratch version did.

use crate::estimator::AuEstimator;
use crate::plan::AssignmentPlan;
use crate::tangent::TangentTable;
use crate::tau::TauState;
use oipa_graph::NodeId;

/// Exhaustively maximizes the MRR-estimated AU over all assignment plans
/// choosing at most `k` of the `ell × promoters` candidate assignments.
///
/// Complexity `C(ℓ·|V^p|, k)` enumeration nodes — intended for
/// ℓ·|V^p| ≲ 20 — at O(index row + covered samples) cost per node.
pub fn brute_force_best(
    estimator: &mut AuEstimator<'_>,
    promoters: &[NodeId],
    ell: usize,
    k: usize,
) -> (AssignmentPlan, f64) {
    let candidates: Vec<(usize, NodeId)> = (0..ell)
        .flat_map(|j| promoters.iter().map(move |&v| (j, v)))
        .collect();
    assert!(
        candidates.len() <= 26,
        "brute force limited to 26 candidates, got {}",
        candidates.len()
    );
    let model = estimator.model();
    let table = TangentTable::new(model, ell);
    let mut state = TauState::new(estimator.pool(), &table, model);
    let mut best_plan = AssignmentPlan::empty(ell);
    let mut best_sigma = 0.0f64;
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    // Depth-first enumeration of all subsets of size ≤ k via push/pop.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        state: &mut TauState<'_>,
        candidates: &[(usize, NodeId)],
        ell: usize,
        k: usize,
        start: usize,
        chosen: &mut Vec<usize>,
        best_plan: &mut AssignmentPlan,
        best_sigma: &mut f64,
    ) {
        if !chosen.is_empty() {
            let sigma = state.sigma_total() * state.scale();
            if sigma > *best_sigma {
                *best_sigma = sigma;
                let mut plan = AssignmentPlan::empty(ell);
                for &idx in chosen.iter() {
                    let (j, v) = candidates[idx];
                    plan.insert(j, v);
                }
                *best_plan = plan;
            }
        }
        if chosen.len() == k {
            return;
        }
        for idx in start..candidates.len() {
            let (j, v) = candidates[idx];
            let mark = state.mark();
            state.add(j, v);
            chosen.push(idx);
            recurse(
                state,
                candidates,
                ell,
                k,
                idx + 1,
                chosen,
                best_plan,
                best_sigma,
            );
            chosen.pop();
            state.pop_to(mark);
        }
    }
    recurse(
        &mut state,
        &candidates,
        ell,
        k,
        0,
        &mut chosen,
        &mut best_plan,
        &mut best_sigma,
    );
    if best_plan.is_empty() {
        return (best_plan, 0.0);
    }
    // Report the winner under the estimator itself, as before the
    // incremental migration (the two σ implementations agree to ~1e-12).
    let sigma = estimator.evaluate(&best_plan);
    (best_plan, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bab::{BabConfig, BranchAndBound};
    use crate::OipaInstance;
    use oipa_sampler::testkit::fig1;
    use oipa_sampler::MrrPool;
    use oipa_topics::LogisticAdoption;

    #[test]
    fn brute_force_confirms_fig1_optimum() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 60_000, 83);
        let model = LogisticAdoption::example();
        let mut est = AuEstimator::new(&pool, model);
        let (plan, sigma) = brute_force_best(&mut est, &[0, 1, 2, 3, 4], 2, 2);
        assert_eq!(plan.set(0), &[0]);
        assert_eq!(plan.set(1), &[4]);
        assert!((sigma - 1.045).abs() < 0.05);
    }

    /// Theorem 2's (1 − 1/e) guarantee, certified against enumeration on
    /// the running example and a small random instance.
    #[test]
    fn bab_within_guarantee_of_enumeration() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 40_000, 89);
        let model = LogisticAdoption::example();
        for k in 1..=3 {
            let mut est = AuEstimator::new(&pool, model);
            let (_, opt) = brute_force_best(&mut est, &[0, 1, 2, 3, 4], 2, k);
            let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], k).unwrap();
            let sol = BranchAndBound::new(
                &instance,
                BabConfig {
                    gap: 0.0,
                    ..BabConfig::bab()
                },
            )
            .solve();
            let ratio = 1.0 - std::f64::consts::E.recip();
            assert!(
                sol.utility + 1e-6 >= ratio * opt,
                "k={k}: BAB {} below (1−1/e)·OPT {}",
                sol.utility,
                ratio * opt
            );
        }
    }

    #[test]
    fn bab_within_guarantee_on_random_instance() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let (g, table, campaign) =
            oipa_sampler::testkit::small_random_instance(&mut rng, 24, 110, 3, 2);
        let model = LogisticAdoption::new(2.0, 1.0);
        let pool = MrrPool::generate(&g, &table, &campaign, 30_000, 7);
        let promoters: Vec<u32> = (0..8).collect();
        let mut est = AuEstimator::new(&pool, model);
        let (_, opt) = brute_force_best(&mut est, &promoters, 2, 3);
        let instance = OipaInstance::new(&pool, model, promoters.clone(), 3).unwrap();
        for config in [BabConfig::bab(), BabConfig::bab_p(0.5)] {
            let sol = BranchAndBound::new(&instance, BabConfig { gap: 0.0, ..config }).solve();
            let ratio = match config.method {
                crate::BoundMethod::Progressive { eps } => 1.0 - std::f64::consts::E.recip() - eps,
                _ => 1.0 - std::f64::consts::E.recip(),
            };
            assert!(
                sol.utility + 1e-6 >= ratio * opt,
                "{:?}: {} below {}",
                config.method,
                sol.utility,
                ratio * opt
            );
        }
    }

    #[test]
    fn empty_budget_corner() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 5_000, 97);
        let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
        let (plan, sigma) = brute_force_best(&mut est, &[0], 2, 1);
        assert_eq!(plan.size(), 1);
        assert!(sigma > 0.0);
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn rejects_oversized_instances() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 100, 1);
        let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
        let promoters: Vec<u32> = (0..50).map(|v| v % 5).collect();
        let _ = brute_force_best(&mut est, &promoters, 2, 2);
    }
}
