//! Automatic sample-size selection.
//!
//! The paper fixes θ = 10⁶ ("In practice, a large θ ensures the estimated
//! AU score for any S̄ is accurate with a high probability", §V-A) —
//! fine for a fixed testbed, wasteful or insufficient elsewhere. This
//! module chooses θ adaptively, IMM-style: solve at a small θ, then
//! *cross-validate* the winning plan on a freshly sampled, larger pool.
//! If the fresh estimate confirms the old one within a relative tolerance
//! the solution is accepted; otherwise θ doubles and the search repeats.
//! Cross-validation on fresh samples guards against the optimizer
//! overfitting the sampling noise of its own pool (the winner's-curse bias
//! that same-pool estimates carry).

use crate::bab::{BabConfig, BranchAndBound};
use crate::estimator::AuEstimator;
use crate::{OipaError, OipaInstance, Solution};
use oipa_graph::{DiGraph, NodeId};
use oipa_sampler::MrrPool;
use oipa_topics::{Campaign, EdgeTopicProbs, LogisticAdoption};

/// Configuration for [`solve_auto_theta`].
#[derive(Debug, Clone, Copy)]
pub struct AutoThetaConfig {
    /// Starting θ.
    pub initial_theta: usize,
    /// Hard θ ceiling (the paper's 10⁶ is a natural choice).
    pub max_theta: usize,
    /// Accept when `|σ_fresh − σ_solve| ≤ rel_tol · σ_fresh`.
    pub rel_tol: f64,
    /// Base seed; each round derives fresh, disjoint streams.
    pub seed: u64,
    /// Worker threads for pool generation.
    pub threads: usize,
    /// Solver configuration per round.
    pub bab: BabConfig,
}

impl Default for AutoThetaConfig {
    fn default() -> Self {
        AutoThetaConfig {
            initial_theta: 10_000,
            max_theta: 1_000_000,
            rel_tol: 0.02,
            seed: 42,
            // Match the machine instead of hard-coding a count: a fixed 4
            // oversubscribes small containers (this repo's CI runs on one
            // core) and under-uses large hosts.
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            bab: BabConfig::bab_p(0.5),
        }
    }
}

impl AutoThetaConfig {
    /// Checks the configuration's documented domain.
    pub fn validate(&self) -> Result<(), OipaError> {
        if self.initial_theta < 100 {
            return Err(OipaError::config(format!(
                "auto-θ needs a non-trivial starting θ (≥ 100), got {}",
                self.initial_theta
            )));
        }
        if self.max_theta < self.initial_theta {
            return Err(OipaError::config(format!(
                "auto-θ ceiling {} is below the starting θ {}",
                self.max_theta, self.initial_theta
            )));
        }
        if !(self.rel_tol.is_finite() && self.rel_tol > 0.0) {
            return Err(OipaError::config(format!(
                "auto-θ tolerance must be finite and positive, got {}",
                self.rel_tol
            )));
        }
        self.bab.validate()
    }
}

/// One convergence-trajectory entry.
#[derive(Debug, Clone, Copy)]
pub struct ThetaRound {
    /// θ used for solving this round.
    pub theta: usize,
    /// Same-pool estimate of the round's plan.
    pub solve_estimate: f64,
    /// Fresh-pool (2θ) estimate of the same plan.
    pub fresh_estimate: f64,
}

/// Result of the adaptive search.
#[derive(Debug)]
pub struct AutoThetaResult {
    /// The accepted solution (utility = fresh-pool estimate).
    pub solution: Solution,
    /// θ of the accepted round.
    pub theta: usize,
    /// Whether the tolerance was met (false ⇒ stopped at `max_theta`).
    pub converged: bool,
    /// Per-round history.
    pub rounds: Vec<ThetaRound>,
}

/// Runs the adaptive-θ loop. See module docs.
#[allow(clippy::too_many_arguments)]
pub fn solve_auto_theta(
    graph: &DiGraph,
    table: &EdgeTopicProbs,
    campaign: &Campaign,
    model: LogisticAdoption,
    promoters: &[NodeId],
    k: usize,
    config: AutoThetaConfig,
) -> Result<AutoThetaResult, OipaError> {
    config.validate()?;
    let mut theta = config.initial_theta;
    let mut rounds = Vec::new();
    let mut round_idx = 0u64;
    loop {
        let solve_pool = MrrPool::generate_parallel(
            graph,
            table,
            campaign,
            theta,
            config.seed ^ (round_idx << 1),
            config.threads,
        );
        let instance = OipaInstance::new(&solve_pool, model, promoters.to_vec(), k)?;
        let solution = BranchAndBound::try_new(&instance, config.bab)?.solve();

        // Fresh, larger validation pool with a disjoint seed stream.
        let fresh_pool = MrrPool::generate_parallel(
            graph,
            table,
            campaign,
            (theta * 2).min(config.max_theta.max(theta)),
            config.seed ^ (round_idx << 1) ^ 0xf00d,
            config.threads,
        );
        let mut fresh_est = AuEstimator::new(&fresh_pool, model);
        let fresh = fresh_est.evaluate(&solution.plan);
        rounds.push(ThetaRound {
            theta,
            solve_estimate: solution.utility,
            fresh_estimate: fresh,
        });

        let agreed = (fresh - solution.utility).abs() <= config.rel_tol * fresh.abs().max(1e-12);
        let at_ceiling = theta >= config.max_theta;
        if agreed || at_ceiling {
            let mut accepted = solution;
            accepted.utility = fresh; // report the unbiased estimate
            return Ok(AutoThetaResult {
                solution: accepted,
                theta,
                converged: agreed,
                rounds,
            });
        }
        theta = (theta * 2).min(config.max_theta);
        round_idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::testkit::fig1;

    #[test]
    fn converges_immediately_on_deterministic_graph() {
        let (g, table, campaign) = fig1();
        let result = solve_auto_theta(
            &g,
            &table,
            &campaign,
            LogisticAdoption::example(),
            &[0, 1, 2, 3, 4],
            2,
            AutoThetaConfig {
                initial_theta: 2_000,
                max_theta: 50_000,
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.converged);
        assert_eq!(result.theta, 2_000, "Fig. 1 needs no refinement");
        assert_eq!(result.rounds.len(), 1);
        assert_eq!(result.solution.plan.set(0), &[0]);
        assert_eq!(result.solution.plan.set(1), &[4]);
        assert!((result.solution.utility - 1.045).abs() < 0.05);
    }

    #[test]
    fn escalates_theta_under_tight_tolerance() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        let (g, table, campaign) =
            oipa_sampler::testkit::small_random_instance(&mut rng, 120, 900, 4, 3);
        let result = solve_auto_theta(
            &g,
            &table,
            &campaign,
            LogisticAdoption::new(2.0, 1.0),
            &(0..30u32).collect::<Vec<_>>(),
            5,
            AutoThetaConfig {
                initial_theta: 200,
                max_theta: 40_000,
                rel_tol: 0.0005, // very tight: tiny pools will disagree
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Either it needed more than one round or the ceiling stopped it;
        // both demonstrate the escalation path.
        assert!(result.rounds.len() > 1 || !result.converged);
        // θ trajectory doubles (clamped at the ceiling).
        for w in result.rounds.windows(2) {
            assert_eq!(w[1].theta, (w[0].theta * 2).min(40_000));
        }
        assert!(result.solution.utility > 0.0);
    }

    #[test]
    fn ceiling_respected() {
        let (g, table, campaign) = fig1();
        let result = solve_auto_theta(
            &g,
            &table,
            &campaign,
            LogisticAdoption::example(),
            &[0, 1, 2, 3, 4],
            2,
            AutoThetaConfig {
                initial_theta: 500,
                max_theta: 1_000,
                rel_tol: 1e-9, // unreachable tolerance
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.theta <= 1_000);
        assert!(!result.rounds.is_empty());
    }
}
