//! MRR-based adoption-utility estimation (Eqn. 6, Lemma 2).

use crate::plan::AssignmentPlan;
use oipa_sampler::MrrPool;
use oipa_topics::LogisticAdoption;

/// Evaluates the AU estimator
/// `σ̂(S̄) = n/θ · Σ_i sigmoid(β·c_i − α)` with `c_i` the number of pieces
/// `j` whose seed set intersects `R_i^j` (and the zero-coverage branch of
/// Eqn. 1 mapping `c_i = 0` to probability 0).
///
/// The estimator precomputes the per-coverage adoption probabilities
/// (`ℓ + 1` values) so each evaluation is pure integer work plus one table
/// lookup per sample.
pub struct AuEstimator<'a> {
    pool: &'a MrrPool,
    /// The adoption model the σ table was built from.
    model: LogisticAdoption,
    /// `sigma_by_coverage[c]` = adoption probability at coverage `c`.
    sigma_by_coverage: Vec<f64>,
    /// Scratch coverage counters, one per sample (reused across calls).
    coverage: Vec<u8>,
    /// Samples touched by the last evaluation (for O(touched) reset).
    touched: Vec<u32>,
    /// Struct-owned per-piece dedup scratch: `seen[i] == seen_epoch` marks
    /// sample `i` as already counted for the current piece. Epoch-stamped
    /// so "clearing" between pieces (and calls) is O(1) instead of O(θ),
    /// and multi-seed evaluations never allocate.
    seen: Vec<u32>,
    /// Current epoch for `seen` (0 = no sample stamped yet).
    seen_epoch: u32,
}

impl<'a> AuEstimator<'a> {
    /// Builds an estimator for a pool and adoption model.
    pub fn new(pool: &'a MrrPool, model: LogisticAdoption) -> Self {
        let sigma_by_coverage = (0..=pool.ell()).map(|c| model.adoption_prob(c)).collect();
        AuEstimator {
            pool,
            model,
            sigma_by_coverage,
            coverage: vec![0; pool.theta()],
            touched: Vec::new(),
            seen: vec![0; pool.theta()],
            seen_epoch: 0,
        }
    }

    /// The pool this estimator reads.
    #[inline]
    pub fn pool(&self) -> &'a MrrPool {
        self.pool
    }

    /// The adoption model this estimator evaluates under.
    #[inline]
    pub fn model(&self) -> LogisticAdoption {
        self.model
    }

    /// Advances the `seen` epoch, handling the (theoretical) wrap-around.
    #[inline]
    fn next_epoch(&mut self) -> u32 {
        self.seen_epoch = self.seen_epoch.wrapping_add(1);
        if self.seen_epoch == 0 {
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.seen_epoch = 1;
        }
        self.seen_epoch
    }

    /// Adoption probability at a given coverage count.
    #[inline]
    pub fn sigma_at(&self, coverage: usize) -> f64 {
        self.sigma_by_coverage[coverage]
    }

    /// Estimates σ(S̄) in user units.
    ///
    /// Coverage per (sample, piece) is binary: a piece covered by several
    /// of its seeds counts once. Seeds of a piece are folded through a
    /// per-piece `seen` pass, so each sample's coverage count is exact.
    pub fn evaluate(&mut self, plan: &AssignmentPlan) -> f64 {
        assert_eq!(
            plan.ell(),
            self.pool.ell(),
            "plan piece count must match pool"
        );
        let theta = self.pool.theta();
        if theta == 0 {
            return 0.0;
        }
        for &i in &self.touched {
            self.coverage[i as usize] = 0;
        }
        self.touched.clear();
        // Per piece: collect distinct samples covered by S_j, bump counts.
        for j in 0..plan.ell() {
            let seeds = plan.set(j);
            if seeds.is_empty() {
                continue;
            }
            if seeds.len() == 1 {
                // Fast path: a single seed's sample list is already distinct.
                for &i in self.pool.samples_containing(j, seeds[0]) {
                    if self.coverage[i as usize] == 0 {
                        self.touched.push(i);
                    }
                    self.coverage[i as usize] += 1;
                }
            } else {
                let epoch = self.next_epoch();
                for &v in seeds {
                    for &i in self.pool.samples_containing(j, v) {
                        if self.seen[i as usize] != epoch {
                            self.seen[i as usize] = epoch;
                            if self.coverage[i as usize] == 0 {
                                self.touched.push(i);
                            }
                            self.coverage[i as usize] += 1;
                        }
                    }
                }
            }
        }
        let mut total = 0.0f64;
        for &i in &self.touched {
            total += self.sigma_by_coverage[self.coverage[i as usize] as usize];
        }
        total * self.pool.scale()
    }

    /// Estimates σ(S̄) together with a normal-approximation confidence
    /// half-width at `z` standard errors (z = 1.96 ⇒ 95%).
    ///
    /// The estimator is a mean of θ i.i.d. variables `X_i ∈ [0, 1]`
    /// (Lemma 2), so `σ̂ ± z·n·s/√θ` with `s` the sample standard
    /// deviation is the standard interval. Useful for choosing θ and for
    /// honest error bars in reports.
    pub fn evaluate_with_ci(&mut self, plan: &AssignmentPlan, z: f64) -> (f64, f64) {
        assert!(z > 0.0);
        let utility = self.evaluate(plan);
        let theta = self.pool.theta();
        if theta < 2 {
            return (utility, f64::INFINITY);
        }
        // Per-sample values are 0 except for touched samples.
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for &i in &self.touched {
            let x = self.sigma_by_coverage[self.coverage[i as usize] as usize];
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / theta as f64;
        let var = (sumsq / theta as f64 - mean * mean).max(0.0);
        let half = z * (var / theta as f64).sqrt() * self.pool.node_count() as f64;
        (utility, half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::testkit::fig1;
    use oipa_sampler::{simulate, MrrPool};
    use oipa_topics::LogisticAdoption;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example_pool(theta: usize) -> MrrPool {
        let (g, table, campaign) = fig1();
        MrrPool::generate(&g, &table, &campaign, theta, 42)
    }

    /// Example 1 / Example 3 of the paper: σ({{a},{e}}) = 1.05 exactly on
    /// the deterministic Fig. 1 graph (MRR noise only from root sampling).
    #[test]
    fn example1_utility() {
        let pool = example_pool(200_000);
        let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
        let plan = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        let sigma = est.evaluate(&plan);
        assert!((sigma - 1.045).abs() < 0.02, "σ̂ = {sigma}");
    }

    /// Example 2: the non-submodularity witness. δ_{S̄y}(S̄) > δ_{S̄x}(S̄)
    /// despite S̄x ⊆ S̄y — exactly the counterexample of §IV-A.
    #[test]
    fn example2_non_submodular() {
        let pool = example_pool(200_000);
        let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
        let x = AssignmentPlan::empty(2); // S̄x = {∅, ∅}
        let y = AssignmentPlan::from_sets(vec![vec![0], vec![]]); // S̄y = {{a}, ∅}
        let s = AssignmentPlan::from_sets(vec![vec![], vec![4]]); // S̄ = {∅, {e}}
        assert!(x.contained_in(&y));
        let delta_y = est.evaluate(&y.union(&s)) - est.evaluate(&y);
        let delta_x = est.evaluate(&x.union(&s)) - est.evaluate(&x);
        // Paper: 0.57 vs 0.48.
        assert!(
            delta_y > delta_x + 0.05,
            "expected super-modular jump: δy {delta_y} vs δx {delta_x}"
        );
        assert!((delta_y - 0.57).abs() < 0.03, "δy = {delta_y}");
        assert!((delta_x - 0.48).abs() < 0.03, "δx = {delta_x}");
    }

    #[test]
    fn monotone_under_containment() {
        let pool = example_pool(50_000);
        let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
        let small = AssignmentPlan::from_sets(vec![vec![0], vec![]]);
        let big = AssignmentPlan::from_sets(vec![vec![0, 1], vec![4]]);
        assert!(small.contained_in(&big));
        assert!(est.evaluate(&small) <= est.evaluate(&big) + 1e-9);
    }

    #[test]
    fn empty_plan_zero() {
        let pool = example_pool(10_000);
        let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
        assert_eq!(est.evaluate(&AssignmentPlan::empty(2)), 0.0);
    }

    #[test]
    fn duplicate_seeds_do_not_double_count() {
        let pool = example_pool(50_000);
        let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
        let single = AssignmentPlan::from_sets(vec![vec![0], vec![]]);
        // b is downstream of a under t1; adding it must not double-count
        // coverage on samples already hit by a.
        let both = AssignmentPlan::from_sets(vec![vec![0, 1], vec![]]);
        let s1 = est.evaluate(&single);
        let s2 = est.evaluate(&both);
        assert!(s2 >= s1 - 1e-9);
        // Coverage per (sample, piece) is binary, so even with two seeds
        // covering the same sets the utility cannot exceed the all-covered
        // level for piece 0: n · sigmoid(1·1 − 3) scaled by hit fraction ≤ n.
        assert!(s2 <= 5.0);
    }

    #[test]
    fn estimator_matches_forward_simulation_on_random_instance() {
        let mut rng = StdRng::seed_from_u64(8);
        let (g, table, campaign) =
            oipa_sampler::testkit::small_random_instance(&mut rng, 60, 420, 4, 3);
        let model = LogisticAdoption::new(2.0, 1.0);
        let pool = MrrPool::generate(&g, &table, &campaign, 120_000, 5);
        let mut est = AuEstimator::new(&pool, model);
        let plan = AssignmentPlan::from_sets(vec![vec![0, 7], vec![3], vec![11, 19]]);
        let est_sigma = est.evaluate(&plan);
        let truth = simulate::simulate_adoption(
            &mut StdRng::seed_from_u64(99),
            &g,
            &table,
            &campaign,
            &plan.to_vecs(),
            model,
            3000,
        );
        let rel = (est_sigma - truth).abs() / truth.max(0.5);
        assert!(
            rel < 0.08,
            "estimator {est_sigma} vs simulation {truth} (rel err {rel})"
        );
    }

    #[test]
    fn confidence_interval_shrinks_with_theta_and_covers_truth() {
        let (g, table, campaign) = fig1();
        let model = LogisticAdoption::example();
        let plan = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        let truth = 2.0 * model.adoption_prob(1) + 3.0 * model.adoption_prob(2);
        let mut widths = Vec::new();
        for &theta in &[2_000usize, 32_000] {
            let pool = MrrPool::generate(&g, &table, &campaign, theta, 77);
            let mut est = AuEstimator::new(&pool, model);
            let (mean, half) = est.evaluate_with_ci(&plan, 1.96);
            assert!(half.is_finite() && half > 0.0);
            assert!(
                (mean - truth).abs() <= 3.0 * half + 1e-9,
                "θ={theta}: truth {truth} outside {mean} ± {half} (3z)"
            );
            widths.push(half);
        }
        assert!(
            widths[1] < widths[0] / 2.0,
            "CI must shrink ~4x for 16x θ: {widths:?}"
        );
    }

    #[test]
    fn degenerate_pool_ci_is_infinite() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 1, 1);
        let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
        let (_, half) =
            est.evaluate_with_ci(&AssignmentPlan::from_sets(vec![vec![0], vec![]]), 2.0);
        assert!(half.is_infinite());
    }

    #[test]
    fn repeated_evaluations_are_consistent() {
        let pool = example_pool(20_000);
        let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
        let a = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        let b = AssignmentPlan::from_sets(vec![vec![1], vec![]]);
        let first_a = est.evaluate(&a);
        let _ = est.evaluate(&b);
        let second_a = est.evaluate(&a);
        assert_eq!(first_a, second_a, "scratch reuse must not leak state");
    }
}
