//! `ComputeBound` — Algorithm 2: greedy maximization of the submodular
//! upper bound τ to estimate the potential of a partial plan.
//!
//! Two implementations share one interface:
//!
//! * [`compute_bound_plain`] — the paper's pseudocode verbatim: every
//!   iteration rescans all available promoters (O(k·n) τ evaluations, the
//!   cost §V-C complains about);
//! * [`compute_bound_celf`] — the same greedy with CELF lazy evaluation
//!   (valid because τ is submodular): stale gains sit in a max-heap and
//!   are only recomputed when popped. Identical output, far fewer
//!   evaluations. This is the default inside branch-and-bound; the
//!   `ablation_lazy` bench quantifies the difference.
//!
//! [`compute_bound_celf_with`] additionally supports **cross-node gain
//! caching**: instead of re-evaluating every `(piece, promoter)` singleton
//! gain to seed the heap, a caller may seed it from a [`SeedEntry`] vector
//! captured at an ancestor search node ([`CelfSeeding::Cached`]). As long
//! as the cached values are valid *upper bounds* on the current gains
//! (singleton τ gains only shrink as coverage grows at fixed anchors, and
//! anchor refinement is covered by the certified
//! [`TangentTable::diagonal_inflation`](crate::tangent::TangentTable::diagonal_inflation)
//! factor), CELF provably commits the exact same selections: an entry is
//! only committed once its gain is re-evaluated in the current round, at
//! which point it dominates every other candidate's upper bound, so the
//! commit is the true argmax under the deterministic `(piece, node)`
//! tie-break regardless of what the seed values were.

use crate::celf::{CelfEntry, NO_SLOT, STALE_ROUND};
use crate::plan::AssignmentPlan;
use crate::tau::TauState;
use oipa_graph::hashing::FxHashSet;
use oipa_graph::NodeId;
use std::collections::BinaryHeap;

/// Output of a bound computation (Algorithm 2 line 7 / Algorithm 3 line 16).
#[derive(Debug, Clone)]
pub struct BoundResult {
    /// The completed candidate plan `S̄ ∪ S̄ᵃ`.
    pub plan: AssignmentPlan,
    /// Exact MRR estimate σ̂ of the candidate plan (sample units).
    pub sigma: f64,
    /// The upper bound τ(S̄|S̄ᵃ) (sample units).
    pub tau: f64,
    /// The first greedy selection — used by the branch-and-bound driver as
    /// its branching variable `v*` (the highest-gain available candidate,
    /// matching the power-law prioritization of §V).
    pub first_pick: Option<(usize, NodeId)>,
}

/// A cached singleton gain `(gain, piece, node)` captured during a bound
/// computation's seeding scan, reusable to seed descendant-node bounds.
#[derive(Debug, Clone, Copy)]
pub struct SeedEntry {
    /// The singleton τ gain at the capturing node's partial-plan state.
    pub gain: f64,
    /// Piece index.
    pub j: u32,
    /// Candidate promoter.
    pub v: NodeId,
}

/// How [`compute_bound_celf_with`] seeds its CELF heap.
#[derive(Debug, Clone, Copy)]
pub enum CelfSeeding<'s> {
    /// Evaluate every available candidate's singleton gain (the reference
    /// behavior, O(ℓ·|Vᵖ|) τ evaluations).
    Fresh,
    /// Seed from a gain vector cached at the current node state (for
    /// exclude-branch reuse) or one push away from it (include-branch
    /// reuse), multiplied by `inflate` (≥ 1) to keep the values valid
    /// upper bounds. With `exact` the values are *exactly* what a fresh
    /// scan would compute here, so entries enter the heap "fresh";
    /// otherwise they enter stale, forcing re-evaluation before any
    /// commit — which preserves the committed selections bit for bit.
    Cached {
        /// The cached gains (candidates absent from the slice had zero
        /// gain at the capturing state, hence zero at the current one).
        entries: &'s [SeedEntry],
        /// Certified inflation factor making the values upper bounds at
        /// the current state (1.0 when the vector is already valid here).
        inflate: f64,
        /// Whether the (un-inflated) values are exact at this state.
        exact: bool,
    },
}

/// A candidate assignment `(piece, node)` packed for exclusion sets.
#[inline]
pub(crate) fn pack(j: usize, v: NodeId) -> u64 {
    ((j as u64) << 32) | v as u64
}

/// Candidate availability: not excluded, not already in the plan.
#[inline]
pub(crate) fn available(
    plan: &AssignmentPlan,
    excluded: &FxHashSet<u64>,
    j: usize,
    v: NodeId,
) -> bool {
    !excluded.contains(&pack(j, v)) && !plan.contains(j, v)
}

/// Algorithm 2 with CELF lazy evaluation and a fresh seeding scan.
///
/// `state` must already be anchored on `partial` (via
/// [`TauState::reset_to`] or an equivalent `assign` path). Selects up to
/// `k − |partial|` assignments from `promoters × pieces` excluding
/// `excluded`, maximizing τ.
pub fn compute_bound_celf(
    state: &mut TauState<'_>,
    partial: &AssignmentPlan,
    promoters: &[NodeId],
    excluded: &FxHashSet<u64>,
    k: usize,
) -> BoundResult {
    compute_bound_celf_with(
        state,
        partial,
        promoters,
        excluded,
        k,
        CelfSeeding::Fresh,
        None,
    )
}

/// Algorithm 2 with CELF lazy evaluation, cached-seed support, and
/// optional capture of a seed vector for descendant reuse.
///
/// With [`CelfSeeding::Fresh`], `capture` receives one [`SeedEntry`] per
/// positive-gain candidate — exactly the entries the heap was seeded
/// with (exact gains at this state). With [`CelfSeeding::Cached`],
/// `capture` receives the *effective* seed values (inflated upper
/// bounds), tightened in place by every pre-commit re-evaluation — i.e.
/// the sharpest upper-bound vector known for this state when the bound
/// finishes, which is what descendant nodes re-base their cache on.
pub fn compute_bound_celf_with(
    state: &mut TauState<'_>,
    partial: &AssignmentPlan,
    promoters: &[NodeId],
    excluded: &FxHashSet<u64>,
    k: usize,
    seeding: CelfSeeding<'_>,
    mut capture: Option<&mut Vec<SeedEntry>>,
) -> BoundResult {
    let ell = state.ell();
    let remaining = k.saturating_sub(partial.size());
    let mut plan = partial.clone();
    let mut first_pick = None;
    if remaining == 0 {
        let (tau, sigma) = state.totals();
        return BoundResult {
            plan,
            sigma,
            tau,
            first_pick,
        };
    }
    let mut heap: BinaryHeap<CelfEntry> = BinaryHeap::with_capacity(ell * promoters.len());
    match seeding {
        CelfSeeding::Fresh => {
            for j in 0..ell {
                for &v in promoters {
                    if available(&plan, excluded, j, v) {
                        let gain = state.gain(j, v);
                        if gain > 0.0 {
                            if let Some(cap) = capture.as_deref_mut() {
                                cap.push(SeedEntry {
                                    gain,
                                    j: j as u32,
                                    v,
                                });
                            }
                            heap.push(CelfEntry {
                                gain,
                                j: j as u32,
                                v,
                                round: 0,
                                slot: NO_SLOT,
                            });
                        }
                    }
                }
            }
        }
        CelfSeeding::Cached {
            entries,
            inflate,
            exact,
        } => {
            debug_assert!(inflate >= 1.0, "inflation must not shrink upper bounds");
            debug_assert!(
                !exact || inflate == 1.0,
                "exact seeds cannot carry inflation"
            );
            for e in entries {
                // A zero cached upper bound stays zero at this state (and
                // every descendant), matching the Fresh path's `gain > 0`
                // filter — don't seed it, don't re-capture it.
                if e.gain > 0.0 && available(&plan, excluded, e.j as usize, e.v) {
                    let gain = if inflate == 1.0 {
                        e.gain
                    } else {
                        e.gain * inflate
                    };
                    let slot = match capture.as_deref_mut() {
                        Some(cap) => {
                            cap.push(SeedEntry {
                                gain,
                                j: e.j,
                                v: e.v,
                            });
                            (cap.len() - 1) as u32
                        }
                        None => NO_SLOT,
                    };
                    heap.push(CelfEntry {
                        gain,
                        j: e.j,
                        v: e.v,
                        // Exact seeds behave as a fresh scan's round-0
                        // entries; inflated ones must be re-evaluated
                        // before they can be committed.
                        round: if exact { 0 } else { STALE_ROUND },
                        slot,
                    });
                }
            }
        }
    }
    let mut round = 0u32;
    let mut selected = 0usize;
    while selected < remaining {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            // Fresh gain: commit.
            let (j, v) = (top.j as usize, top.v);
            state.add(j, v);
            plan.insert(j, v);
            if first_pick.is_none() {
                first_pick = Some((j, v));
            }
            selected += 1;
            round += 1;
        } else {
            // Stale: recompute and reinsert (submodularity ⇒ gain only
            // shrinks, so a fresh top-of-heap value is the true argmax).
            let gain = state.gain(top.j as usize, top.v);
            // A pre-commit (round 0) re-evaluation happens at this very
            // partial-plan state, so it tightens the captured seed.
            if round == 0 && top.slot != NO_SLOT {
                if let Some(cap) = capture.as_deref_mut() {
                    cap[top.slot as usize].gain = gain.max(0.0);
                }
            }
            if gain > 0.0 {
                heap.push(CelfEntry {
                    gain,
                    j: top.j,
                    v: top.v,
                    round,
                    slot: top.slot,
                });
            }
        }
    }
    let (tau, sigma) = state.totals();
    BoundResult {
        plan,
        sigma,
        tau,
        first_pick,
    }
}

/// Algorithm 2 exactly as printed: full rescan of all available promoters
/// in every iteration. Kept for the ablation bench and as a correctness
/// oracle for the CELF variant.
pub fn compute_bound_plain(
    state: &mut TauState<'_>,
    partial: &AssignmentPlan,
    promoters: &[NodeId],
    excluded: &FxHashSet<u64>,
    k: usize,
) -> BoundResult {
    let ell = state.ell();
    let remaining = k.saturating_sub(partial.size());
    let mut plan = partial.clone();
    let mut first_pick = None;
    for _ in 0..remaining {
        let mut best: Option<(f64, usize, NodeId)> = None;
        for j in 0..ell {
            for &v in promoters {
                if !available(&plan, excluded, j, v) {
                    continue;
                }
                let gain = state.gain(j, v);
                let better = match best {
                    None => gain > 0.0,
                    // Strict improvement, ties to smaller (j, v) — matches
                    // the CELF heap's deterministic ordering.
                    Some((bg, bj, bv)) => gain > bg || (gain == bg && (j, v) < (bj, bv)),
                };
                if better {
                    best = Some((gain, j, v));
                }
            }
        }
        let Some((_, j, v)) = best else { break };
        state.add(j, v);
        plan.insert(j, v);
        if first_pick.is_none() {
            first_pick = Some((j, v));
        }
    }
    let (tau, sigma) = state.totals();
    BoundResult {
        plan,
        sigma,
        tau,
        first_pick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tangent::TangentTable;
    use oipa_sampler::testkit::fig1;
    use oipa_sampler::MrrPool;
    use oipa_topics::LogisticAdoption;

    fn setup(theta: usize) -> (MrrPool, TangentTable, LogisticAdoption) {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, theta, 47);
        let model = LogisticAdoption::example();
        let tt = TangentTable::new(model, campaign.len());
        (pool, tt, model)
    }

    #[test]
    fn greedy_finds_the_optimal_fig1_plan() {
        // At k = 2 the optimal plan of Example 1 is {{a}, {e}}; the greedy
        // on τ should land exactly there.
        let (pool, tt, model) = setup(100_000);
        let mut state = TauState::new(&pool, &tt, model);
        let empty = AssignmentPlan::empty(2);
        state.reset_to(&empty);
        let result =
            compute_bound_celf(&mut state, &empty, &[0, 1, 2, 3, 4], &Default::default(), 2);
        assert_eq!(result.plan.set(0), &[0], "piece t1 should go to a");
        assert_eq!(result.plan.set(1), &[4], "piece t2 should go to e");
        // σ̂ scaled ≈ 1.045; τ ≥ σ.
        let sigma = result.sigma * state.scale();
        assert!((sigma - 1.045).abs() < 0.05, "σ̂ = {sigma}");
        assert!(result.tau + 1e-9 >= result.sigma);
    }

    #[test]
    fn celf_matches_plain() {
        let (pool, tt, model) = setup(30_000);
        let promoters = vec![0, 1, 2, 3, 4];
        let empty = AssignmentPlan::empty(2);

        let mut s1 = TauState::new(&pool, &tt, model);
        s1.reset_to(&empty);
        let a = compute_bound_celf(&mut s1, &empty, &promoters, &Default::default(), 3);

        let mut s2 = TauState::new(&pool, &tt, model);
        s2.reset_to(&empty);
        let b = compute_bound_plain(&mut s2, &empty, &promoters, &Default::default(), 3);

        assert_eq!(a.plan, b.plan, "CELF must replicate plain greedy exactly");
        assert!((a.tau - b.tau).abs() < 1e-9);
        assert!((a.sigma - b.sigma).abs() < 1e-9);
        assert_eq!(a.first_pick, b.first_pick);
        // And strictly fewer τ evaluations.
        assert!(
            s1.evaluations < s2.evaluations,
            "CELF {} vs plain {}",
            s1.evaluations,
            s2.evaluations
        );
    }

    #[test]
    fn cached_seeds_replay_fresh_scan_exactly() {
        let (pool, tt, model) = setup(30_000);
        let promoters = vec![0, 1, 2, 3, 4];
        let empty = AssignmentPlan::empty(2);

        // Fresh run capturing its seeds.
        let mut s1 = TauState::new(&pool, &tt, model);
        s1.reset_to(&empty);
        let mut seeds = Vec::new();
        let a = compute_bound_celf_with(
            &mut s1,
            &empty,
            &promoters,
            &Default::default(),
            3,
            CelfSeeding::Fresh,
            Some(&mut seeds),
        );
        assert!(!seeds.is_empty());

        // Exact cached reuse: identical output, far fewer evaluations.
        let mut s2 = TauState::new(&pool, &tt, model);
        s2.reset_to(&empty);
        let b = compute_bound_celf_with(
            &mut s2,
            &empty,
            &promoters,
            &Default::default(),
            3,
            CelfSeeding::Cached {
                entries: &seeds,
                inflate: 1.0,
                exact: true,
            },
            None,
        );
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.first_pick, b.first_pick);
        assert_eq!(a.tau.to_bits(), b.tau.to_bits());
        assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
        assert!(
            s2.evaluations < s1.evaluations,
            "cached {} vs fresh {}",
            s2.evaluations,
            s1.evaluations
        );

        // Inflated cached reuse (upper bounds): still identical output.
        let mut s3 = TauState::new(&pool, &tt, model);
        s3.reset_to(&empty);
        let c = compute_bound_celf_with(
            &mut s3,
            &empty,
            &promoters,
            &Default::default(),
            3,
            CelfSeeding::Cached {
                entries: &seeds,
                inflate: 1.5,
                exact: false,
            },
            None,
        );
        assert_eq!(a.plan, c.plan);
        assert_eq!(a.tau.to_bits(), c.tau.to_bits());
    }

    #[test]
    fn respects_exclusions() {
        let (pool, tt, model) = setup(20_000);
        let empty = AssignmentPlan::empty(2);
        let mut excluded: FxHashSet<u64> = Default::default();
        excluded.insert(pack(0, 0)); // forbid assigning a to t1
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&empty);
        let result = compute_bound_celf(&mut state, &empty, &[0, 1, 2, 3, 4], &excluded, 2);
        assert!(!result.plan.contains(0, 0), "excluded candidate selected");
    }

    #[test]
    fn respects_partial_plan() {
        let (pool, tt, model) = setup(20_000);
        let partial = AssignmentPlan::from_sets(vec![vec![1], vec![]]); // b on t1
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&partial);
        let result = compute_bound_celf(
            &mut state,
            &partial,
            &[0, 1, 2, 3, 4],
            &Default::default(),
            2,
        );
        assert!(partial.contained_in(&result.plan));
        assert_eq!(result.plan.size(), 2);
    }

    #[test]
    fn budget_zero_remaining() {
        let (pool, tt, model) = setup(5_000);
        let partial = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&partial);
        let result = compute_bound_celf(
            &mut state,
            &partial,
            &[0, 1, 2, 3, 4],
            &Default::default(),
            2,
        );
        assert_eq!(result.plan, partial);
        assert_eq!(result.first_pick, None);
    }

    #[test]
    fn greedy_value_guarantee_against_brute_force_on_tau() {
        // (1 − 1/e) guarantee of greedy on the submodular τ, checked by
        // enumerating all size-2 plans on the Fig. 1 instance.
        let (pool, tt, model) = setup(40_000);
        let promoters = [0u32, 1, 2, 3, 4];
        let empty = AssignmentPlan::empty(2);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&empty);
        let greedy = compute_bound_celf(&mut state, &empty, &promoters, &Default::default(), 2);

        let mut best_tau = 0.0f64;
        for j1 in 0..2usize {
            for &v1 in &promoters {
                for j2 in 0..2usize {
                    for &v2 in &promoters {
                        let mut plan = AssignmentPlan::empty(2);
                        plan.insert(j1, v1);
                        plan.insert(j2, v2);
                        let mut s = TauState::new(&pool, &tt, model);
                        s.reset_to(&empty);
                        for (j, v) in plan.assignments() {
                            s.add(j, v);
                        }
                        best_tau = best_tau.max(s.tau_total());
                    }
                }
            }
        }
        assert!(
            greedy.tau + 1e-9 >= (1.0 - 1.0 / std::f64::consts::E) * best_tau,
            "greedy τ {} below (1−1/e)·OPT_τ {}",
            greedy.tau,
            best_tau * (1.0 - 1.0 / std::f64::consts::E)
        );
    }
}
