//! `ComputeBound` — Algorithm 2: greedy maximization of the submodular
//! upper bound τ to estimate the potential of a partial plan.
//!
//! Two implementations share one interface:
//!
//! * [`compute_bound_plain`] — the paper's pseudocode verbatim: every
//!   iteration rescans all available promoters (O(k·n) τ evaluations, the
//!   cost §V-C complains about);
//! * [`compute_bound_celf`] — the same greedy with CELF lazy evaluation
//!   (valid because τ is submodular): stale gains sit in a max-heap and
//!   are only recomputed when popped. Identical output, far fewer
//!   evaluations. This is the default inside branch-and-bound; the
//!   `ablation_lazy` bench quantifies the difference.

use crate::plan::AssignmentPlan;
use crate::tau::TauState;
use oipa_graph::hashing::FxHashSet;
use oipa_graph::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Output of a bound computation (Algorithm 2 line 7 / Algorithm 3 line 16).
#[derive(Debug, Clone)]
pub struct BoundResult {
    /// The completed candidate plan `S̄ ∪ S̄ᵃ`.
    pub plan: AssignmentPlan,
    /// Exact MRR estimate σ̂ of the candidate plan (sample units).
    pub sigma: f64,
    /// The upper bound τ(S̄|S̄ᵃ) (sample units).
    pub tau: f64,
    /// The first greedy selection — used by the branch-and-bound driver as
    /// its branching variable `v*` (the highest-gain available candidate,
    /// matching the power-law prioritization of §V).
    pub first_pick: Option<(usize, NodeId)>,
}

/// A candidate assignment `(piece, node)` packed for exclusion sets.
#[inline]
pub(crate) fn pack(j: usize, v: NodeId) -> u64 {
    ((j as u64) << 32) | v as u64
}

/// Candidate availability: not excluded, not already in the plan.
#[inline]
fn available(plan: &AssignmentPlan, excluded: &FxHashSet<u64>, j: usize, v: NodeId) -> bool {
    !excluded.contains(&pack(j, v)) && !plan.contains(j, v)
}

/// Heap entry ordered by gain, with deterministic tie-breaking on
/// (piece, node) ascending.
struct Entry {
    gain: f64,
    j: u32,
    v: NodeId,
    round: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .expect("gains are finite")
            .then_with(|| other.j.cmp(&self.j))
            .then_with(|| other.v.cmp(&self.v))
    }
}

/// Algorithm 2 with CELF lazy evaluation.
///
/// `state` must already be anchored on `partial` (via
/// [`TauState::reset_to`]). Selects up to `k − |partial|` assignments from
/// `promoters × pieces` excluding `excluded`, maximizing τ.
pub fn compute_bound_celf(
    state: &mut TauState<'_>,
    partial: &AssignmentPlan,
    promoters: &[NodeId],
    excluded: &FxHashSet<u64>,
    k: usize,
) -> BoundResult {
    let ell = state.ell();
    let remaining = k.saturating_sub(partial.size());
    let mut plan = partial.clone();
    let mut first_pick = None;
    if remaining == 0 {
        return BoundResult {
            plan,
            sigma: state.sigma_total(),
            tau: state.tau_total(),
            first_pick,
        };
    }
    // Seed the heap with singleton gains.
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(ell * promoters.len());
    for j in 0..ell {
        for &v in promoters {
            if available(&plan, excluded, j, v) {
                let gain = state.gain(j, v);
                if gain > 0.0 {
                    heap.push(Entry {
                        gain,
                        j: j as u32,
                        v,
                        round: 0,
                    });
                }
            }
        }
    }
    let mut round = 0u32;
    let mut selected = 0usize;
    while selected < remaining {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            // Fresh gain: commit.
            let (j, v) = (top.j as usize, top.v);
            state.add(j, v);
            plan.insert(j, v);
            if first_pick.is_none() {
                first_pick = Some((j, v));
            }
            selected += 1;
            round += 1;
        } else {
            // Stale: recompute and reinsert (submodularity ⇒ gain only
            // shrinks, so a fresh top-of-heap value is the true argmax).
            let gain = state.gain(top.j as usize, top.v);
            if gain > 0.0 {
                heap.push(Entry {
                    gain,
                    j: top.j,
                    v: top.v,
                    round,
                });
            }
        }
    }
    BoundResult {
        plan,
        sigma: state.sigma_total(),
        tau: state.tau_total(),
        first_pick,
    }
}

/// Algorithm 2 exactly as printed: full rescan of all available promoters
/// in every iteration. Kept for the ablation bench and as a correctness
/// oracle for the CELF variant.
pub fn compute_bound_plain(
    state: &mut TauState<'_>,
    partial: &AssignmentPlan,
    promoters: &[NodeId],
    excluded: &FxHashSet<u64>,
    k: usize,
) -> BoundResult {
    let ell = state.ell();
    let remaining = k.saturating_sub(partial.size());
    let mut plan = partial.clone();
    let mut first_pick = None;
    for _ in 0..remaining {
        let mut best: Option<(f64, usize, NodeId)> = None;
        for j in 0..ell {
            for &v in promoters {
                if !available(&plan, excluded, j, v) {
                    continue;
                }
                let gain = state.gain(j, v);
                let better = match best {
                    None => gain > 0.0,
                    // Strict improvement, ties to smaller (j, v) — matches
                    // the CELF heap's deterministic ordering.
                    Some((bg, bj, bv)) => gain > bg || (gain == bg && (j, v) < (bj, bv)),
                };
                if better {
                    best = Some((gain, j, v));
                }
            }
        }
        let Some((_, j, v)) = best else { break };
        state.add(j, v);
        plan.insert(j, v);
        if first_pick.is_none() {
            first_pick = Some((j, v));
        }
    }
    BoundResult {
        plan,
        sigma: state.sigma_total(),
        tau: state.tau_total(),
        first_pick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tangent::TangentTable;
    use oipa_sampler::testkit::fig1;
    use oipa_sampler::MrrPool;
    use oipa_topics::LogisticAdoption;

    fn setup(theta: usize) -> (MrrPool, TangentTable, LogisticAdoption) {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, theta, 47);
        let model = LogisticAdoption::example();
        let tt = TangentTable::new(model, campaign.len());
        (pool, tt, model)
    }

    #[test]
    fn greedy_finds_the_optimal_fig1_plan() {
        // At k = 2 the optimal plan of Example 1 is {{a}, {e}}; the greedy
        // on τ should land exactly there.
        let (pool, tt, model) = setup(100_000);
        let mut state = TauState::new(&pool, &tt, model);
        let empty = AssignmentPlan::empty(2);
        state.reset_to(&empty);
        let result =
            compute_bound_celf(&mut state, &empty, &[0, 1, 2, 3, 4], &Default::default(), 2);
        assert_eq!(result.plan.set(0), &[0], "piece t1 should go to a");
        assert_eq!(result.plan.set(1), &[4], "piece t2 should go to e");
        // σ̂ scaled ≈ 1.045; τ ≥ σ.
        let sigma = result.sigma * state.scale();
        assert!((sigma - 1.045).abs() < 0.05, "σ̂ = {sigma}");
        assert!(result.tau + 1e-9 >= result.sigma);
    }

    #[test]
    fn celf_matches_plain() {
        let (pool, tt, model) = setup(30_000);
        let promoters = vec![0, 1, 2, 3, 4];
        let empty = AssignmentPlan::empty(2);

        let mut s1 = TauState::new(&pool, &tt, model);
        s1.reset_to(&empty);
        let a = compute_bound_celf(&mut s1, &empty, &promoters, &Default::default(), 3);

        let mut s2 = TauState::new(&pool, &tt, model);
        s2.reset_to(&empty);
        let b = compute_bound_plain(&mut s2, &empty, &promoters, &Default::default(), 3);

        assert_eq!(a.plan, b.plan, "CELF must replicate plain greedy exactly");
        assert!((a.tau - b.tau).abs() < 1e-9);
        assert!((a.sigma - b.sigma).abs() < 1e-9);
        assert_eq!(a.first_pick, b.first_pick);
        // And strictly fewer τ evaluations.
        assert!(
            s1.evaluations < s2.evaluations,
            "CELF {} vs plain {}",
            s1.evaluations,
            s2.evaluations
        );
    }

    #[test]
    fn respects_exclusions() {
        let (pool, tt, model) = setup(20_000);
        let empty = AssignmentPlan::empty(2);
        let mut excluded: FxHashSet<u64> = Default::default();
        excluded.insert(pack(0, 0)); // forbid assigning a to t1
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&empty);
        let result = compute_bound_celf(&mut state, &empty, &[0, 1, 2, 3, 4], &excluded, 2);
        assert!(!result.plan.contains(0, 0), "excluded candidate selected");
    }

    #[test]
    fn respects_partial_plan() {
        let (pool, tt, model) = setup(20_000);
        let partial = AssignmentPlan::from_sets(vec![vec![1], vec![]]); // b on t1
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&partial);
        let result = compute_bound_celf(
            &mut state,
            &partial,
            &[0, 1, 2, 3, 4],
            &Default::default(),
            2,
        );
        assert!(partial.contained_in(&result.plan));
        assert_eq!(result.plan.size(), 2);
    }

    #[test]
    fn budget_zero_remaining() {
        let (pool, tt, model) = setup(5_000);
        let partial = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&partial);
        let result = compute_bound_celf(
            &mut state,
            &partial,
            &[0, 1, 2, 3, 4],
            &Default::default(),
            2,
        );
        assert_eq!(result.plan, partial);
        assert_eq!(result.first_pick, None);
    }

    #[test]
    fn greedy_value_guarantee_against_brute_force_on_tau() {
        // (1 − 1/e) guarantee of greedy on the submodular τ, checked by
        // enumerating all size-2 plans on the Fig. 1 instance.
        let (pool, tt, model) = setup(40_000);
        let promoters = [0u32, 1, 2, 3, 4];
        let empty = AssignmentPlan::empty(2);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&empty);
        let greedy = compute_bound_celf(&mut state, &empty, &promoters, &Default::default(), 2);

        let mut best_tau = 0.0f64;
        for j1 in 0..2usize {
            for &v1 in &promoters {
                for j2 in 0..2usize {
                    for &v2 in &promoters {
                        let mut plan = AssignmentPlan::empty(2);
                        plan.insert(j1, v1);
                        plan.insert(j2, v2);
                        let mut s = TauState::new(&pool, &tt, model);
                        s.reset_to(&empty);
                        for (j, v) in plan.assignments() {
                            s.add(j, v);
                        }
                        best_tau = best_tau.max(s.tau_total());
                    }
                }
            }
        }
        assert!(
            greedy.tau + 1e-9 >= (1.0 - 1.0 / std::f64::consts::E) * best_tau,
            "greedy τ {} below (1−1/e)·OPT_τ {}",
            greedy.tau,
            best_tau * (1.0 - 1.0 / std::f64::consts::E)
        );
    }
}
