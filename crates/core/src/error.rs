//! Typed errors for the OIPA solver stack.
//!
//! Historically the workspace validated inputs with `assert!` (a backtrace
//! on bad user input) and reported failures as bare `String`s. This module
//! replaces both with one [`OipaError`] enum that is threaded through
//! `oipa-core`, `oipa-service`, and `oipa-cli`, so every layer can react
//! to the *kind* of failure: the CLI maps user errors to exit code 2 and
//! environment failures to exit code 1, and the service serializes them
//! into per-request error responses instead of tearing the session down.

/// Every way an OIPA request can fail, with actionable messages.
#[derive(Debug, Clone, PartialEq)]
pub enum OipaError {
    /// The budget `k` was zero (a plan must hold at least one assignment).
    InvalidBudget,
    /// The promoter pool was empty after deduplication.
    EmptyPromoters,
    /// A promoter id referenced a node outside the graph.
    PromoterOutOfRange {
        /// The offending promoter id.
        promoter: u32,
        /// The graph's node count (valid ids are `0..node_count`).
        node_count: usize,
    },
    /// A configuration value was out of its documented domain.
    InvalidConfig {
        /// What was wrong and what the valid domain is.
        what: String,
    },
    /// A method needs an input the caller did not provide.
    MissingInput {
        /// The missing input.
        what: String,
        /// How to provide it.
        hint: String,
    },
    /// A method name did not match any registered solver.
    UnknownMethod {
        /// The unrecognized name.
        got: String,
        /// The registered solver names.
        known: Vec<String>,
    },
    /// The instance is too large for the requested method.
    TooLarge {
        /// What exceeded the limit (e.g. "brute-force candidates").
        what: String,
        /// The hard limit.
        limit: usize,
        /// The observed size.
        got: usize,
    },
    /// Two inputs that must describe the same universe disagree.
    Mismatch {
        /// A description of the disagreement.
        what: String,
    },
    /// A filesystem or serialization failure (environment, not user input).
    Io {
        /// What was being read or written.
        what: String,
        /// The underlying error message.
        detail: String,
    },
}

impl OipaError {
    /// Shorthand for an [`OipaError::InvalidConfig`].
    pub fn config(what: impl Into<String>) -> Self {
        OipaError::InvalidConfig { what: what.into() }
    }

    /// The conventional process exit code for this error: `2` for user
    /// errors (bad flags, bad request fields, malformed input files) and
    /// `1` for environment failures (I/O).
    pub fn exit_code(&self) -> i32 {
        match self {
            OipaError::Io { .. } => 1,
            _ => 2,
        }
    }
}

impl std::fmt::Display for OipaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OipaError::InvalidBudget => {
                write!(f, "budget must be at least 1 (set `budget`/`--k` to a positive integer)")
            }
            OipaError::EmptyPromoters => write!(
                f,
                "promoter pool is empty; provide at least one promoter id or a positive promoter fraction"
            ),
            OipaError::PromoterOutOfRange {
                promoter,
                node_count,
            } => write!(
                f,
                "promoter id {promoter} is out of range for a graph with {node_count} nodes (valid ids: 0..{node_count})"
            ),
            OipaError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            OipaError::MissingInput { what, hint } => {
                write!(f, "missing input: {what} ({hint})")
            }
            OipaError::UnknownMethod { got, known } => write!(
                f,
                "unknown method {got:?}; registered solvers: {}",
                known.join(", ")
            ),
            OipaError::TooLarge { what, limit, got } => write!(
                f,
                "{what} exceeds the limit: {got} > {limit}; shrink the instance or pick another method"
            ),
            OipaError::Mismatch { what } => write!(f, "input mismatch: {what}"),
            OipaError::Io { what, detail } => write!(f, "{what}: {detail}"),
        }
    }
}

impl std::error::Error for OipaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_errors_exit_2_io_exits_1() {
        assert_eq!(OipaError::InvalidBudget.exit_code(), 2);
        assert_eq!(OipaError::EmptyPromoters.exit_code(), 2);
        assert_eq!(
            OipaError::Io {
                what: "reading pool".into(),
                detail: "no such file".into()
            }
            .exit_code(),
            1
        );
    }

    #[test]
    fn messages_are_actionable() {
        let e = OipaError::PromoterOutOfRange {
            promoter: 9,
            node_count: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains("0..5"), "{msg}");
        assert!(OipaError::InvalidBudget.to_string().contains("--k"));
    }
}
