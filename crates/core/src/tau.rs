//! The submodular upper bound τ over MRR sets (Definition 6).
//!
//! `TauState` maintains, for every MRR sample `i`:
//!
//! * which pieces are covered (`covered` bitset over `(i, j)`),
//! * the current coverage count `c_i`,
//! * the anchor `c⁰_i` — the coverage under the partial plan `S̄ᵃ`, which
//!   selects the tangent majorant from the [`TangentTable`] (the paper's
//!   per-sample "refinement" of Fig. 2),
//!
//! and the running totals `Σ_i τ_i(c_i)` and `Σ_i σ_i(c_i)` in *sample
//! units* (multiply by `n/θ` for user units). Marginal gains and commits
//! are O(index row) via the pool's inverted index.
//!
//! The struct is a reusable workspace: `reset_to` re-anchors it on a new
//! partial plan touching only the samples changed since the last reset,
//! which keeps branch-and-bound node costs proportional to actual work.

use crate::plan::AssignmentPlan;
use crate::tangent::TangentTable;
use oipa_graph::NodeId;
use oipa_sampler::MrrPool;
use oipa_topics::LogisticAdoption;

/// Incremental τ / σ accounting over an MRR pool.
pub struct TauState<'a> {
    pool: &'a MrrPool,
    table: &'a TangentTable,
    ell: usize,
    /// Bitset over `i·ℓ + j`.
    covered: Vec<u64>,
    /// Current coverage count per sample.
    count: Vec<u8>,
    /// Anchor coverage per sample (coverage under the partial plan).
    anchor: Vec<u8>,
    /// Samples with any state to clear on reset.
    touched: Vec<u32>,
    /// σ lookup per coverage.
    sigma_by_coverage: Vec<f64>,
    /// Σ τ_i at current coverage (sample units).
    tau_sum: f64,
    /// Σ σ_i at current coverage (sample units).
    sigma_sum: f64,
    /// τ value of a fully untouched sample (anchor 0, coverage 0).
    tau_floor: f64,
    /// Number of marginal-gain evaluations since construction (the paper's
    /// complexity metric in §V-C).
    pub evaluations: u64,
}

impl<'a> TauState<'a> {
    /// Creates a state anchored on the empty plan.
    pub fn new(pool: &'a MrrPool, table: &'a TangentTable, model: LogisticAdoption) -> Self {
        assert_eq!(pool.ell(), table.ell(), "table must match pool piece count");
        let ell = pool.ell();
        let theta = pool.theta();
        let tau_floor = table.value(0, 0);
        let sigma_by_coverage = (0..=ell).map(|c| model.adoption_prob(c)).collect();
        TauState {
            pool,
            table,
            ell,
            covered: vec![0u64; (theta * ell).div_ceil(64)],
            count: vec![0; theta],
            anchor: vec![0; theta],
            touched: Vec::new(),
            sigma_by_coverage,
            tau_sum: theta as f64 * tau_floor,
            sigma_sum: 0.0,
            tau_floor,
            evaluations: 0,
        }
    }

    #[inline]
    fn bit(&self, i: usize, j: usize) -> bool {
        let idx = i * self.ell + j;
        self.covered[idx / 64] >> (idx % 64) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, i: usize, j: usize) {
        let idx = i * self.ell + j;
        self.covered[idx / 64] |= 1 << (idx % 64);
    }

    #[inline]
    fn clear_sample(&mut self, i: usize) {
        for j in 0..self.ell {
            let idx = i * self.ell + j;
            self.covered[idx / 64] &= !(1 << (idx % 64));
        }
        self.count[i] = 0;
        self.anchor[i] = 0;
    }

    /// Re-anchors the state on a partial plan: applies its assignments,
    /// then freezes each touched sample's anchor at its coverage — the
    /// refinement step at the top of Algorithms 2 and 3 ("Refine τ(·|S̄ᵃ)").
    pub fn reset_to(&mut self, partial: &AssignmentPlan) {
        assert_eq!(partial.ell(), self.ell, "plan piece count must match");
        for ti in std::mem::take(&mut self.touched) {
            self.clear_sample(ti as usize);
        }
        self.tau_sum = self.pool.theta() as f64 * self.tau_floor;
        self.sigma_sum = 0.0;
        for (j, v) in partial.assignments() {
            self.add_assuming_reset(j, v);
        }
        // Freeze anchors and recompute τ under the refined lines.
        let mut tau_sum = (self.pool.theta() - self.touched.len()) as f64 * self.tau_floor;
        for idx in 0..self.touched.len() {
            let i = self.touched[idx] as usize;
            let c = self.count[i];
            self.anchor[i] = c;
            tau_sum += self.table.value(c as usize, c as usize);
        }
        self.tau_sum = tau_sum;
    }

    /// Adds one assignment during reset (anchors not yet frozen).
    fn add_assuming_reset(&mut self, j: usize, v: NodeId) {
        // `pool` is a shared reference with lifetime 'a, so the row borrow
        // is independent of `&mut self`.
        let pool = self.pool;
        for &i in pool.samples_containing(j, v) {
            let i = i as usize;
            if self.bit(i, j) {
                continue;
            }
            self.set_bit(i, j);
            if self.count[i] == 0 {
                self.touched.push(i as u32);
            }
            let c = self.count[i] as usize;
            self.count[i] = (c + 1) as u8;
            self.sigma_sum += self.sigma_by_coverage[c + 1] - self.sigma_by_coverage[c];
        }
    }

    /// The τ marginal gain of adding `v` to piece `j` (sample units).
    pub fn gain(&mut self, j: usize, v: NodeId) -> f64 {
        self.evaluations += 1;
        let mut acc = 0.0f64;
        for &i in self.pool.samples_containing(j, v) {
            let i = i as usize;
            if self.bit(i, j) {
                continue;
            }
            acc += self
                .table
                .marginal(self.anchor[i] as usize, self.count[i] as usize);
        }
        acc
    }

    /// Commits `v` to piece `j`, updating τ and σ totals.
    pub fn add(&mut self, j: usize, v: NodeId) {
        let pool = self.pool;
        for &i in pool.samples_containing(j, v) {
            let i = i as usize;
            if self.bit(i, j) {
                continue;
            }
            self.set_bit(i, j);
            // A sample is already tracked iff it has any coverage (anchors
            // are always ≤ counts, and reset pushes every covered sample).
            if self.count[i] == 0 {
                self.touched.push(i as u32);
            }
            let a = self.anchor[i] as usize;
            let c = self.count[i] as usize;
            self.count[i] = (c + 1) as u8;
            self.tau_sum += self.table.marginal(a, c);
            self.sigma_sum += self.sigma_by_coverage[c + 1] - self.sigma_by_coverage[c];
        }
    }

    /// Whether piece `j` of sample `i` is covered.
    #[inline]
    pub fn is_covered(&self, i: usize, j: usize) -> bool {
        self.bit(i, j)
    }

    /// Current Σ τ_i (sample units).
    #[inline]
    pub fn tau_total(&self) -> f64 {
        self.tau_sum
    }

    /// Current Σ σ_i (sample units).
    #[inline]
    pub fn sigma_total(&self) -> f64 {
        self.sigma_sum
    }

    /// Scale factor to user units.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.pool.scale()
    }

    /// The pool under evaluation.
    #[inline]
    pub fn pool(&self) -> &'a MrrPool {
        self.pool
    }

    /// The tangent table in use.
    #[inline]
    pub fn table(&self) -> &'a TangentTable {
        self.table
    }

    /// Number of pieces.
    #[inline]
    pub fn ell(&self) -> usize {
        self.ell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tangent::TangentTable;
    use oipa_sampler::testkit::fig1;
    use oipa_sampler::MrrPool;
    use oipa_topics::LogisticAdoption;

    fn setup(theta: usize) -> (MrrPool, TangentTable, LogisticAdoption) {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, theta, 31);
        let model = LogisticAdoption::example();
        let tt = TangentTable::new(model, campaign.len());
        (pool, tt, model)
    }

    #[test]
    fn tau_dominates_sigma_along_greedy_path() {
        let (pool, tt, model) = setup(20_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        assert!(state.tau_total() >= state.sigma_total());
        for &(j, v) in &[(0usize, 0u32), (1, 4), (0, 1), (1, 3)] {
            state.add(j, v);
            assert!(
                state.tau_total() + 1e-9 >= state.sigma_total(),
                "τ {} < σ {} after ({j},{v})",
                state.tau_total(),
                state.sigma_total()
            );
        }
    }

    #[test]
    fn gain_matches_commit_delta() {
        let (pool, tt, model) = setup(10_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        for &(j, v) in &[(0usize, 0u32), (1, 4), (0, 2)] {
            let before = state.tau_total();
            let gain = state.gain(j, v);
            state.add(j, v);
            let delta = state.tau_total() - before;
            assert!(
                (gain - delta).abs() < 1e-9,
                "gain {gain} != delta {delta} for ({j},{v})"
            );
        }
    }

    #[test]
    fn double_add_is_idempotent() {
        let (pool, tt, model) = setup(5_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        state.add(0, 0);
        let tau1 = state.tau_total();
        let sigma1 = state.sigma_total();
        state.add(0, 0);
        assert_eq!(state.tau_total(), tau1);
        assert_eq!(state.sigma_total(), sigma1);
        assert!((state.gain(0, 0)).abs() < 1e-12);
    }

    #[test]
    fn sigma_matches_estimator() {
        let (pool, tt, model) = setup(30_000);
        let mut state = TauState::new(&pool, &tt, model);
        let plan = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        state.reset_to(&AssignmentPlan::empty(2));
        state.add(0, 0);
        state.add(1, 4);
        let mut est = crate::estimator::AuEstimator::new(&pool, model);
        let expect = est.evaluate(&plan);
        let got = state.sigma_total() * state.scale();
        assert!(
            (got - expect).abs() < 1e-9,
            "incremental σ {got} vs estimator {expect}"
        );
    }

    #[test]
    fn reset_refines_anchors_and_tightens_tau() {
        let (pool, tt, model) = setup(20_000);
        // τ of the same final coverage is tighter when anchored at the
        // partial plan than when anchored at ∅ (refinement property).
        let mut fresh = TauState::new(&pool, &tt, model);
        fresh.reset_to(&AssignmentPlan::empty(2));
        fresh.add(0, 0);
        fresh.add(1, 4);
        let tau_unrefined = fresh.tau_total();

        let partial = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        let mut refined = TauState::new(&pool, &tt, model);
        refined.reset_to(&partial);
        let tau_refined = refined.tau_total();
        assert!(
            tau_refined <= tau_unrefined + 1e-9,
            "refined τ {tau_refined} must not exceed unrefined {tau_unrefined}"
        );
        // And still dominates σ.
        assert!(tau_refined + 1e-9 >= refined.sigma_total());
    }

    #[test]
    fn reset_clears_previous_state() {
        let (pool, tt, model) = setup(5_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        let tau_empty = state.tau_total();
        state.add(0, 0);
        state.add(1, 4);
        state.reset_to(&AssignmentPlan::empty(2));
        assert!((state.tau_total() - tau_empty).abs() < 1e-9);
        assert_eq!(state.sigma_total(), 0.0);
        // Re-adding works identically after reset.
        let g1 = state.gain(0, 0);
        assert!(g1 > 0.0);
    }

    #[test]
    fn submodularity_of_gains() {
        // τ gains are nonincreasing as the plan grows (the whole point of
        // the majorant construction).
        let (pool, tt, model) = setup(20_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        let g_before = state.gain(1, 4);
        state.add(0, 0);
        let g_after = state.gain(1, 4);
        assert!(
            g_after <= g_before + 1e-9,
            "gain grew: {g_before} -> {g_after}"
        );
    }
}
