//! The submodular upper bound τ over MRR sets (Definition 6).
//!
//! `TauState` maintains, for every MRR sample `i`:
//!
//! * which pieces are covered (`covered` bitset over `(i, j)`),
//! * the current coverage count `c_i`,
//! * the anchor `c⁰_i` — the coverage under the partial plan `S̄ᵃ`, which
//!   selects the tangent majorant from the [`TangentTable`] (the paper's
//!   per-sample "refinement" of Fig. 2).
//!
//! The struct is a reusable workspace with **two ways to move between
//! partial plans**:
//!
//! * [`TauState::reset_to`] — full re-anchor: clear everything touched and
//!   replay the plan (the original API, still used to (re)synchronize from
//!   scratch);
//! * trail-based push/pop — [`TauState::mark`] records a checkpoint,
//!   [`TauState::assign`] extends the partial plan in place (refining
//!   anchors), [`TauState::add`] applies exploratory greedy assignments on
//!   top, and [`TauState::pop_to`] rewinds to a checkpoint by undoing the
//!   recorded trail. Sibling branch-and-bound nodes that share a plan
//!   prefix pop back to the shared prefix instead of replaying the whole
//!   plan, which keeps per-node cost proportional to the work actually
//!   undone/redone.
//!
//! All bookkeeping mutated by the trail is *integral* (bits, counts,
//! anchors), so a state reached by any interleaving of pushes, pops and
//! resets is exactly — bit for bit — the state a fresh replay of the same
//! plan produces. The floating-point totals `Σ_i τ_i(c_i)` and
//! `Σ_i σ_i(c_i)` (in *sample units*; multiply by `n/θ` for user units)
//! are therefore not maintained incrementally at all: [`TauState::totals`]
//! folds over the touched samples in ascending sample order, an
//! order-independent function of the integer state. That determinism is
//! what lets the incremental branch-and-bound engine promise bitwise
//! identical plans to the reference engine (see `bab.rs`).
//!
//! Marginal gains and commits are O(index row) via the pool's inverted
//! index.

use crate::plan::AssignmentPlan;
use crate::tangent::TangentTable;
use oipa_graph::NodeId;
use oipa_sampler::MrrPool;
use oipa_topics::LogisticAdoption;

/// A checkpoint returned by [`TauState::mark`] and consumed by
/// [`TauState::pop_to`]. Marks are invalidated by [`TauState::reset_to`]
/// (enforced via a generation counter).
#[derive(Debug, Clone, Copy)]
pub struct TrailMark {
    trail_len: usize,
    touched_len: usize,
    generation: u32,
}

/// Trail entry: sample in the high 32 bits, piece in bits 1.., and bit 0
/// set when the entry also bumped the sample's anchor (an [`TauState::assign`]).
const ANCHOR_FLAG: u64 = 1;

/// Incremental τ / σ accounting over an MRR pool.
pub struct TauState<'a> {
    pool: &'a MrrPool,
    table: &'a TangentTable,
    ell: usize,
    /// Bitset over `i·ℓ + j`.
    covered: Vec<u64>,
    /// Current coverage count per sample.
    count: Vec<u8>,
    /// Anchor coverage per sample (coverage under the partial plan).
    anchor: Vec<u8>,
    /// Samples with any state to clear on reset (stack-ordered: trail pops
    /// truncate it).
    touched: Vec<u32>,
    /// Bitset over samples with `count > 0` — drives the index-ordered
    /// totals fold.
    active: Vec<u64>,
    /// Undo trail for `assign`/`add`.
    trail: Vec<u64>,
    /// Bumped by `reset_to`; stale marks are rejected.
    generation: u32,
    /// σ lookup per coverage.
    sigma_by_coverage: Vec<f64>,
    /// τ value of a fully untouched sample (anchor 0, coverage 0).
    tau_floor: f64,
    /// Number of marginal-gain evaluations since construction (the paper's
    /// complexity metric in §V-C).
    pub evaluations: u64,
    /// Trail entries recorded since construction (samples traversed by
    /// `assign`/`add`, including replays inside `reset_to`).
    pub trail_pushed: u64,
    /// Trail entries undone since construction.
    pub trail_popped: u64,
}

impl<'a> TauState<'a> {
    /// Creates a state anchored on the empty plan.
    pub fn new(pool: &'a MrrPool, table: &'a TangentTable, model: LogisticAdoption) -> Self {
        assert_eq!(pool.ell(), table.ell(), "table must match pool piece count");
        let ell = pool.ell();
        let theta = pool.theta();
        let tau_floor = table.value(0, 0);
        let sigma_by_coverage = (0..=ell).map(|c| model.adoption_prob(c)).collect();
        TauState {
            pool,
            table,
            ell,
            covered: vec![0u64; (theta * ell).div_ceil(64)],
            count: vec![0; theta],
            anchor: vec![0; theta],
            touched: Vec::new(),
            active: vec![0u64; theta.div_ceil(64)],
            trail: Vec::new(),
            generation: 0,
            sigma_by_coverage,
            tau_floor,
            evaluations: 0,
            trail_pushed: 0,
            trail_popped: 0,
        }
    }

    #[inline]
    fn bit(&self, i: usize, j: usize) -> bool {
        let idx = i * self.ell + j;
        self.covered[idx / 64] >> (idx % 64) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, i: usize, j: usize) {
        let idx = i * self.ell + j;
        self.covered[idx / 64] |= 1 << (idx % 64);
    }

    #[inline]
    fn clear_bit(&mut self, i: usize, j: usize) {
        let idx = i * self.ell + j;
        self.covered[idx / 64] &= !(1 << (idx % 64));
    }

    #[inline]
    fn clear_sample(&mut self, i: usize) {
        for j in 0..self.ell {
            let idx = i * self.ell + j;
            self.covered[idx / 64] &= !(1 << (idx % 64));
        }
        self.count[i] = 0;
        self.anchor[i] = 0;
        self.active[i / 64] &= !(1 << (i % 64));
    }

    /// Re-anchors the state on a partial plan: applies its assignments and
    /// freezes each touched sample's anchor at its coverage — the
    /// refinement step at the top of Algorithms 2 and 3 ("Refine τ(·|S̄ᵃ)").
    ///
    /// Clears the trail and invalidates outstanding [`TrailMark`]s; use it
    /// to (re)synchronize from scratch, and the `mark`/`assign`/`pop_to`
    /// trio to move between nearby plans.
    pub fn reset_to(&mut self, partial: &AssignmentPlan) {
        assert_eq!(partial.ell(), self.ell, "plan piece count must match");
        for ti in std::mem::take(&mut self.touched) {
            self.clear_sample(ti as usize);
        }
        self.trail.clear();
        self.generation = self.generation.wrapping_add(1);
        for (j, v) in partial.assignments() {
            self.assign(j, v);
        }
        // The replay is now the baseline: nothing below it can be popped.
        self.trail.clear();
    }

    /// Extends the partial plan in place: commits `v` to piece `j` *and*
    /// refreezes the anchors of every newly covered sample (the same state
    /// [`TauState::reset_to`] produces for the extended plan). Records the
    /// trail so [`TauState::pop_to`] can rewind.
    ///
    /// Must be called on a partial-plan state (no outstanding
    /// [`TauState::add`]s), where every sample satisfies `anchor == count`.
    pub fn assign(&mut self, j: usize, v: NodeId) {
        let pool = self.pool;
        for &i in pool.samples_containing(j, v) {
            let i = i as usize;
            if self.bit(i, j) {
                continue;
            }
            debug_assert_eq!(
                self.anchor[i], self.count[i],
                "assign on a state with exploratory adds"
            );
            self.set_bit(i, j);
            if self.count[i] == 0 {
                self.touched.push(i as u32);
                self.active[i / 64] |= 1 << (i % 64);
            }
            self.count[i] += 1;
            self.anchor[i] = self.count[i];
            self.trail
                .push((i as u64) << 32 | (j as u64) << 1 | ANCHOR_FLAG);
            self.trail_pushed += 1;
        }
    }

    /// Commits `v` to piece `j` without moving anchors — the exploratory
    /// add used inside bound computations. Trail-recorded like
    /// [`TauState::assign`].
    pub fn add(&mut self, j: usize, v: NodeId) {
        let pool = self.pool;
        for &i in pool.samples_containing(j, v) {
            let i = i as usize;
            if self.bit(i, j) {
                continue;
            }
            self.set_bit(i, j);
            if self.count[i] == 0 {
                self.touched.push(i as u32);
                self.active[i / 64] |= 1 << (i % 64);
            }
            self.count[i] += 1;
            self.trail.push((i as u64) << 32 | (j as u64) << 1);
            self.trail_pushed += 1;
        }
    }

    /// Checkpoints the current state for a later [`TauState::pop_to`].
    #[inline]
    pub fn mark(&self) -> TrailMark {
        TrailMark {
            trail_len: self.trail.len(),
            touched_len: self.touched.len(),
            generation: self.generation,
        }
    }

    /// Rewinds to a checkpoint by undoing every trail entry recorded since
    /// [`TauState::mark`], restoring bits, counts and anchors exactly.
    ///
    /// Panics if the mark predates a [`TauState::reset_to`] or a deeper
    /// pop (stack discipline is required).
    pub fn pop_to(&mut self, mark: TrailMark) {
        assert_eq!(mark.generation, self.generation, "mark predates a reset_to");
        assert!(
            mark.trail_len <= self.trail.len(),
            "mark was already popped"
        );
        while self.trail.len() > mark.trail_len {
            let entry = self.trail.pop().expect("trail length checked");
            let i = (entry >> 32) as usize;
            let j = ((entry >> 1) & 0x7fff_ffff) as usize;
            self.clear_bit(i, j);
            self.count[i] -= 1;
            if entry & ANCHOR_FLAG != 0 {
                self.anchor[i] -= 1;
            }
            if self.count[i] == 0 {
                self.active[i / 64] &= !(1 << (i % 64));
            }
            self.trail_popped += 1;
        }
        self.touched.truncate(mark.touched_len);
    }

    /// The τ marginal gain of adding `v` to piece `j` (sample units).
    pub fn gain(&mut self, j: usize, v: NodeId) -> f64 {
        self.evaluations += 1;
        let mut acc = 0.0f64;
        for &i in self.pool.samples_containing(j, v) {
            let i = i as usize;
            if self.bit(i, j) {
                continue;
            }
            acc += self
                .table
                .marginal(self.anchor[i] as usize, self.count[i] as usize);
        }
        acc
    }

    /// Whether piece `j` of sample `i` is covered.
    #[inline]
    pub fn is_covered(&self, i: usize, j: usize) -> bool {
        self.bit(i, j)
    }

    /// Applies `f` to every active (count > 0) sample in ascending sample
    /// order — the one canonical iteration every total accessor shares,
    /// so their accumulation orders can never diverge.
    #[inline]
    fn for_each_active(&self, mut f: impl FnMut(usize)) {
        for (w, &word) in self.active.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(i);
            }
        }
    }

    /// Current `(Σ τ_i, Σ σ_i)` in sample units, folded over touched
    /// samples in ascending sample order — a deterministic function of the
    /// integer coverage state, independent of how that state was reached.
    pub fn totals(&self) -> (f64, f64) {
        let mut tau = 0.0f64;
        let mut sigma = 0.0f64;
        self.for_each_active(|i| {
            tau += self
                .table
                .value(self.anchor[i] as usize, self.count[i] as usize);
            sigma += self.sigma_by_coverage[self.count[i] as usize];
        });
        tau += (self.pool.theta() - self.touched.len()) as f64 * self.tau_floor;
        (tau, sigma)
    }

    /// Current Σ τ_i (sample units). Same accumulation order as
    /// [`TauState::totals`] (bit-identical result), without the σ work.
    pub fn tau_total(&self) -> f64 {
        let mut tau = 0.0f64;
        self.for_each_active(|i| {
            tau += self
                .table
                .value(self.anchor[i] as usize, self.count[i] as usize);
        });
        tau + (self.pool.theta() - self.touched.len()) as f64 * self.tau_floor
    }

    /// Current Σ σ_i (sample units). Same accumulation order as
    /// [`TauState::totals`] (bit-identical result), without the τ table
    /// lookups — this is the per-node read the brute-force enumeration
    /// leans on.
    pub fn sigma_total(&self) -> f64 {
        let mut sigma = 0.0f64;
        self.for_each_active(|i| {
            sigma += self.sigma_by_coverage[self.count[i] as usize];
        });
        sigma
    }

    /// Scale factor to user units.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.pool.scale()
    }

    /// The pool under evaluation.
    #[inline]
    pub fn pool(&self) -> &'a MrrPool {
        self.pool
    }

    /// The tangent table in use.
    #[inline]
    pub fn table(&self) -> &'a TangentTable {
        self.table
    }

    /// Number of pieces.
    #[inline]
    pub fn ell(&self) -> usize {
        self.ell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tangent::TangentTable;
    use oipa_sampler::testkit::fig1;
    use oipa_sampler::MrrPool;
    use oipa_topics::LogisticAdoption;

    fn setup(theta: usize) -> (MrrPool, TangentTable, LogisticAdoption) {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, theta, 31);
        let model = LogisticAdoption::example();
        let tt = TangentTable::new(model, campaign.len());
        (pool, tt, model)
    }

    #[test]
    fn tau_dominates_sigma_along_greedy_path() {
        let (pool, tt, model) = setup(20_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        assert!(state.tau_total() >= state.sigma_total());
        for &(j, v) in &[(0usize, 0u32), (1, 4), (0, 1), (1, 3)] {
            state.add(j, v);
            assert!(
                state.tau_total() + 1e-9 >= state.sigma_total(),
                "τ {} < σ {} after ({j},{v})",
                state.tau_total(),
                state.sigma_total()
            );
        }
    }

    #[test]
    fn gain_matches_commit_delta() {
        let (pool, tt, model) = setup(10_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        for &(j, v) in &[(0usize, 0u32), (1, 4), (0, 2)] {
            let before = state.tau_total();
            let gain = state.gain(j, v);
            state.add(j, v);
            let delta = state.tau_total() - before;
            assert!(
                (gain - delta).abs() < 1e-9,
                "gain {gain} != delta {delta} for ({j},{v})"
            );
        }
    }

    #[test]
    fn double_add_is_idempotent() {
        let (pool, tt, model) = setup(5_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        state.add(0, 0);
        let tau1 = state.tau_total();
        let sigma1 = state.sigma_total();
        state.add(0, 0);
        assert_eq!(state.tau_total(), tau1);
        assert_eq!(state.sigma_total(), sigma1);
        assert!((state.gain(0, 0)).abs() < 1e-12);
    }

    #[test]
    fn sigma_matches_estimator() {
        let (pool, tt, model) = setup(30_000);
        let mut state = TauState::new(&pool, &tt, model);
        let plan = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        state.reset_to(&AssignmentPlan::empty(2));
        state.add(0, 0);
        state.add(1, 4);
        let mut est = crate::estimator::AuEstimator::new(&pool, model);
        let expect = est.evaluate(&plan);
        let got = state.sigma_total() * state.scale();
        assert!(
            (got - expect).abs() < 1e-9,
            "incremental σ {got} vs estimator {expect}"
        );
    }

    #[test]
    fn reset_refines_anchors_and_tightens_tau() {
        let (pool, tt, model) = setup(20_000);
        // τ of the same final coverage is tighter when anchored at the
        // partial plan than when anchored at ∅ (refinement property).
        let mut fresh = TauState::new(&pool, &tt, model);
        fresh.reset_to(&AssignmentPlan::empty(2));
        fresh.add(0, 0);
        fresh.add(1, 4);
        let tau_unrefined = fresh.tau_total();

        let partial = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        let mut refined = TauState::new(&pool, &tt, model);
        refined.reset_to(&partial);
        let tau_refined = refined.tau_total();
        assert!(
            tau_refined <= tau_unrefined + 1e-9,
            "refined τ {tau_refined} must not exceed unrefined {tau_unrefined}"
        );
        // And still dominates σ.
        assert!(tau_refined + 1e-9 >= refined.sigma_total());
    }

    #[test]
    fn reset_clears_previous_state() {
        let (pool, tt, model) = setup(5_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        let tau_empty = state.tau_total();
        state.add(0, 0);
        state.add(1, 4);
        state.reset_to(&AssignmentPlan::empty(2));
        assert!((state.tau_total() - tau_empty).abs() < 1e-9);
        assert_eq!(state.sigma_total(), 0.0);
        // Re-adding works identically after reset.
        let g1 = state.gain(0, 0);
        assert!(g1 > 0.0);
    }

    #[test]
    fn submodularity_of_gains() {
        // τ gains are nonincreasing as the plan grows (the whole point of
        // the majorant construction).
        let (pool, tt, model) = setup(20_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        let g_before = state.gain(1, 4);
        state.add(0, 0);
        let g_after = state.gain(1, 4);
        assert!(
            g_after <= g_before + 1e-9,
            "gain grew: {g_before} -> {g_after}"
        );
    }

    #[test]
    fn pop_restores_bitwise_state() {
        let (pool, tt, model) = setup(15_000);
        let mut state = TauState::new(&pool, &tt, model);
        let partial = AssignmentPlan::from_sets(vec![vec![1], vec![]]);
        state.reset_to(&partial);
        let (tau0, sigma0) = state.totals();
        let g0 = state.gain(1, 4);
        let mark = state.mark();
        state.add(0, 0);
        state.add(1, 4);
        assert!(state.sigma_total() > sigma0);
        state.pop_to(mark);
        let (tau1, sigma1) = state.totals();
        assert_eq!(tau0.to_bits(), tau1.to_bits());
        assert_eq!(sigma0.to_bits(), sigma1.to_bits());
        assert_eq!(g0.to_bits(), state.gain(1, 4).to_bits());
    }

    #[test]
    fn assign_path_matches_reset_bitwise() {
        let (pool, tt, model) = setup(15_000);
        // Build {{0,1},{4}} two ways: reset_to, and out-of-order assigns.
        let plan = AssignmentPlan::from_sets(vec![vec![0, 1], vec![4]]);
        let mut by_reset = TauState::new(&pool, &tt, model);
        by_reset.reset_to(&plan);
        let mut by_assign = TauState::new(&pool, &tt, model);
        by_assign.assign(1, 4);
        by_assign.assign(0, 1);
        by_assign.assign(0, 0);
        let (t1, s1) = by_reset.totals();
        let (t2, s2) = by_assign.totals();
        assert_eq!(t1.to_bits(), t2.to_bits());
        assert_eq!(s1.to_bits(), s2.to_bits());
        for j in 0..2usize {
            for v in 0..5u32 {
                assert_eq!(
                    by_reset.gain(j, v).to_bits(),
                    by_assign.gain(j, v).to_bits(),
                    "gain mismatch at ({j},{v})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "mark predates a reset_to")]
    fn stale_mark_rejected() {
        let (pool, tt, model) = setup(1_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        let mark = state.mark();
        state.reset_to(&AssignmentPlan::empty(2));
        state.pop_to(mark);
    }

    #[test]
    fn trail_counters_advance() {
        let (pool, tt, model) = setup(2_000);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&AssignmentPlan::empty(2));
        let mark = state.mark();
        state.add(0, 0);
        assert!(state.trail_pushed > 0);
        let pushed = state.trail_pushed;
        state.pop_to(mark);
        assert_eq!(state.trail_popped, pushed);
    }
}
