//! Shared CELF lazy-greedy machinery: the max-heap entry used by every
//! CELF loop in the crate (τ-bound greedy, relaxed-curve greedy,
//! heterogeneous greedy), with one deterministic ordering — gain
//! descending, ties broken toward the smaller `(piece, node)` pair so the
//! pop sequence is a total order independent of heap internals.

use oipa_graph::NodeId;
use std::cmp::Ordering;

/// Round marker for heap entries seeded from a cached gain vector whose
/// values are (inflated) upper bounds rather than exact current gains:
/// never equal to a live CELF round, so such entries are always
/// re-evaluated before they can be committed.
pub(crate) const STALE_ROUND: u32 = u32::MAX;

/// Sentinel for [`CelfEntry::slot`]: the entry has no capture-vector slot.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// One CELF heap entry: a candidate assignment and the last gain computed
/// for it, tagged with the greedy round of that computation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CelfEntry {
    /// Last known (upper bound on the) marginal gain.
    pub gain: f64,
    /// Piece index.
    pub j: u32,
    /// Candidate promoter.
    pub v: NodeId,
    /// Round the gain was computed in (`STALE_ROUND` = never fresh).
    pub round: u32,
    /// Back-pointer into the bound's seed-capture vector (`NO_SLOT` when
    /// capture is off), letting pre-commit re-evaluations tighten the
    /// captured upper bounds in place.
    pub slot: u32,
}

impl PartialEq for CelfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for CelfEntry {}
impl PartialOrd for CelfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CelfEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .expect("gains are finite")
            .then_with(|| other.j.cmp(&self.j))
            .then_with(|| other.v.cmp(&self.v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn pop_order_is_gain_desc_then_candidate_asc() {
        let mut heap = BinaryHeap::new();
        for (gain, j, v) in [(1.0, 1u32, 7u32), (2.0, 0, 0), (1.0, 0, 9), (1.0, 0, 2)] {
            heap.push(CelfEntry {
                gain,
                j,
                v,
                round: 0,
                slot: NO_SLOT,
            });
        }
        let order: Vec<(u32, u32)> =
            std::iter::from_fn(|| heap.pop().map(|e| (e.j, e.v))).collect();
        assert_eq!(order, vec![(0, 0), (0, 2), (0, 9), (1, 7)]);
    }
}
