//! Tangent-line construction for the submodular upper bound (paper Fig. 2
//! and the Appendix's `Refine` binary search).
//!
//! For one MRR sample, the contribution to the objective is the logistic
//! `σ(x)` of the coverage logit `x = β·c − α`. The logistic S-curve is
//! convex for `x < 0` and concave for `x > 0`, so it is not concave in the
//! coverage count — which is why σ is not submodular. The paper's fix:
//! replace each sample's logistic with its **concave majorant anchored at
//! the current coverage** `x₀`:
//!
//! * if `x₀ ≥ 0` (already in the concave region), the majorant is the
//!   tangent at `x₀` followed by the curve itself;
//! * if `x₀ < 0`, it is the unique line through `(x₀, σ(x₀))` tangent to
//!   the curve at some `t > 0` (found by `Refine`'s binary search on the
//!   gradient `w ∈ (0, ¼)`), followed by the curve beyond `t`.
//!
//! The majorant is nondecreasing and concave, so composing it with the
//! (submodular) coverage count yields a monotone submodular bound τ, and
//! it dominates the true logistic — Definition 6's requirements. When the
//! branch-and-bound extends the partial plan, coverage anchors move right
//! and the lines are re-picked with steeper gradients (the paper's
//! "refinement", Fig. 2 right).

use oipa_topics::{sigmoid, sigmoid_derivative, LogisticAdoption};

/// A tangent line `y = w·x + b` with its tangency abscissa.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TangentLine {
    /// Gradient `w = σ'(t)`.
    pub w: f64,
    /// Intercept `b`.
    pub b: f64,
    /// Tangency point `t`: the majorant follows the line on `[x₀, t]` and
    /// the logistic beyond.
    pub t: f64,
}

impl TangentLine {
    /// The concave-majorant value at logit `x` (must be ≥ the anchor used
    /// to construct the line). Capped at 1 — a probability bound.
    #[inline]
    pub fn value(&self, x: f64) -> f64 {
        let v = if x <= self.t {
            self.w * x + self.b
        } else {
            sigmoid(x)
        };
        v.min(1.0)
    }
}

/// The `Refine` routine (paper Algorithm 4): finds the gradient `w` of the
/// line through `(x0, σ(x0))` tangent to the logistic at some `t ≥ 0`,
/// by binary search on `w ∈ (0, ¼)`.
///
/// Precondition: `x0 < 0` (otherwise the tangent at `x0` itself is the
/// answer and no search is needed — see [`tangent_at_anchor`]).
pub fn refine(x0: f64, tol: f64) -> TangentLine {
    debug_assert!(x0 < 0.0, "refine is for anchors in the convex region");
    let y0 = sigmoid(x0);
    let mut lo = 0.0f64;
    let mut hi = 0.25f64;
    // 4·(hi−lo) halves each step; 200 iterations are overkill but cheap and
    // keep the loop structure of Algorithm 4 (tolerance-driven exit).
    for _ in 0..200 {
        if hi - lo <= tol {
            break;
        }
        let w = 0.5 * (lo + hi);
        // t ≥ 0 with σ'(t) = w: σ(t) = (1 + √(1−4w))/2, t = ln(σ/(1−σ)).
        let root = (1.0 - 4.0 * w).max(0.0).sqrt();
        let s_t = 0.5 * (1.0 + root);
        let t = (s_t / (1.0 - s_t)).ln();
        // Line value at t vs curve value at t (Algorithm 4 lines 5–8).
        let v = w * (t - x0) + y0;
        if v > s_t {
            hi = w; // line overshoots the curve: gradient too large
        } else {
            lo = w;
        }
    }
    // Use the upper end: guarantees the line lies on or above the curve.
    let w = hi;
    let root = (1.0 - 4.0 * w).max(0.0).sqrt();
    let s_t = 0.5 * (1.0 + root);
    let t = if s_t >= 1.0 {
        f64::INFINITY
    } else {
        (s_t / (1.0 - s_t)).ln()
    };
    TangentLine {
        w,
        b: y0 - w * x0,
        t,
    }
}

/// The tangent line at an anchor already in the concave region (`x0 ≥ 0`):
/// gradient `σ'(x0)`, tangency at `x0` itself.
pub fn tangent_at_anchor(x0: f64) -> TangentLine {
    debug_assert!(x0 >= 0.0);
    let w = sigmoid_derivative(x0);
    TangentLine {
        w,
        b: sigmoid(x0) - w * x0,
        t: x0,
    }
}

/// Precomputed majorants for every possible coverage anchor `c₀ ∈ 0..=ℓ`.
///
/// Coverage is integral, so instead of evaluating the continuous tangent
/// line the table stores the **discrete upper concave envelope** of the
/// true per-coverage objective values
///
/// ```text
/// y(c) = 0           if c = 0      (Eqn. 1's "otherwise" branch)
///      = σ(β·c − α)  if c ≥ 1
/// ```
///
/// restricted to `c ∈ [c₀, ℓ]` and anchored at the *true* value `y(c₀)`.
/// This is the minimal monotone-submodular majorant Definition 6 asks for
/// on the integer domain: it dominates every reachable objective value,
/// its increments are nonincreasing (concavity ⇒ submodularity of τ), and
/// it is tighter than the continuous tangent line — in particular
/// `τ(∅) = 0`, so Algorithm 3's Line-14 stop threshold
/// `τ/k' · e⁻¹/(1−e⁻¹)` scales with actual attainable utility rather than
/// with the `θ·σ(−α)` floor a curve-anchored line would contribute.
/// (In the continuous limit the envelope coincides with the paper's
/// tangent construction; [`refine`] remains available and tested as the
/// paper's Algorithm 4.)
///
/// `value[c0][c]` is the majorant (anchored at `c0`) at coverage `c`;
/// `marginal[c0][c]` its one-step increment.
#[derive(Debug, Clone)]
pub struct TangentTable {
    ell: usize,
    lines: Vec<TangentLine>,
    /// Flattened `(ℓ+1) × (ℓ+2)` value table.
    values: Vec<f64>,
    /// Flattened `(ℓ+1) × (ℓ+1)` marginal table.
    marginals: Vec<f64>,
}

/// Upper concave envelope of `ys` over integer abscissae `0..ys.len()`,
/// evaluated back at the integers. O(n).
fn concave_envelope(ys: &[f64]) -> Vec<f64> {
    // Monotone (Andrew) scan keeping strictly decreasing chord slopes.
    let mut hull: Vec<(usize, f64)> = Vec::with_capacity(ys.len());
    for (x, &y) in ys.iter().enumerate() {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            let s_ab = (b.1 - a.1) / (b.0 - a.0) as f64;
            let s_ap = (y - a.1) / (x - a.0) as f64;
            // b lies on/below the chord a→p: drop it.
            if s_ab <= s_ap {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push((x, y));
    }
    let mut out = vec![0.0; ys.len()];
    let mut seg = 0usize;
    #[allow(clippy::needless_range_loop)] // x is the abscissa, not just an index
    for x in 0..ys.len() {
        while seg + 1 < hull.len() && hull[seg + 1].0 <= x {
            seg += 1;
        }
        out[x] = if seg + 1 < hull.len() {
            let a = hull[seg];
            let b = hull[seg + 1];
            a.1 + (b.1 - a.1) * (x - a.0) as f64 / (b.0 - a.0) as f64
        } else {
            hull[seg].1
        };
    }
    out
}

impl TangentTable {
    /// Builds the table for an adoption model and piece count.
    pub fn new(model: LogisticAdoption, ell: usize) -> Self {
        Self::build(model, ell, true)
    }

    /// Ablation variant: every anchor reuses the coverage-0 line, i.e. the
    /// bound is *never refined* as partial plans grow. Still a valid upper
    /// bound (the anchor-0 majorant dominates all logits ≥ −α), just
    /// looser — the `ablation_bounds` bench measures the pruning it costs.
    pub fn unrefined(model: LogisticAdoption, ell: usize) -> Self {
        Self::build(model, ell, false)
    }

    fn build(model: LogisticAdoption, ell: usize, refine_anchors: bool) -> Self {
        assert!(ell >= 1);
        let tol = 1e-12;
        let mut lines = Vec::with_capacity(ell + 1);
        for c0 in 0..=ell {
            let x0 = if refine_anchors {
                model.logit(c0)
            } else {
                model.logit(0)
            };
            lines.push(if x0 >= 0.0 {
                tangent_at_anchor(x0)
            } else {
                refine(x0, tol)
            });
        }
        // True objective values per coverage (Eqn. 1, incl. the zero branch).
        let objective: Vec<f64> = (0..=ell).map(|c| model.adoption_prob(c)).collect();
        let mut values = vec![0.0; (ell + 1) * (ell + 2)];
        for c0 in 0..=ell {
            // Envelope over [anchor_base, ℓ]; the ablation variant always
            // anchors at 0 (never refines).
            let base = if refine_anchors { c0 } else { 0 };
            let env = concave_envelope(&objective[base..=ell]);
            for c in 0..=ell + 1 {
                // Values below the anchor are never queried; clamp them to
                // the anchor value so the table stays monotone. The
                // one-past-the-end column makes marginal[c0][ℓ] = 0.
                let cc = c.clamp(base, ell);
                values[c0 * (ell + 2) + c] = env[cc - base];
            }
        }
        let mut marginals = vec![0.0; (ell + 1) * (ell + 1)];
        for c0 in 0..=ell {
            for c in 0..=ell {
                let lo = values[c0 * (ell + 2) + c];
                let hi = values[c0 * (ell + 2) + c + 1];
                marginals[c0 * (ell + 1) + c] = (hi - lo).max(0.0);
            }
        }
        TangentTable {
            ell,
            lines,
            values,
            marginals,
        }
    }

    /// Number of pieces ℓ.
    #[inline]
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// The majorant line anchored at coverage `c0`.
    #[inline]
    pub fn line(&self, c0: usize) -> &TangentLine {
        &self.lines[c0]
    }

    /// τ value for a sample with anchor `c0` at current coverage `c`.
    #[inline]
    pub fn value(&self, c0: usize, c: usize) -> f64 {
        self.values[c0 * (self.ell + 2) + c]
    }

    /// One-step τ increment at coverage `c` for anchor `c0` (zero at `c = ℓ`).
    #[inline]
    pub fn marginal(&self, c0: usize, c: usize) -> f64 {
        self.marginals[c0 * (self.ell + 1) + c]
    }

    /// Certified single-step inflation bound ρ for *diagonal* marginals
    /// under anchor refinement: for every coverage `c`,
    /// `marginal(c+1, c+1) ≤ ρ · marginal(c, c)`.
    ///
    /// Singleton τ gains evaluated at a partial plan are sums of diagonal
    /// marginals (`anchor == count` there), and extending the partial plan
    /// by one assignment moves each affected sample `(c, c) → (c+1, c+1)`
    /// (or out of the sum entirely), so a gain cached at a parent node,
    /// multiplied by ρ per extension step, is a valid upper bound on the
    /// same candidate's gain at any descendant — the invariant the
    /// branch-and-bound seed cache relies on for exactness. In the convex
    /// region of the logistic the refined majorant is *steeper*, so ρ is
    /// genuinely above 1 there; the returned value includes a 1e-9
    /// relative safety margin for the floating-point multiply.
    ///
    /// Returns `None` when no finite ρ exists (a zero diagonal marginal
    /// followed by a positive one), in which case callers must fall back
    /// to fresh gain scans.
    pub fn diagonal_inflation(&self) -> Option<f64> {
        let mut seen_zero = false;
        for c in 0..=self.ell {
            if self.marginal(c, c) <= 0.0 {
                seen_zero = true;
            } else if seen_zero {
                return None;
            }
        }
        let mut rho = 1.0f64;
        for c in 0..self.ell {
            let m0 = self.marginal(c, c);
            let m1 = self.marginal(c + 1, c + 1);
            if m0 > 0.0 {
                rho = rho.max(m1 / m0);
            }
        }
        Some(rho * (1.0 + 1e-9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_topics::LogisticAdoption;

    #[test]
    fn refine_line_dominates_curve() {
        for &x0 in &[-5.0, -3.0, -1.0, -0.2] {
            let line = refine(x0, 1e-12);
            assert!(line.w > 0.0 && line.w <= 0.25);
            // Dominance on a grid from x0 to far right.
            let mut x = x0;
            while x < 10.0 {
                let v = line.value(x);
                assert!(
                    v + 1e-9 >= sigmoid(x),
                    "majorant {v} below curve {} at x={x} (x0={x0})",
                    sigmoid(x)
                );
                x += 0.05;
            }
            // Anchored: line passes through (x0, σ(x0)).
            assert!((line.w * x0 + line.b - sigmoid(x0)).abs() < 1e-6);
        }
    }

    #[test]
    fn refine_is_tight_at_tangency() {
        let line = refine(-3.0, 1e-13);
        // At the tangency point the line touches the curve.
        let gap = (line.w * line.t + line.b) - sigmoid(line.t);
        assert!(gap.abs() < 1e-5, "tangency gap {gap}");
        // Gradient matches the curve's derivative there.
        assert!((line.w - sigmoid_derivative(line.t)).abs() < 1e-5);
    }

    #[test]
    fn concave_anchor_uses_local_tangent() {
        let line = tangent_at_anchor(1.5);
        assert!((line.t - 1.5).abs() < 1e-12);
        assert!((line.w - sigmoid_derivative(1.5)).abs() < 1e-12);
        for &x in &[1.5, 2.0, 4.0, 9.0] {
            assert!(line.value(x) + 1e-12 >= sigmoid(x));
        }
    }

    #[test]
    fn table_dominates_true_objective_everywhere() {
        let model = LogisticAdoption::new(3.0, 1.0);
        let table = TangentTable::new(model, 5);
        for c0 in 0..=5usize {
            for c in c0..=5usize {
                let tau = table.value(c0, c);
                let objective = model.adoption_prob(c); // 0 at c = 0
                assert!(
                    tau + 1e-9 >= objective,
                    "τ[{c0}][{c}] = {tau} below objective = {objective}"
                );
                assert!(tau <= 1.0 + 1e-12);
            }
        }
        // The empty-coverage anchor is exactly the true zero (no floor).
        assert_eq!(table.value(0, 0), 0.0);
        // At covered anchors the bound is tight at the anchor itself.
        for c0 in 1..=5usize {
            assert!((table.value(c0, c0) - model.adoption_prob(c0)).abs() < 1e-12);
        }
    }

    #[test]
    fn unrefined_table_still_dominates() {
        let model = LogisticAdoption::new(3.0, 1.0);
        let refined = TangentTable::new(model, 4);
        let unrefined = TangentTable::unrefined(model, 4);
        for c0 in 0..=4usize {
            for c in c0..=4usize {
                assert!(unrefined.value(c0, c) + 1e-12 >= model.adoption_prob(c));
                assert!(
                    unrefined.value(c0, c) + 1e-9 >= refined.value(c0, c),
                    "unrefined must be the looser bound at [{c0}][{c}]"
                );
            }
        }
    }

    #[test]
    fn envelope_lifts_convex_region_only() {
        // For an S-shaped objective the envelope is a chord across the
        // convex region and the curve itself in the concave region.
        let model = LogisticAdoption::new(3.0, 1.0);
        let table = TangentTable::new(model, 6);
        // Beyond the inflection the objective is concave, so the envelope
        // is tight there.
        for c in 4..=6usize {
            assert!((table.value(0, c) - model.adoption_prob(c)).abs() < 1e-9);
        }
        // In the convex region it strictly exceeds the objective.
        assert!(table.value(0, 1) > model.adoption_prob(1) + 1e-6);
    }

    #[test]
    fn table_monotone_and_concave_per_anchor() {
        let table = TangentTable::new(LogisticAdoption::new(4.0, 1.0), 5);
        for c0 in 0..=5usize {
            let mut prev_marg = f64::INFINITY;
            for c in c0..5usize {
                let m = table.marginal(c0, c);
                assert!(m >= 0.0, "negative marginal at [{c0}][{c}]");
                assert!(
                    m <= prev_marg + 1e-12,
                    "marginals must be nonincreasing (concavity): [{c0}][{c}]"
                );
                prev_marg = m;
            }
        }
    }

    #[test]
    fn refinement_steepens_gradient() {
        // Paper Fig. 2: when the anchor moves right (a piece got covered),
        // the new line has a larger gradient — while the anchor stays in
        // the convex region.
        let model = LogisticAdoption::new(4.0, 1.0);
        let table = TangentTable::new(model, 3);
        assert!(table.line(1).w > table.line(0).w);
        assert!(table.line(2).w > table.line(1).w);
    }

    #[test]
    fn refined_bound_is_tighter() {
        // The anchor-c0 majorant at any c ≥ c0 is ≤ the anchor-(c0−1) one:
        // refinement only shrinks the bound.
        let model = LogisticAdoption::new(3.0, 1.0);
        let table = TangentTable::new(model, 4);
        for c0 in 1..=4usize {
            for c in c0..=4usize {
                assert!(
                    table.value(c0, c) <= table.value(c0 - 1, c) + 1e-9,
                    "refinement must tighten: τ[{c0}][{c}] vs τ[{}][{c}]",
                    c0 - 1
                );
            }
        }
    }

    #[test]
    fn last_marginal_is_zero() {
        let table = TangentTable::new(LogisticAdoption::example(), 3);
        for c0 in 0..=3usize {
            assert_eq!(table.marginal(c0, 3), 0.0);
        }
    }

    #[test]
    fn marginal_sum_telescopes() {
        let table = TangentTable::new(LogisticAdoption::new(2.5, 0.8), 4);
        for c0 in 0..=4usize {
            let mut acc = table.value(c0, c0);
            for c in c0..4 {
                acc += table.marginal(c0, c);
            }
            assert!((acc - table.value(c0, 4)).abs() < 1e-12);
        }
    }
}
