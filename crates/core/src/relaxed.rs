//! Tractable adoption-model relaxations — the paper's second future-work
//! direction (§VII: *"a promising future direction would be to relax the
//! adoption behavior model in a way that would render the problem
//! tractable, i.e., monotone and submodular"*).
//!
//! If the per-user adoption probability is a **concave nondecreasing**
//! function `φ(c)` of the piece-coverage count `c` (instead of the convex-
//! then-concave logistic), the adoption utility becomes monotone
//! *submodular* over the plan lattice, and plain CELF greedy solves OIPA
//! with the classic `(1 − 1/e)` guarantee — no branch-and-bound needed.
//!
//! This module provides:
//!
//! * [`AdoptionCurve`] — the pluggable curve abstraction, with the
//!   logistic (non-submodular reference), probabilistic coverage
//!   `1 − (1 − p)^c`, capped-linear, and the **concave envelope of the
//!   logistic** (the tightest submodular relaxation of the paper's own
//!   model — the same envelope the BAB bound uses, globally instead of
//!   per-anchor);
//! * [`greedy_relaxed`] — CELF greedy directly on the relaxed σ;
//! * a heuristic recipe: optimize under the envelope relaxation, then
//!   *evaluate* under the true logistic. The `relaxation` bench compares
//!   it against BAB/BAB-P.

use crate::celf::{CelfEntry, NO_SLOT};
use crate::greedy::pack;
use crate::plan::AssignmentPlan;
use oipa_graph::hashing::FxHashSet;
use oipa_graph::NodeId;
use oipa_sampler::MrrPool;
use oipa_topics::LogisticAdoption;
use std::collections::BinaryHeap;

/// A per-user adoption curve: probability of adoption given the number of
/// distinct campaign pieces received.
pub trait AdoptionCurve {
    /// `φ(c)` for coverage `c` (must be nondecreasing with `φ(0) = 0`).
    fn prob(&self, coverage: usize) -> f64;

    /// Whether the curve is concave on the integers (marginals
    /// nonincreasing) — i.e. whether greedy enjoys the `(1 − 1/e)` bound.
    fn is_concave(&self, max_coverage: usize) -> bool {
        let mut prev = f64::INFINITY;
        for c in 0..max_coverage {
            let m = self.prob(c + 1) - self.prob(c);
            if m > prev + 1e-12 {
                return false;
            }
            prev = m;
        }
        true
    }
}

/// The paper's logistic model (non-submodular reference).
#[derive(Debug, Clone, Copy)]
pub struct LogisticCurve(pub LogisticAdoption);

impl AdoptionCurve for LogisticCurve {
    fn prob(&self, coverage: usize) -> f64 {
        self.0.adoption_prob(coverage)
    }
}

/// Probabilistic coverage: each received piece independently convinces the
/// user with probability `p`, so `φ(c) = 1 − (1 − p)^c`. Concave for any
/// `p ∈ (0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct ProbabilisticCoverage {
    /// Per-piece conversion probability.
    pub p: f64,
}

impl AdoptionCurve for ProbabilisticCoverage {
    fn prob(&self, coverage: usize) -> f64 {
        assert!((0.0..=1.0).contains(&self.p));
        1.0 - (1.0 - self.p).powi(coverage as i32)
    }
}

/// Capped linear: `φ(c) = min(slope · c, cap)`. Concave.
#[derive(Debug, Clone, Copy)]
pub struct CappedLinear {
    /// Per-piece increment.
    pub slope: f64,
    /// Saturation level (≤ 1).
    pub cap: f64,
}

impl AdoptionCurve for CappedLinear {
    fn prob(&self, coverage: usize) -> f64 {
        (self.slope * coverage as f64).min(self.cap)
    }
}

/// The concave envelope of the logistic over `c ∈ [0, ℓ]`, anchored at the
/// true `φ(0) = 0` — the minimal concave majorant of the paper's own
/// model, hence the *tightest* submodular relaxation of it.
#[derive(Debug, Clone)]
pub struct LogisticEnvelope {
    values: Vec<f64>,
}

impl LogisticEnvelope {
    /// Builds the envelope for a model and maximum coverage ℓ.
    pub fn new(model: LogisticAdoption, ell: usize) -> Self {
        let table = crate::tangent::TangentTable::new(model, ell.max(1));
        LogisticEnvelope {
            values: (0..=ell).map(|c| table.value(0, c)).collect(),
        }
    }
}

impl AdoptionCurve for LogisticEnvelope {
    fn prob(&self, coverage: usize) -> f64 {
        self.values[coverage.min(self.values.len() - 1)]
    }
}

/// Result of the relaxed greedy.
#[derive(Debug, Clone)]
pub struct RelaxedSolution {
    /// The selected plan.
    pub plan: AssignmentPlan,
    /// Utility under the *relaxed* curve (user units).
    pub relaxed_utility: f64,
    /// Marginal-gain evaluations performed.
    pub evaluations: u64,
}

/// CELF greedy maximizing `Σ_i φ(c_i)` over the MRR pool. When `curve`
/// is concave this enjoys the `(1 − 1/e)` guarantee end-to-end — the
/// tractable OIPA variant of §VII.
pub fn greedy_relaxed<C: AdoptionCurve>(
    pool: &MrrPool,
    curve: &C,
    promoters: &[NodeId],
    k: usize,
    excluded: &FxHashSet<u64>,
) -> RelaxedSolution {
    let ell = pool.ell();
    let theta = pool.theta();
    debug_assert!(
        curve.is_concave(ell),
        "greedy_relaxed requires a concave curve; use BranchAndBound for the logistic"
    );
    // Marginal lookup per coverage level.
    let marginals: Vec<f64> = (0..ell)
        .map(|c| curve.prob(c + 1) - curve.prob(c))
        .collect();
    let mut covered = vec![0u64; (theta * ell).div_ceil(64)];
    let mut count = vec![0u8; theta];
    let mut utility = 0.0f64;
    let mut evaluations = 0u64;

    let bit = |covered: &[u64], i: usize, j: usize| -> bool {
        let idx = i * ell + j;
        covered[idx / 64] >> (idx % 64) & 1 == 1
    };

    let gain_of = |covered: &[u64], count: &[u8], j: usize, v: NodeId| -> f64 {
        let mut acc = 0.0;
        for &i in pool.samples_containing(j, v) {
            let i = i as usize;
            if !bit(covered, i, j) {
                acc += marginals[count[i] as usize];
            }
        }
        acc
    };

    let mut heap: BinaryHeap<CelfEntry> = BinaryHeap::new();
    for j in 0..ell {
        for &v in promoters {
            if excluded.contains(&pack(j, v)) {
                continue;
            }
            evaluations += 1;
            let gain = gain_of(&covered, &count, j, v);
            if gain > 0.0 {
                heap.push(CelfEntry {
                    gain,
                    j: j as u32,
                    v,
                    round: 0,
                    slot: NO_SLOT,
                });
            }
        }
    }

    let mut plan = AssignmentPlan::empty(ell);
    let mut round = 0u32;
    while plan.size() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            let (j, v) = (top.j as usize, top.v);
            for &i in pool.samples_containing(j, v) {
                let i = i as usize;
                if !bit(&covered, i, j) {
                    let idx = i * ell + j;
                    covered[idx / 64] |= 1 << (idx % 64);
                    utility += marginals[count[i] as usize];
                    count[i] += 1;
                }
            }
            plan.insert(j, v);
            round += 1;
        } else {
            evaluations += 1;
            let gain = gain_of(&covered, &count, top.j as usize, top.v);
            if gain > 0.0 {
                heap.push(CelfEntry {
                    gain,
                    j: top.j,
                    v: top.v,
                    round,
                    slot: NO_SLOT,
                });
            }
        }
    }

    RelaxedSolution {
        plan,
        relaxed_utility: utility * pool.scale(),
        evaluations,
    }
}

/// The §VII heuristic for the *original* (logistic) problem: optimize the
/// envelope relaxation greedily, then report the plan's true logistic
/// utility. No approximation guarantee for the logistic objective — the
/// `relaxation` bench measures how close it lands to BAB in practice.
pub fn envelope_heuristic(
    pool: &MrrPool,
    model: LogisticAdoption,
    promoters: &[NodeId],
    k: usize,
) -> (AssignmentPlan, f64) {
    let curve = LogisticEnvelope::new(model, pool.ell());
    let relaxed = greedy_relaxed(pool, &curve, promoters, k, &Default::default());
    let mut est = crate::estimator::AuEstimator::new(pool, model);
    let true_utility = est.evaluate(&relaxed.plan);
    (relaxed.plan, true_utility)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bab::{BabConfig, BranchAndBound};
    use crate::OipaInstance;
    use oipa_sampler::testkit::fig1;

    fn pool(theta: usize) -> MrrPool {
        let (g, table, campaign) = fig1();
        MrrPool::generate(&g, &table, &campaign, theta, 313)
    }

    #[test]
    fn concavity_classification() {
        assert!(ProbabilisticCoverage { p: 0.4 }.is_concave(10));
        assert!(CappedLinear {
            slope: 0.2,
            cap: 0.9
        }
        .is_concave(10));
        assert!(LogisticEnvelope::new(LogisticAdoption::example(), 5).is_concave(5));
        // The logistic itself is NOT concave when the inflection sits
        // inside the coverage range.
        assert!(!LogisticCurve(LogisticAdoption::new(5.0, 1.0)).is_concave(10));
    }

    #[test]
    fn envelope_dominates_logistic() {
        let model = LogisticAdoption::example();
        let env = LogisticEnvelope::new(model, 4);
        for c in 0..=4 {
            assert!(env.prob(c) + 1e-12 >= model.adoption_prob(c));
        }
        assert_eq!(env.prob(0), 0.0);
    }

    #[test]
    fn relaxed_greedy_solves_fig1() {
        let pool = pool(60_000);
        let curve = ProbabilisticCoverage { p: 0.5 };
        let sol = greedy_relaxed(&pool, &curve, &[0, 1, 2, 3, 4], 2, &Default::default());
        // Under any sensible monotone curve the coverage-optimal plan on
        // Fig. 1 is still {{a}, {e}}.
        assert_eq!(sol.plan.set(0), &[0]);
        assert_eq!(sol.plan.set(1), &[4]);
        assert!(sol.relaxed_utility > 0.0);
    }

    #[test]
    fn relaxed_guarantee_vs_enumeration() {
        // (1 − 1/e) on the concave objective, by brute force.
        let pool = pool(30_000);
        let curve = ProbabilisticCoverage { p: 0.35 };
        let promoters = [0u32, 1, 2, 3, 4];
        let sol = greedy_relaxed(&pool, &curve, &promoters, 2, &Default::default());
        // Enumerate all ≤2 plans, computing the relaxed utility directly.
        let mut opt = 0.0f64;
        for j1 in 0..2usize {
            for &v1 in &promoters {
                for j2 in 0..2usize {
                    for &v2 in &promoters {
                        let mut plan = AssignmentPlan::empty(2);
                        plan.insert(j1, v1);
                        plan.insert(j2, v2);
                        opt = opt.max(relaxed_utility_of(&pool, &curve, &plan));
                    }
                }
            }
        }
        let ratio = 1.0 - std::f64::consts::E.recip();
        assert!(
            sol.relaxed_utility + 1e-9 >= ratio * opt,
            "greedy {} < (1-1/e)·{opt}",
            sol.relaxed_utility
        );
    }

    fn relaxed_utility_of<C: AdoptionCurve>(
        pool: &MrrPool,
        curve: &C,
        plan: &AssignmentPlan,
    ) -> f64 {
        let mut total = 0.0;
        for i in 0..pool.theta() {
            let mut c = 0usize;
            for j in 0..pool.ell() {
                if plan.set(j).iter().any(|&v| pool.rr_set(j, i).contains(&v)) {
                    c += 1;
                }
            }
            total += curve.prob(c);
        }
        total * pool.scale()
    }

    #[test]
    fn envelope_heuristic_close_to_bab_on_fig1() {
        let pool = pool(60_000);
        let model = LogisticAdoption::example();
        let (plan, utility) = envelope_heuristic(&pool, model, &[0, 1, 2, 3, 4], 2);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 2).unwrap();
        let bab = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        assert!(
            utility >= 0.9 * bab.utility,
            "heuristic {utility} far from BAB {}",
            bab.utility
        );
        assert_eq!(plan.size(), 2);
    }

    #[test]
    fn exclusions_respected() {
        let pool = pool(20_000);
        let mut excluded: FxHashSet<u64> = Default::default();
        excluded.insert(pack(0, 0));
        let sol = greedy_relaxed(
            &pool,
            &ProbabilisticCoverage { p: 0.5 },
            &[0, 1, 2, 3, 4],
            3,
            &excluded,
        );
        assert!(!sol.plan.contains(0, 0));
    }
}
