//! `ComputeBoundPro` — Algorithm 3: progressive upper-bound estimation.
//!
//! Instead of scanning all promoters per greedy iteration, candidates are
//! sorted once by their singleton gain `δ∅(v)` and a threshold `h` sweeps
//! down geometrically (`h ← h/(1+ε)`). A candidate is committed the first
//! time its *current* marginal reaches `h`; sweeps early-break as soon as
//! singleton gains (upper bounds on current gains, by submodularity) fall
//! below `h` (Lines 11–12); and the procedure may return fewer than
//! `k − |S̄ᵃ|` assignments once `h` drops below
//! `τ(S̄|S̄ᵃ)/(k−|S̄ᵃ|) · e⁻¹/(1−e⁻¹)` (Line 14) — the early exit that
//! Theorem 3 shows still yields a `(1 − 1/e − ε)` guarantee and Theorem 4
//! bounds to `O(n/τ · k·log_{1+ε}(2k))` evaluations under power-law
//! influence.

use crate::greedy::{available, BoundResult, SeedEntry};
use crate::plan::AssignmentPlan;
use crate::tau::TauState;
use oipa_graph::hashing::FxHashSet;
use oipa_graph::NodeId;

/// Algorithm 3. `state` must already be anchored on `partial`.
///
/// `eps` is the threshold decay parameter ε (Table IV sweeps 0.1–0.9; the
/// experiments then fix 0.5).
pub fn compute_bound_progressive(
    state: &mut TauState<'_>,
    partial: &AssignmentPlan,
    promoters: &[NodeId],
    excluded: &FxHashSet<u64>,
    k: usize,
    eps: f64,
) -> BoundResult {
    compute_bound_progressive_with(state, partial, promoters, excluded, k, eps, None, None)
}

/// Algorithm 3 with cached-seed support and optional seed capture.
///
/// Unlike CELF, the progressive sweep's behavior depends on the seed
/// *values* (they fix the δ∅ ordering and the sweep cut-offs), so only
/// **exact** cached gains are accepted: `seeds` must hold the singleton
/// gains of the current partial-plan state (e.g. captured by a sibling
/// bound at the same plan). `capture` receives the positive-gain
/// singleton scan when `seeds` is `None`.
#[allow(clippy::too_many_arguments)]
pub fn compute_bound_progressive_with(
    state: &mut TauState<'_>,
    partial: &AssignmentPlan,
    promoters: &[NodeId],
    excluded: &FxHashSet<u64>,
    k: usize,
    eps: f64,
    seeds: Option<&[SeedEntry]>,
    mut capture: Option<&mut Vec<SeedEntry>>,
) -> BoundResult {
    assert!(eps > 0.0, "ε must be positive");
    let ell = state.ell();
    let remaining = k.saturating_sub(partial.size());
    let mut plan = partial.clone();
    let mut first_pick = None;
    if remaining == 0 {
        let (tau, sigma) = state.totals();
        return BoundResult {
            plan,
            sigma,
            tau,
            first_pick,
        };
    }

    // Line 2: order candidates by singleton gain δ∅(v).
    let mut singles: Vec<(f64, u32, NodeId)> = Vec::with_capacity(ell * promoters.len());
    match seeds {
        Some(entries) => {
            debug_assert!(capture.is_none(), "capture requires a fresh scan");
            for e in entries {
                if available(&plan, excluded, e.j as usize, e.v) {
                    singles.push((e.gain, e.j, e.v));
                }
            }
        }
        None => {
            for j in 0..ell {
                for &v in promoters {
                    if !available(&plan, excluded, j, v) {
                        continue;
                    }
                    let g = state.gain(j, v);
                    if g > 0.0 {
                        singles.push((g, j as u32, v));
                    }
                }
            }
            if let Some(cap) = capture.take() {
                cap.extend(singles.iter().map(|&(gain, j, v)| SeedEntry { gain, j, v }));
            }
        }
    }
    // Descending by gain; deterministic tie-break on (piece, node).
    singles.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("gains are finite")
            .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
    });
    let Some(&(maxinf, _, _)) = singles.first() else {
        let (tau, sigma) = state.totals();
        return BoundResult {
            plan,
            sigma,
            tau,
            first_pick,
        };
    };

    // Lines 3–4: h ← maxinf.
    let mut h = maxinf;
    // τ at the last committing sweep (see the Line-14 check below).
    let mut tau_now = state.tau_total();
    let mut tau_stale = false;
    let mut selected = 0usize;
    let mut included = vec![false; singles.len()];
    let stop_factor = {
        let e_inv = std::f64::consts::E.recip();
        e_inv / (1.0 - e_inv)
    };

    // Line 6: keep going while budget remains.
    'outer: while selected < remaining {
        // Lines 7–12: one sweep over candidates in δ∅ order.
        for (idx, &(g0, j, v)) in singles.iter().enumerate() {
            if included[idx] {
                continue;
            }
            // Lines 11–12: singletons below h (hence, by submodularity,
            // current gains below h) end the sweep.
            if g0 < h {
                break;
            }
            let j = j as usize;
            let gain = state.gain(j, v);
            if gain >= h {
                // Lines 9–10: include.
                state.add(j, v);
                plan.insert(j, v);
                included[idx] = true;
                tau_stale = true;
                if first_pick.is_none() {
                    first_pick = Some((j, v));
                }
                selected += 1;
                if selected == remaining {
                    break 'outer;
                }
            }
        }
        // Line 13: lower the threshold.
        h /= 1.0 + eps;
        // Lines 14–15: early exit once the threshold is provably too small
        // to matter (Theorem 3's d < k' case). τ only moves on commits, so
        // the fold is re-done once per committing sweep, not per
        // threshold step.
        if tau_stale {
            tau_now = state.tau_total();
            tau_stale = false;
        }
        if h <= tau_now / remaining as f64 * stop_factor {
            break;
        }
    }

    let (tau, sigma) = state.totals();
    BoundResult {
        plan,
        sigma,
        tau,
        first_pick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{compute_bound_celf, pack};
    use crate::tangent::TangentTable;
    use oipa_sampler::testkit::fig1;
    use oipa_sampler::MrrPool;
    use oipa_topics::LogisticAdoption;

    fn setup(theta: usize) -> (MrrPool, TangentTable, LogisticAdoption) {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, theta, 53);
        let model = LogisticAdoption::example();
        let tt = TangentTable::new(model, campaign.len());
        (pool, tt, model)
    }

    #[test]
    fn finds_the_fig1_optimum() {
        let (pool, tt, model) = setup(60_000);
        let empty = AssignmentPlan::empty(2);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&empty);
        let r = compute_bound_progressive(
            &mut state,
            &empty,
            &[0, 1, 2, 3, 4],
            &Default::default(),
            2,
            0.5,
        );
        assert_eq!(r.plan.set(0), &[0]);
        assert_eq!(r.plan.set(1), &[4]);
    }

    #[test]
    fn guarantee_against_greedy() {
        // Theorem 3: progressive τ ≥ (1 − 1/e − ε) · τ*, and greedy τ ≤ τ*,
        // so progressive τ ≥ (1 − 1/e − ε)/(1) · greedy-vs-opt… we check
        // the implementable form: progressive ≥ (1−1/e−ε)/(1−1/e) × greedy
        // would be too strong; instead verify against the enumerated τ*.
        let (pool, tt, model) = setup(40_000);
        let promoters = [0u32, 1, 2, 3, 4];
        let empty = AssignmentPlan::empty(2);
        for &eps in &[0.1, 0.5, 0.9] {
            let mut state = TauState::new(&pool, &tt, model);
            state.reset_to(&empty);
            let prog = compute_bound_progressive(
                &mut state,
                &empty,
                &promoters,
                &Default::default(),
                2,
                eps,
            );
            // Enumerate τ* over all ≤2-size plans.
            let mut best_tau = 0.0f64;
            for j1 in 0..2usize {
                for &v1 in &promoters {
                    for j2 in 0..2usize {
                        for &v2 in &promoters {
                            let mut s = TauState::new(&pool, &tt, model);
                            s.reset_to(&empty);
                            s.add(j1, v1);
                            s.add(j2, v2);
                            best_tau = best_tau.max(s.tau_total());
                        }
                    }
                }
            }
            let ratio = 1.0 - std::f64::consts::E.recip() - eps;
            assert!(
                prog.tau + 1e-9 >= ratio * best_tau,
                "ε={eps}: progressive τ {} below ({ratio})·τ* {}",
                prog.tau,
                best_tau
            );
        }
    }

    #[test]
    fn fewer_evaluations_than_plain_greedy() {
        let (pool, tt, model) = setup(30_000);
        let empty = AssignmentPlan::empty(2);
        let promoters: Vec<u32> = (0..5).collect();

        let mut s_prog = TauState::new(&pool, &tt, model);
        s_prog.reset_to(&empty);
        let _ =
            compute_bound_progressive(&mut s_prog, &empty, &promoters, &Default::default(), 4, 0.5);

        let mut s_plain = TauState::new(&pool, &tt, model);
        s_plain.reset_to(&empty);
        let _ = crate::greedy::compute_bound_plain(
            &mut s_plain,
            &empty,
            &promoters,
            &Default::default(),
            4,
        );
        assert!(
            s_prog.evaluations <= s_plain.evaluations,
            "progressive {} > plain {}",
            s_prog.evaluations,
            s_plain.evaluations
        );
    }

    #[test]
    fn quality_close_to_celf_at_small_eps() {
        let (pool, tt, model) = setup(40_000);
        let empty = AssignmentPlan::empty(2);
        let promoters: Vec<u32> = (0..5).collect();

        let mut s1 = TauState::new(&pool, &tt, model);
        s1.reset_to(&empty);
        let greedy = compute_bound_celf(&mut s1, &empty, &promoters, &Default::default(), 3);

        let mut s2 = TauState::new(&pool, &tt, model);
        s2.reset_to(&empty);
        let prog =
            compute_bound_progressive(&mut s2, &empty, &promoters, &Default::default(), 3, 0.1);
        // The Line-14 early exit may stop short of the budget, so σ can
        // trail greedy's; Theorem 3 only promises (1−1/e−ε) on τ. Empirically
        // the paper reports near-equal utilities — we assert a loose band
        // here and the exact theorem bound in `guarantee_against_greedy`.
        assert!(
            prog.sigma >= 0.8 * greedy.sigma,
            "progressive σ {} much worse than greedy {}",
            prog.sigma,
            greedy.sigma
        );
        assert!(prog.tau >= (1.0 - std::f64::consts::E.recip() - 0.1) * greedy.tau);
    }

    #[test]
    fn may_return_fewer_than_budget() {
        // On the tiny Fig. 1 instance with a huge budget, the early exit
        // (Line 14) or candidate exhaustion must terminate the loop.
        let (pool, tt, model) = setup(10_000);
        let empty = AssignmentPlan::empty(2);
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&empty);
        let r = compute_bound_progressive(
            &mut state,
            &empty,
            &[0, 1, 2, 3, 4],
            &Default::default(),
            10,
            0.5,
        );
        assert!(r.plan.size() <= 10);
        assert!(r.tau + 1e-9 >= r.sigma);
    }

    #[test]
    fn respects_exclusions_and_partial() {
        let (pool, tt, model) = setup(20_000);
        let partial = AssignmentPlan::from_sets(vec![vec![], vec![4]]);
        let mut excluded: FxHashSet<u64> = Default::default();
        excluded.insert(pack(0, 0));
        let mut state = TauState::new(&pool, &tt, model);
        state.reset_to(&partial);
        let r =
            compute_bound_progressive(&mut state, &partial, &[0, 1, 2, 3, 4], &excluded, 3, 0.3);
        assert!(partial.contained_in(&r.plan));
        assert!(!r.plan.contains(0, 0));
    }
}
