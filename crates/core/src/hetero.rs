//! Solving OIPA under per-user adoption parameters (Table I's general
//! model).
//!
//! The MRR machinery extends naturally: sample `i`'s contribution is
//! governed by its *root's* parameter class, so the estimator keeps one
//! σ-by-coverage row per class, and the submodular majorant keeps one
//! envelope table per class. On top of those, [`greedy_hetero`] runs CELF
//! greedy on the class-aware τ — the same `(1 − 1/e)`-on-τ machinery the
//! homogeneous `ComputeBound` uses, evaluated exactly under the
//! heterogeneous σ at the end. With a single class everything collapses
//! to the base implementation (tested).

use crate::celf::{CelfEntry, NO_SLOT};
use crate::greedy::pack;
use crate::plan::AssignmentPlan;
use crate::tangent::TangentTable;
use oipa_graph::hashing::FxHashSet;
use oipa_graph::NodeId;
use oipa_sampler::MrrPool;
use oipa_topics::hetero::HeterogeneousAdoption;
use std::collections::BinaryHeap;

/// Class-aware σ/τ accounting over an MRR pool.
pub struct HeteroState<'a> {
    pool: &'a MrrPool,
    adoption: &'a HeterogeneousAdoption,
    ell: usize,
    /// Per-class envelope tables (anchor 0 — greedy never re-anchors).
    tables: Vec<TangentTable>,
    /// Per-class σ-by-coverage rows.
    sigma: Vec<Vec<f64>>,
    /// Class of each sample's root.
    sample_class: Vec<u8>,
    covered: Vec<u64>,
    count: Vec<u8>,
    tau_sum: f64,
    sigma_sum: f64,
}

impl<'a> HeteroState<'a> {
    /// Builds the state (empty plan).
    pub fn new(pool: &'a MrrPool, adoption: &'a HeterogeneousAdoption) -> Self {
        assert_eq!(
            adoption.user_count(),
            pool.node_count(),
            "adoption parameters must cover every user"
        );
        let ell = pool.ell();
        let tables: Vec<TangentTable> = (0..adoption.class_count())
            .map(|c| TangentTable::new(adoption.class(c as u8), ell))
            .collect();
        let sigma: Vec<Vec<f64>> = (0..adoption.class_count())
            .map(|c| {
                (0..=ell)
                    .map(|cov| adoption.class(c as u8).adoption_prob(cov))
                    .collect()
            })
            .collect();
        let sample_class: Vec<u8> = pool.roots().iter().map(|&r| adoption.class_of(r)).collect();
        HeteroState {
            pool,
            adoption,
            ell,
            tables,
            sigma,
            sample_class,
            covered: vec![0u64; (pool.theta() * ell).div_ceil(64)],
            count: vec![0; pool.theta()],
            tau_sum: 0.0,
            sigma_sum: 0.0,
        }
    }

    #[inline]
    fn bit(&self, i: usize, j: usize) -> bool {
        let idx = i * self.ell + j;
        self.covered[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// τ marginal gain of adding `v` to piece `j` (sample units).
    pub fn gain(&self, j: usize, v: NodeId) -> f64 {
        let mut acc = 0.0;
        for &i in self.pool.samples_containing(j, v) {
            let i = i as usize;
            if !self.bit(i, j) {
                let table = &self.tables[self.sample_class[i] as usize];
                acc += table.marginal(0, self.count[i] as usize);
            }
        }
        acc
    }

    /// Commits `v` to piece `j`.
    pub fn add(&mut self, j: usize, v: NodeId) {
        let pool = self.pool;
        for &i in pool.samples_containing(j, v) {
            let i = i as usize;
            if self.bit(i, j) {
                continue;
            }
            let idx = i * self.ell + j;
            self.covered[idx / 64] |= 1 << (idx % 64);
            let class = self.sample_class[i] as usize;
            let c = self.count[i] as usize;
            self.count[i] = (c + 1) as u8;
            self.tau_sum += self.tables[class].marginal(0, c);
            self.sigma_sum += self.sigma[class][c + 1] - self.sigma[class][c];
        }
    }

    /// Current Σ σ (sample units).
    #[inline]
    pub fn sigma_total(&self) -> f64 {
        self.sigma_sum
    }

    /// Current Σ τ (sample units).
    #[inline]
    pub fn tau_total(&self) -> f64 {
        self.tau_sum
    }

    /// The adoption parameters in use.
    #[inline]
    pub fn adoption(&self) -> &'a HeterogeneousAdoption {
        self.adoption
    }

    /// Evaluates an arbitrary plan's heterogeneous σ̂ (user units) without
    /// disturbing the incremental state.
    pub fn evaluate(&self, plan: &AssignmentPlan) -> f64 {
        let theta = self.pool.theta();
        let mut coverage = vec![0u8; theta];
        let mut seen = vec![false; theta];
        for j in 0..plan.ell() {
            if plan.set(j).is_empty() {
                continue;
            }
            seen.iter_mut().for_each(|s| *s = false);
            for &v in plan.set(j) {
                for &i in self.pool.samples_containing(j, v) {
                    if !seen[i as usize] {
                        seen[i as usize] = true;
                        coverage[i as usize] += 1;
                    }
                }
            }
        }
        let mut total = 0.0;
        for (i, &c) in coverage.iter().enumerate() {
            if c > 0 {
                total += self.sigma[self.sample_class[i] as usize][c as usize];
            }
        }
        total * self.pool.scale()
    }
}

/// Heterogeneous greedy result.
#[derive(Debug, Clone)]
pub struct HeteroSolution {
    /// The chosen plan.
    pub plan: AssignmentPlan,
    /// Exact heterogeneous σ̂ of the plan (user units).
    pub utility: f64,
    /// Final τ value (user units) — a quality certificate on the majorant.
    pub tau: f64,
}

/// CELF greedy on the class-aware τ majorant, exact σ evaluation at the
/// end. `(1 − 1/e)` w.r.t. τ; heuristic w.r.t. the (non-submodular) σ.
pub fn greedy_hetero(
    pool: &MrrPool,
    adoption: &HeterogeneousAdoption,
    promoters: &[NodeId],
    k: usize,
    excluded: &FxHashSet<u64>,
) -> HeteroSolution {
    let ell = pool.ell();
    let mut state = HeteroState::new(pool, adoption);

    let mut heap: BinaryHeap<CelfEntry> = BinaryHeap::new();
    for j in 0..ell {
        for &v in promoters {
            if excluded.contains(&pack(j, v)) {
                continue;
            }
            let gain = state.gain(j, v);
            if gain > 0.0 {
                heap.push(CelfEntry {
                    gain,
                    j: j as u32,
                    v,
                    round: 0,
                    slot: NO_SLOT,
                });
            }
        }
    }
    let mut plan = AssignmentPlan::empty(ell);
    let mut round = 0u32;
    while plan.size() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            state.add(top.j as usize, top.v);
            plan.insert(top.j as usize, top.v);
            round += 1;
        } else {
            let gain = state.gain(top.j as usize, top.v);
            if gain > 0.0 {
                heap.push(CelfEntry {
                    gain,
                    j: top.j,
                    v: top.v,
                    round,
                    slot: NO_SLOT,
                });
            }
        }
    }
    let utility = state.sigma_total() * pool.scale();
    HeteroSolution {
        plan,
        utility,
        tau: state.tau_total() * pool.scale(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::testkit::fig1;
    use oipa_topics::LogisticAdoption;

    fn pool(theta: usize) -> MrrPool {
        let (g, table, campaign) = fig1();
        MrrPool::generate(&g, &table, &campaign, theta, 131)
    }

    #[test]
    fn uniform_matches_homogeneous_greedy() {
        let pool = pool(50_000);
        let model = LogisticAdoption::example();
        let hetero = HeterogeneousAdoption::uniform(model, pool.node_count());
        let h = greedy_hetero(&pool, &hetero, &[0, 1, 2, 3, 4], 2, &Default::default());
        // Homogeneous reference via the standard pipeline.
        let table = TangentTable::new(model, 2);
        let mut state = crate::tau::TauState::new(&pool, &table, model);
        let empty = AssignmentPlan::empty(2);
        state.reset_to(&empty);
        let g = crate::greedy::compute_bound_celf(
            &mut state,
            &empty,
            &[0, 1, 2, 3, 4],
            &Default::default(),
            2,
        );
        assert_eq!(h.plan, g.plan);
        assert!((h.utility - g.sigma * pool.scale()).abs() < 1e-9);
    }

    #[test]
    fn evaluate_matches_homogeneous_estimator_when_uniform() {
        let pool = pool(30_000);
        let model = LogisticAdoption::example();
        let hetero = HeterogeneousAdoption::uniform(model, pool.node_count());
        let state = HeteroState::new(&pool, &hetero);
        let plan = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        let mut est = crate::estimator::AuEstimator::new(&pool, model);
        assert!((state.evaluate(&plan) - est.evaluate(&plan)).abs() < 1e-9);
    }

    #[test]
    fn enthusiasts_raise_utility() {
        let pool = pool(40_000);
        let hard = LogisticAdoption::new(3.0, 1.0);
        let easy = LogisticAdoption::new(1.0, 1.0);
        let all_hard = HeterogeneousAdoption::uniform(hard, pool.node_count());
        let mixed = HeterogeneousAdoption::two_segment(easy, hard, 0.5, pool.node_count());
        let plan_hard = greedy_hetero(&pool, &all_hard, &[0, 1, 2, 3, 4], 2, &Default::default());
        let plan_mixed = greedy_hetero(&pool, &mixed, &[0, 1, 2, 3, 4], 2, &Default::default());
        assert!(
            plan_mixed.utility > plan_hard.utility,
            "easy users must raise adoption: {} vs {}",
            plan_mixed.utility,
            plan_hard.utility
        );
    }

    #[test]
    fn tau_dominates_sigma() {
        let pool = pool(30_000);
        let hetero = HeterogeneousAdoption::two_segment(
            LogisticAdoption::new(1.5, 1.0),
            LogisticAdoption::new(4.0, 1.0),
            0.4,
            pool.node_count(),
        );
        let sol = greedy_hetero(&pool, &hetero, &[0, 1, 2, 3, 4], 3, &Default::default());
        assert!(sol.tau + 1e-9 >= sol.utility);
    }

    #[test]
    #[should_panic(expected = "adoption parameters must cover every user")]
    fn user_count_mismatch_rejected() {
        let pool = pool(1_000);
        let hetero = HeterogeneousAdoption::uniform(LogisticAdoption::example(), 3);
        let _ = HeteroState::new(&pool, &hetero);
    }
}
