//! Branch-and-bound driver — Algorithm 1.
//!
//! A max-heap orders open search nodes by the τ upper bound of their
//! subtree. Each node is a pair (partial plan `S̄ᵃ`, exclusion set):
//! popping the top node fixes the global upper bound `U`; branching picks
//! the highest-gain available candidate `v*` (the first greedy selection
//! of the node's own bound computation — the "most influential first"
//! order §V motivates from the power law) and opens two children, one
//! including `v*` and one excluding it. Every bound computation also emits
//! a complete candidate plan whose exact MRR estimate raises the incumbent
//! `L`. Nodes with `U ≤ L` are pruned; the search stops when
//! `U − L ≤ gap · L` (the paper's experiments use 1%), when the heap
//! drains, or when the node cap is hit.

use crate::greedy::{compute_bound_celf, compute_bound_plain, pack, BoundResult};
use crate::plan::AssignmentPlan;
use crate::progressive::compute_bound_progressive;
use crate::tangent::TangentTable;
use crate::tau::TauState;
use crate::{OipaInstance, Solution};
use oipa_graph::hashing::FxHashSet;
use oipa_graph::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// Which `ComputeBound` implementation the driver calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundMethod {
    /// Algorithm 2 with CELF lazy greedy (default; same output as plain).
    Greedy,
    /// Algorithm 2 verbatim (full rescan each iteration) — ablation only.
    PlainGreedy,
    /// Algorithm 3, the progressive estimation with parameter ε (BAB-P).
    Progressive {
        /// Threshold decay ε (the paper fixes 0.5 after tuning).
        eps: f64,
    },
}

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct BabConfig {
    /// Bound routine.
    pub method: BoundMethod,
    /// Relative termination gap: stop when `U − L ≤ gap · L`. The paper's
    /// experiments use 0.01; `0.0` demands the exact `L ≥ U` fixpoint.
    pub gap: f64,
    /// Hard cap on expanded nodes (safety on large instances).
    pub max_nodes: Option<usize>,
    /// Whether to refine tangent anchors as partial plans grow (Fig. 2).
    /// `false` is the ablation mode: anchor-0 majorants throughout.
    pub refine_anchors: bool,
}

impl Default for BabConfig {
    fn default() -> Self {
        BabConfig {
            method: BoundMethod::Greedy,
            gap: 0.01,
            max_nodes: None,
            refine_anchors: true,
        }
    }
}

impl BabConfig {
    /// The paper's `BAB` configuration (greedy bound, 1% gap).
    pub fn bab() -> Self {
        Self::default()
    }

    /// The paper's `BAB-P` configuration (progressive bound, 1% gap).
    pub fn bab_p(eps: f64) -> Self {
        BabConfig {
            method: BoundMethod::Progressive { eps },
            ..Self::default()
        }
    }
}

/// Search statistics.
#[derive(Debug, Clone, Default)]
pub struct BabStats {
    /// Heap nodes expanded (branchings performed).
    pub nodes_expanded: usize,
    /// Bound computations (2 per branching + 1 root).
    pub bounds_computed: usize,
    /// Nodes discarded because their bound fell under the incumbent.
    pub nodes_pruned: usize,
    /// τ marginal-gain evaluations (the paper's §V-C cost metric).
    pub tau_evaluations: u64,
    /// Wall-clock time of `solve`.
    pub elapsed: std::time::Duration,
}

/// Persistent exclusion list: children share their parent's tail, so heap
/// entries cost O(1) to branch instead of O(depth) copies.
#[derive(Debug, Clone, Default)]
struct ExclusionList(Option<Arc<ExclusionNode>>);

#[derive(Debug)]
struct ExclusionNode {
    packed: u64,
    rest: Option<Arc<ExclusionNode>>,
}

impl ExclusionList {
    fn push(&self, j: usize, v: NodeId) -> ExclusionList {
        ExclusionList(Some(Arc::new(ExclusionNode {
            packed: pack(j, v),
            rest: self.0.clone(),
        })))
    }

    fn materialize(&self) -> FxHashSet<u64> {
        let mut set: FxHashSet<u64> = Default::default();
        let mut cur = &self.0;
        while let Some(node) = cur {
            set.insert(node.packed);
            cur = &node.rest;
        }
        set
    }
}

/// One open search node.
struct OpenNode {
    upper: f64,
    plan: AssignmentPlan,
    excluded: ExclusionList,
    branch: Option<(usize, NodeId)>,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.upper == other.upper
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> Ordering {
        self.upper
            .partial_cmp(&other.upper)
            .expect("bounds are finite")
            // Tie-break: deeper plans first (cheaper to close).
            .then_with(|| self.plan.size().cmp(&other.plan.size()))
    }
}

/// The branch-and-bound solver. Holds the reusable τ workspace; one
/// instance can solve repeatedly (e.g. across a parameter sweep) without
/// reallocating θ-sized buffers.
///
/// ```
/// use oipa_core::{BabConfig, BranchAndBound, OipaInstance};
/// use oipa_sampler::MrrPool;
/// use oipa_topics::LogisticAdoption;
///
/// let (graph, table, campaign) = oipa_sampler::testkit::fig1();
/// let pool = MrrPool::generate(&graph, &table, &campaign, 20_000, 42);
/// let instance = OipaInstance::new(&pool, LogisticAdoption::example(), (0..5).collect(), 2);
/// let solution = BranchAndBound::new(&instance, BabConfig::bab()).solve();
/// assert_eq!(solution.plan.set(0), &[0]); // tax piece -> user a
/// assert_eq!(solution.plan.set(1), &[4]); // healthcare piece -> user e
/// ```
pub struct BranchAndBound<'a> {
    instance: &'a OipaInstance<'a>,
    config: BabConfig,
    table: TangentTable,
}

impl<'a> BranchAndBound<'a> {
    /// Creates a solver for an instance.
    pub fn new(instance: &'a OipaInstance<'a>, config: BabConfig) -> Self {
        if let BoundMethod::Progressive { eps } = config.method {
            assert!(eps > 0.0, "ε must be positive");
        }
        assert!(config.gap >= 0.0, "gap must be nonnegative");
        let table = if config.refine_anchors {
            TangentTable::new(instance.model, instance.ell())
        } else {
            TangentTable::unrefined(instance.model, instance.ell())
        };
        BranchAndBound {
            instance,
            config,
            table,
        }
    }

    fn bound(
        &self,
        state: &mut TauState<'a>,
        partial: &AssignmentPlan,
        excluded: &FxHashSet<u64>,
    ) -> BoundResult {
        let promoters = &self.instance.promoters;
        let k = self.instance.budget;
        state.reset_to(partial);
        match self.config.method {
            BoundMethod::Greedy => compute_bound_celf(state, partial, promoters, excluded, k),
            BoundMethod::PlainGreedy => compute_bound_plain(state, partial, promoters, excluded, k),
            BoundMethod::Progressive { eps } => {
                compute_bound_progressive(state, partial, promoters, excluded, k, eps)
            }
        }
    }

    /// Runs Algorithm 1 to completion and returns the best plan found,
    /// with utilities in user units.
    pub fn solve(&mut self) -> Solution {
        let start = Instant::now();
        let inst = self.instance;
        let scale = inst.pool.scale();
        let mut state = TauState::new(inst.pool, &self.table, inst.model);
        let mut stats = BabStats::default();

        // Root bound (Lines 2–5).
        let empty = AssignmentPlan::empty(inst.ell());
        let root = self.bound(&mut state, &empty, &Default::default());
        stats.bounds_computed += 1;
        let mut best_plan = root.plan.clone();
        let mut lower = root.sigma;
        let mut global_upper = root.tau;
        let mut heap = BinaryHeap::new();
        heap.push(OpenNode {
            upper: root.tau,
            plan: empty,
            excluded: ExclusionList::default(),
            branch: root.first_pick,
        });

        // Search loop (Lines 6–18).
        while let Some(node) = heap.pop() {
            global_upper = node.upper;
            // Termination: exact fixpoint or within the configured gap.
            if global_upper <= lower + self.config.gap * lower.max(f64::MIN_POSITIVE) {
                global_upper = global_upper.max(lower);
                break;
            }
            if node.upper <= lower {
                stats.nodes_pruned += 1;
                continue;
            }
            let Some((j_star, v_star)) = node.branch else {
                // Leaf: pool exhausted under this node.
                continue;
            };
            if node.plan.size() >= inst.budget {
                continue;
            }
            if let Some(cap) = self.config.max_nodes {
                if stats.nodes_expanded >= cap {
                    break;
                }
            }
            stats.nodes_expanded += 1;

            // Include branch: S̄ᵃ = S̄ ∪_{j*} {v*} (Line 11).
            let mut include_plan = node.plan.clone();
            include_plan.insert(j_star, v_star);
            let include_excl = node.excluded.materialize();
            let inc = self.bound(&mut state, &include_plan, &include_excl);
            stats.bounds_computed += 1;
            if inc.sigma > lower {
                lower = inc.sigma;
                best_plan = inc.plan.clone();
            }
            if inc.tau > lower {
                heap.push(OpenNode {
                    upper: inc.tau,
                    plan: include_plan,
                    excluded: node.excluded.clone(),
                    branch: inc.first_pick,
                });
            } else {
                stats.nodes_pruned += 1;
            }

            // Exclude branch: S̄ᵇ = S̄ with (j*, v*) removed from the pool
            // (Lines 10, 12, 18).
            let exclude_list = node.excluded.push(j_star, v_star);
            let mut exclude_excl = include_excl;
            exclude_excl.insert(pack(j_star, v_star));
            let exc = self.bound(&mut state, &node.plan, &exclude_excl);
            stats.bounds_computed += 1;
            if exc.sigma > lower {
                lower = exc.sigma;
                best_plan = exc.plan.clone();
            }
            if exc.tau > lower {
                heap.push(OpenNode {
                    upper: exc.tau,
                    plan: node.plan,
                    excluded: exclude_list,
                    branch: exc.first_pick,
                });
            } else {
                stats.nodes_pruned += 1;
            }
        }
        if heap.is_empty() {
            // Search exhausted: the incumbent is optimal w.r.t. the pruning
            // bound, so the certified upper bound collapses onto it.
            global_upper = lower;
        }

        stats.tau_evaluations = state.evaluations;
        stats.elapsed = start.elapsed();
        Solution {
            plan: best_plan,
            utility: lower * scale,
            upper_bound: global_upper.max(lower) * scale,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::testkit::fig1;
    use oipa_sampler::MrrPool;
    use oipa_topics::LogisticAdoption;

    fn fig1_instance(theta: usize) -> (MrrPool, LogisticAdoption) {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, theta, 61);
        (pool, LogisticAdoption::example())
    }

    #[test]
    fn solves_fig1_exactly() {
        let (pool, model) = fig1_instance(80_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 2);
        let mut solver = BranchAndBound::new(
            &instance,
            BabConfig {
                gap: 0.0,
                ..BabConfig::bab()
            },
        );
        let sol = solver.solve();
        assert_eq!(sol.plan.set(0), &[0], "t1 -> a");
        assert_eq!(sol.plan.set(1), &[4], "t2 -> e");
        assert!((sol.utility - 1.045).abs() < 0.05, "σ = {}", sol.utility);
        assert!(sol.upper_bound + 1e-9 >= sol.utility);
    }

    #[test]
    fn bab_p_matches_bab_on_fig1() {
        let (pool, model) = fig1_instance(60_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 2);
        let bab = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        let bab_p = BranchAndBound::new(&instance, BabConfig::bab_p(0.5)).solve();
        assert_eq!(bab.plan, bab_p.plan, "BAB-P diverged on a trivial instance");
        assert!((bab.utility - bab_p.utility).abs() < 1e-9);
    }

    #[test]
    fn respects_budget() {
        let (pool, model) = fig1_instance(20_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 3);
        let sol = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        assert!(sol.plan.size() <= 3);
    }

    #[test]
    fn budget_larger_than_pool_terminates() {
        let (pool, model) = fig1_instance(10_000);
        // 2 pieces × 5 promoters = 10 possible assignments; ask for 10.
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 10);
        let sol = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        assert!(sol.plan.size() <= 10);
        assert!(sol.utility > 0.0);
    }

    #[test]
    fn node_cap_respected() {
        let (pool, model) = fig1_instance(10_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 4);
        let mut solver = BranchAndBound::new(
            &instance,
            BabConfig {
                max_nodes: Some(3),
                gap: 0.0,
                ..BabConfig::bab()
            },
        );
        let sol = solver.solve();
        assert!(sol.stats.nodes_expanded <= 3);
        assert!(sol.utility > 0.0, "incumbent must still exist");
    }

    #[test]
    fn monotone_in_budget() {
        let (pool, model) = fig1_instance(40_000);
        let mut prev = 0.0;
        for k in 1..=4usize {
            let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], k);
            let sol = BranchAndBound::new(&instance, BabConfig::bab()).solve();
            assert!(
                sol.utility + 1e-6 >= prev,
                "utility dropped from {prev} to {} at k={k}",
                sol.utility
            );
            prev = sol.utility;
        }
    }

    #[test]
    fn stats_populated() {
        let (pool, model) = fig1_instance(10_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 2);
        let sol = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        assert!(sol.stats.bounds_computed >= 1);
        assert!(sol.stats.tau_evaluations > 0);
    }

    #[test]
    fn single_piece_campaign_reduces_to_im() {
        // ℓ = 1: OIPA degenerates to (a logistic-weighted) IM; the solver
        // must pick the highest-spread promoter.
        let (g, table, _) = fig1();
        let campaign = oipa_topics::Campaign::new(vec![oipa_topics::Piece::new(
            "only",
            oipa_topics::TopicVector::one_hot(2, 0).unwrap(),
        )])
        .unwrap();
        let pool = MrrPool::generate(&g, &table, &campaign, 40_000, 71);
        let instance =
            OipaInstance::new(&pool, LogisticAdoption::example(), vec![0, 1, 2, 3, 4], 1);
        let sol = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        // Under t1 the best single promoter is a (covers a, b, c, d).
        assert_eq!(sol.plan.set(0), &[0]);
    }
}
