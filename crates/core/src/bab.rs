//! Branch-and-bound driver — Algorithm 1.
//!
//! A max-heap orders open search nodes by the τ upper bound of their
//! subtree. Each node is a pair (partial plan `S̄ᵃ`, exclusion set):
//! popping the top node fixes the global upper bound `U`; branching picks
//! the highest-gain available candidate `v*` (the first greedy selection
//! of the node's own bound computation — the "most influential first"
//! order §V motivates from the power law) and opens two children, one
//! including `v*` and one excluding it. Every bound computation also emits
//! a complete candidate plan whose exact MRR estimate raises the incumbent
//! `L`. Nodes with `U ≤ L` are pruned; the search stops when
//! `U − L ≤ gap · L` (the paper's experiments use 1%), when the heap
//! drains, or when the node cap is hit.
//!
//! # Engines
//!
//! Two interchangeable engines drive the same search
//! ([`BabConfig::engine`]):
//!
//! * [`SolverEngine::Reference`] — every bound computation re-anchors the
//!   τ workspace with a full [`TauState::reset_to`] replay and re-seeds
//!   its greedy from a fresh singleton-gain scan over all
//!   ℓ×|Vᵖ| candidates. Simple, and the equivalence oracle.
//! * [`SolverEngine::Incremental`] (default) — the node's partial plan is
//!   established by trail-based push/pop ([`TauState::assign`] /
//!   [`TauState::pop_to`]): sibling nodes sharing a plan prefix rewind to
//!   the shared prefix instead of replaying. On top of that, each open
//!   node carries an `Arc`-shared **seed cache**: the singleton-gain
//!   vector captured by the last fresh scan on its root-to-node path.
//!   Exclude-children reuse it exactly (their partial plan is unchanged,
//!   so the cached gains are the very values a fresh scan would compute);
//!   include-children reuse it inflated by the certified
//!   [`TangentTable::diagonal_inflation`] factor ρ per extension step, so
//!   the seeds stay valid CELF upper bounds. Once the accumulated slack
//!   exceeds [`BabConfig::max_seed_slack`] the driver falls back to a
//!   fresh scan and re-bases the cache.
//!
//! Both engines visit the same nodes, compute bit-identical bounds, and
//! return bit-identical plans — all selection decisions reduce to integer
//! coverage state plus order-independent floating-point folds (see
//! `tau.rs`), and CELF commits are invariant to seed values as long as
//! those are valid upper bounds (see `greedy.rs`). The incremental engine
//! simply spends far fewer τ evaluations getting there; the `solver`
//! bench family (`oipa-cli bench solver`, `BENCH_solver.json`) tracks the
//! ratio.
//!
//! [`TangentTable::diagonal_inflation`]: crate::tangent::TangentTable::diagonal_inflation

use crate::greedy::{
    compute_bound_celf_with, compute_bound_plain, pack, BoundResult, CelfSeeding, SeedEntry,
};
use crate::plan::AssignmentPlan;
use crate::progressive::compute_bound_progressive_with;
use crate::tangent::TangentTable;
use crate::tau::{TauState, TrailMark};
use crate::{OipaInstance, Solution};
use oipa_graph::hashing::FxHashSet;
use oipa_graph::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// Which `ComputeBound` implementation the driver calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundMethod {
    /// Algorithm 2 with CELF lazy greedy (default; same output as plain).
    Greedy,
    /// Algorithm 2 verbatim (full rescan each iteration) — ablation only.
    PlainGreedy,
    /// Algorithm 3, the progressive estimation with parameter ε (BAB-P).
    Progressive {
        /// Threshold decay ε (the paper fixes 0.5 after tuning).
        eps: f64,
    },
}

/// Which state-management engine drives the search (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverEngine {
    /// Full `reset_to` replay + fresh gain scan per bound (the oracle).
    Reference,
    /// Trail-based push/pop establishment + cross-node seed caching.
    Incremental,
}

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct BabConfig {
    /// Bound routine.
    pub method: BoundMethod,
    /// Relative termination gap: stop when `U − L ≤ gap · L`. The paper's
    /// experiments use 0.01; `0.0` demands the exact `L ≥ U` fixpoint.
    pub gap: f64,
    /// Hard cap on expanded nodes (safety on large instances).
    pub max_nodes: Option<usize>,
    /// Whether to refine tangent anchors as partial plans grow (Fig. 2).
    /// `false` is the ablation mode: anchor-0 majorants throughout.
    pub refine_anchors: bool,
    /// State-management engine (default [`SolverEngine::Incremental`]).
    pub engine: SolverEngine,
    /// Maximum accumulated seed-inflation slack before the incremental
    /// engine re-bases its gain cache with a fresh scan. Must be ≥ 1.
    pub max_seed_slack: f64,
}

impl Default for BabConfig {
    fn default() -> Self {
        BabConfig {
            method: BoundMethod::Greedy,
            gap: 0.01,
            max_nodes: None,
            refine_anchors: true,
            engine: SolverEngine::Incremental,
            max_seed_slack: 4.0,
        }
    }
}

impl BabConfig {
    /// The paper's `BAB` configuration (greedy bound, 1% gap).
    pub fn bab() -> Self {
        Self::default()
    }

    /// The paper's `BAB-P` configuration (progressive bound, 1% gap).
    pub fn bab_p(eps: f64) -> Self {
        BabConfig {
            method: BoundMethod::Progressive { eps },
            ..Self::default()
        }
    }

    /// Checks every field against its documented domain, returning a typed
    /// error instead of panicking (used by fallible entry points such as
    /// [`BranchAndBound::try_new`] and the `PlannerService`).
    pub fn validate(&self) -> Result<(), crate::OipaError> {
        if let BoundMethod::Progressive { eps } = self.method {
            if eps.is_nan() || eps <= 0.0 {
                return Err(crate::OipaError::config(format!(
                    "ε must be positive, got {eps}"
                )));
            }
        }
        if self.gap.is_nan() || self.gap < 0.0 {
            return Err(crate::OipaError::config(format!(
                "gap must be nonnegative, got {}",
                self.gap
            )));
        }
        if self.max_seed_slack.is_nan() || self.max_seed_slack < 1.0 {
            return Err(crate::OipaError::config(format!(
                "max_seed_slack must be ≥ 1, got {}",
                self.max_seed_slack
            )));
        }
        Ok(())
    }
}

/// Search statistics.
#[derive(Debug, Clone, Default)]
pub struct BabStats {
    /// Heap nodes expanded (branchings performed).
    pub nodes_expanded: usize,
    /// Bound computations (2 per branching + 1 root).
    pub bounds_computed: usize,
    /// Nodes discarded because their bound fell under the incumbent.
    pub nodes_pruned: usize,
    /// τ marginal-gain evaluations (the paper's §V-C cost metric).
    pub tau_evaluations: u64,
    /// Bound computations seeded from a cached ancestor gain vector
    /// (incremental engine only).
    pub seed_cache_hits: u64,
    /// Bound computations that fell back to a fresh seeding scan
    /// (incremental engine, cache-capable methods only).
    pub seed_cache_misses: u64,
    /// Trail entries recorded by the τ workspace (samples traversed by
    /// `assign`/`add`, including `reset_to` replays).
    pub trail_pushes: u64,
    /// Trail entries undone by the τ workspace.
    pub trail_pops: u64,
    /// Wall-clock time of `solve`.
    pub elapsed: std::time::Duration,
}

/// Persistent exclusion list: children share their parent's tail, so heap
/// entries cost O(1) to branch instead of O(depth) copies.
#[derive(Debug, Clone, Default)]
struct ExclusionList(Option<Arc<ExclusionNode>>);

#[derive(Debug)]
struct ExclusionNode {
    packed: u64,
    rest: Option<Arc<ExclusionNode>>,
}

impl ExclusionList {
    fn push(&self, j: usize, v: NodeId) -> ExclusionList {
        ExclusionList(Some(Arc::new(ExclusionNode {
            packed: pack(j, v),
            rest: self.0.clone(),
        })))
    }

    /// Writes the exclusions into a caller-pooled set (cleared first), so
    /// bound computations reuse one allocation across all nodes instead
    /// of materializing a fresh `FxHashSet` per bound.
    fn fill_into(&self, set: &mut FxHashSet<u64>) {
        set.clear();
        let mut cur = &self.0;
        while let Some(node) = cur {
            set.insert(node.packed);
            cur = &node.rest;
        }
    }
}

/// Persistent root-to-node assignment path (insertion order), used by the
/// incremental engine to establish a node's partial plan via push/pop.
#[derive(Debug, Clone, Default)]
struct PathList(Option<Arc<PathNode>>);

#[derive(Debug)]
struct PathNode {
    j: u32,
    v: NodeId,
    rest: Option<Arc<PathNode>>,
}

impl PathList {
    fn push(&self, j: usize, v: NodeId) -> PathList {
        PathList(Some(Arc::new(PathNode {
            j: j as u32,
            v,
            rest: self.0.clone(),
        })))
    }

    /// Writes the path root-first into a caller-pooled buffer.
    fn write_into(&self, out: &mut Vec<(usize, NodeId)>) {
        out.clear();
        let mut cur = &self.0;
        while let Some(node) = cur {
            out.push((node.j as usize, node.v));
            cur = &node.rest;
        }
        out.reverse();
    }
}

/// A cached singleton-gain vector attached to an open node. The values
/// are valid upper bounds on the singleton gains at that node's
/// partial-plan state; `exact` marks vectors whose values are *exactly*
/// what a fresh scan would compute there (required by the progressive
/// bound, and letting CELF skip pre-commit re-evaluation).
struct SeedVec {
    entries: Vec<SeedEntry>,
    exact: bool,
}

/// How one bound computation seeds its greedy (decided by the driver).
enum BoundSeeding<'s> {
    /// Full singleton scan; optionally capture it as an exact vector.
    Fresh { capture: bool },
    /// Reuse a cached vector (×`inflate` to stay an upper bound here);
    /// optionally capture the tightened effective vector for children.
    Reuse {
        vec: &'s SeedVec,
        inflate: f64,
        refresh: bool,
    },
}

/// One open search node.
struct OpenNode {
    upper: f64,
    plan: AssignmentPlan,
    excluded: ExclusionList,
    branch: Option<(usize, NodeId)>,
    /// Root-to-node assignment path (incremental engine).
    path: PathList,
    /// Cached singleton-gain vector valid at this node.
    seeds: Option<Arc<SeedVec>>,
    /// Accumulated worst-case pessimism of `seeds` vs a fresh scan; once
    /// an include chain pushes it past `max_seed_slack` the driver
    /// re-bases with a fresh scan.
    slack: f64,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.upper == other.upper
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> Ordering {
        self.upper
            .partial_cmp(&other.upper)
            .expect("bounds are finite")
            // Tie-break: deeper plans first (cheaper to close).
            .then_with(|| self.plan.size().cmp(&other.plan.size()))
    }
}

/// Per-solve mutable search machinery (τ workspace + pooled scratch).
struct SearchState<'s> {
    state: TauState<'s>,
    /// Established assignment stack: `(assignment, mark-before-assign)`.
    stack: Vec<((usize, NodeId), TrailMark)>,
    /// Pooled exclusion set, refilled per node expansion.
    excl: FxHashSet<u64>,
    /// Pooled root-first path buffer.
    path_buf: Vec<(usize, NodeId)>,
}

impl<'s> SearchState<'s> {
    /// Moves the τ workspace to the partial plan described by `target`
    /// (root-first), popping to the longest common prefix with the
    /// currently established path and pushing the remainder.
    fn establish(&mut self, target: &[(usize, NodeId)]) {
        let mut common = 0usize;
        while common < self.stack.len()
            && common < target.len()
            && self.stack[common].0 == target[common]
        {
            common += 1;
        }
        while self.stack.len() > common {
            let (_, mark) = self.stack.pop().expect("stack length checked");
            self.state.pop_to(mark);
        }
        for &(j, v) in &target[common..] {
            let mark = self.state.mark();
            self.state.assign(j, v);
            self.stack.push(((j, v), mark));
        }
    }
}

/// The branch-and-bound solver. Holds the reusable τ workspace; one
/// instance can solve repeatedly (e.g. across a parameter sweep) without
/// reallocating θ-sized buffers.
///
/// ```
/// use oipa_core::{BabConfig, BranchAndBound, OipaInstance};
/// use oipa_sampler::MrrPool;
/// use oipa_topics::LogisticAdoption;
///
/// let (graph, table, campaign) = oipa_sampler::testkit::fig1();
/// let pool = MrrPool::generate(&graph, &table, &campaign, 20_000, 42);
/// let instance = OipaInstance::new(&pool, LogisticAdoption::example(), (0..5).collect(), 2).unwrap();
/// let solution = BranchAndBound::new(&instance, BabConfig::bab()).solve();
/// assert_eq!(solution.plan.set(0), &[0]); // tax piece -> user a
/// assert_eq!(solution.plan.set(1), &[4]); // healthcare piece -> user e
/// ```
pub struct BranchAndBound<'a> {
    instance: &'a OipaInstance<'a>,
    config: BabConfig,
    table: TangentTable,
    /// Certified per-step seed inflation (None = no finite bound; the
    /// incremental engine then fresh-scans every include bound).
    rho: Option<f64>,
}

impl<'a> BranchAndBound<'a> {
    /// Creates a solver for an instance, panicking on an invalid
    /// configuration. Use [`BranchAndBound::try_new`] to get a typed error
    /// instead.
    pub fn new(instance: &'a OipaInstance<'a>, config: BabConfig) -> Self {
        Self::try_new(instance, config).expect("invalid BabConfig")
    }

    /// Creates a solver for an instance, validating the configuration.
    pub fn try_new(
        instance: &'a OipaInstance<'a>,
        config: BabConfig,
    ) -> Result<Self, crate::OipaError> {
        config.validate()?;
        let table = if config.refine_anchors {
            TangentTable::new(instance.model, instance.ell())
        } else {
            TangentTable::unrefined(instance.model, instance.ell())
        };
        let rho = table.diagonal_inflation();
        Ok(BranchAndBound {
            instance,
            config,
            table,
            rho,
        })
    }

    /// Decides how the bound at a child-or-node state seeds its greedy,
    /// plus the pessimism slack its output vector will carry.
    ///
    /// `inflate` is 1.0 for a bound at the node's own state (the exclude
    /// branch and the node's re-pop) and ρ for a bound one assignment
    /// deeper (the include branch).
    fn plan_seeding<'n>(
        &self,
        node_seeds: Option<&'n Arc<SeedVec>>,
        node_slack: f64,
        include_step: bool,
    ) -> (BoundSeeding<'n>, f64) {
        let cacheable = match self.config.method {
            BoundMethod::Greedy | BoundMethod::Progressive { .. } => true,
            BoundMethod::PlainGreedy => false,
        };
        if !cacheable || self.config.engine == SolverEngine::Reference {
            return (BoundSeeding::Fresh { capture: false }, 1.0);
        }
        let fresh = (BoundSeeding::Fresh { capture: true }, 1.0);
        let Some(vec) = node_seeds else { return fresh };
        match self.config.method {
            BoundMethod::Greedy if include_step => match self.rho {
                Some(rho) if node_slack * rho <= self.config.max_seed_slack => (
                    BoundSeeding::Reuse {
                        vec,
                        inflate: rho,
                        refresh: true,
                    },
                    node_slack * rho,
                ),
                _ => fresh,
            },
            BoundMethod::Greedy => (
                BoundSeeding::Reuse {
                    vec,
                    inflate: 1.0,
                    // An exact vector is already the sharpest statement
                    // about this state; otherwise tighten it.
                    refresh: !vec.exact,
                },
                node_slack,
            ),
            // The progressive sweep depends on the seed values themselves
            // (ordering + cut-offs), so only exact same-state vectors are
            // reusable — which exclude branches always have.
            BoundMethod::Progressive { .. } if !include_step && vec.exact => (
                BoundSeeding::Reuse {
                    vec,
                    inflate: 1.0,
                    refresh: false,
                },
                node_slack,
            ),
            BoundMethod::Progressive { .. } => fresh,
            BoundMethod::PlainGreedy => unreachable!("filtered above"),
        }
    }

    /// Runs one bound computation at the node state described by `path` /
    /// `partial`, under the configured engine and the given seeding plan.
    /// Returns the bound plus the captured seed vector, if any.
    #[allow(clippy::too_many_arguments)]
    fn bound(
        &self,
        search: &mut SearchState<'_>,
        stats: &mut BabStats,
        path: &[(usize, NodeId)],
        partial: &AssignmentPlan,
        excluded: &FxHashSet<u64>,
        seeding: BoundSeeding<'_>,
    ) -> (BoundResult, Option<SeedVec>) {
        let promoters = &self.instance.promoters;
        let k = self.instance.budget;
        if self.config.engine == SolverEngine::Reference {
            search.state.reset_to(partial);
        } else {
            search.establish(path);
        }
        let mark = search.state.mark();
        let state = &mut search.state;
        let mut captured: Option<Vec<SeedEntry>> = None;
        let mut captured_exact = false;
        let result = match self.config.method {
            BoundMethod::PlainGreedy => {
                // The ablation method stays cache-free by design: its
                // whole point is measuring the rescan cost.
                compute_bound_plain(state, partial, promoters, excluded, k)
            }
            BoundMethod::Greedy => {
                let celf_seeding = match seeding {
                    BoundSeeding::Fresh { capture } => {
                        if capture {
                            stats.seed_cache_misses += 1;
                            captured = Some(Vec::new());
                            captured_exact = true;
                        }
                        CelfSeeding::Fresh
                    }
                    BoundSeeding::Reuse {
                        vec,
                        inflate,
                        refresh,
                    } => {
                        stats.seed_cache_hits += 1;
                        if refresh {
                            captured = Some(Vec::with_capacity(vec.entries.len()));
                        }
                        CelfSeeding::Cached {
                            entries: &vec.entries,
                            inflate,
                            exact: vec.exact && inflate == 1.0,
                        }
                    }
                };
                compute_bound_celf_with(
                    state,
                    partial,
                    promoters,
                    excluded,
                    k,
                    celf_seeding,
                    captured.as_mut(),
                )
            }
            BoundMethod::Progressive { eps } => match seeding {
                BoundSeeding::Reuse { vec, .. } => {
                    stats.seed_cache_hits += 1;
                    compute_bound_progressive_with(
                        state,
                        partial,
                        promoters,
                        excluded,
                        k,
                        eps,
                        Some(&vec.entries),
                        None,
                    )
                }
                BoundSeeding::Fresh { capture } => {
                    if capture {
                        stats.seed_cache_misses += 1;
                        captured = Some(Vec::new());
                        captured_exact = true;
                    }
                    compute_bound_progressive_with(
                        state,
                        partial,
                        promoters,
                        excluded,
                        k,
                        eps,
                        None,
                        captured.as_mut(),
                    )
                }
            },
        };
        search.state.pop_to(mark);
        let captured = captured.map(|entries| SeedVec {
            entries,
            exact: captured_exact,
        });
        (result, captured)
    }

    /// Seed vector for a child node: a captured vector re-bases the
    /// cache at the bound's state, otherwise the node's own vector is
    /// inherited (exclude branches share the parent state).
    fn child_seeds(
        captured: Option<SeedVec>,
        inherited: Option<&Arc<SeedVec>>,
    ) -> Option<Arc<SeedVec>> {
        match captured {
            Some(vec) => Some(Arc::new(vec)),
            None => inherited.cloned(),
        }
    }

    /// Runs Algorithm 1 to completion and returns the best plan found,
    /// with utilities in user units.
    pub fn solve(&mut self) -> Solution {
        let start = Instant::now();
        let inst = self.instance;
        let scale = inst.pool.scale();
        let mut search = SearchState {
            state: TauState::new(inst.pool, &self.table, inst.model),
            stack: Vec::new(),
            excl: Default::default(),
            path_buf: Vec::new(),
        };
        let mut stats = BabStats::default();

        // Root bound (Lines 2–5).
        let empty = AssignmentPlan::empty(inst.ell());
        let no_exclusions: FxHashSet<u64> = Default::default();
        let (root_seeding, root_slack) = self.plan_seeding(None, 1.0, false);
        let (root, root_capture) = self.bound(
            &mut search,
            &mut stats,
            &[],
            &empty,
            &no_exclusions,
            root_seeding,
        );
        stats.bounds_computed += 1;
        let mut best_plan = root.plan.clone();
        let mut lower = root.sigma;
        let mut global_upper = root.tau;
        let root_seeds = Self::child_seeds(root_capture, None);
        let mut heap = BinaryHeap::new();
        heap.push(OpenNode {
            upper: root.tau,
            plan: empty,
            excluded: ExclusionList::default(),
            branch: root.first_pick,
            path: PathList::default(),
            seeds: root_seeds,
            slack: root_slack,
        });

        // Search loop (Lines 6–18).
        while let Some(node) = heap.pop() {
            global_upper = node.upper;
            // Termination: exact fixpoint or within the configured gap.
            if global_upper <= lower + self.config.gap * lower.max(f64::MIN_POSITIVE) {
                global_upper = global_upper.max(lower);
                break;
            }
            if node.upper <= lower {
                stats.nodes_pruned += 1;
                continue;
            }
            let Some((j_star, v_star)) = node.branch else {
                // Leaf: pool exhausted under this node.
                continue;
            };
            if node.plan.size() >= inst.budget {
                continue;
            }
            if let Some(cap) = self.config.max_nodes {
                if stats.nodes_expanded >= cap {
                    break;
                }
            }
            stats.nodes_expanded += 1;

            // Pooled per-expansion scratch: exclusions + root-first path.
            let mut excl = std::mem::take(&mut search.excl);
            node.excluded.fill_into(&mut excl);
            let mut path = std::mem::take(&mut search.path_buf);
            node.path.write_into(&mut path);

            // Include branch: S̄ᵃ = S̄ ∪_{j*} {v*} (Line 11).
            let mut include_plan = node.plan.clone();
            include_plan.insert(j_star, v_star);
            path.push((j_star, v_star));
            let (inc_seeding, inc_slack) = self.plan_seeding(node.seeds.as_ref(), node.slack, true);
            let (inc, inc_capture) = self.bound(
                &mut search,
                &mut stats,
                &path,
                &include_plan,
                &excl,
                inc_seeding,
            );
            stats.bounds_computed += 1;
            if inc.sigma > lower {
                lower = inc.sigma;
                best_plan = inc.plan.clone();
            }
            if inc.tau > lower {
                let seeds = Self::child_seeds(inc_capture, node.seeds.as_ref());
                heap.push(OpenNode {
                    upper: inc.tau,
                    plan: include_plan,
                    excluded: node.excluded.clone(),
                    branch: inc.first_pick,
                    path: node.path.push(j_star, v_star),
                    seeds,
                    slack: inc_slack,
                });
            } else {
                stats.nodes_pruned += 1;
            }

            // Exclude branch: S̄ᵇ = S̄ with (j*, v*) removed from the pool
            // (Lines 10, 12, 18).
            path.pop();
            excl.insert(pack(j_star, v_star));
            let (exc_seeding, exc_slack) =
                self.plan_seeding(node.seeds.as_ref(), node.slack, false);
            let (exc, exc_capture) = self.bound(
                &mut search,
                &mut stats,
                &path,
                &node.plan,
                &excl,
                exc_seeding,
            );
            stats.bounds_computed += 1;
            if exc.sigma > lower {
                lower = exc.sigma;
                best_plan = exc.plan.clone();
            }
            if exc.tau > lower {
                let seeds = Self::child_seeds(exc_capture, node.seeds.as_ref());
                heap.push(OpenNode {
                    upper: exc.tau,
                    plan: node.plan,
                    excluded: node.excluded.push(j_star, v_star),
                    branch: exc.first_pick,
                    path: node.path,
                    seeds,
                    slack: exc_slack,
                });
            } else {
                stats.nodes_pruned += 1;
            }

            // Return the pooled scratch.
            search.excl = excl;
            search.path_buf = path;
        }
        if heap.is_empty() {
            // Search exhausted: the incumbent is optimal w.r.t. the pruning
            // bound, so the certified upper bound collapses onto it.
            global_upper = lower;
        }

        stats.tau_evaluations = search.state.evaluations;
        stats.trail_pushes = search.state.trail_pushed;
        stats.trail_pops = search.state.trail_popped;
        stats.elapsed = start.elapsed();
        Solution {
            plan: best_plan,
            utility: lower * scale,
            upper_bound: global_upper.max(lower) * scale,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::testkit::fig1;
    use oipa_sampler::MrrPool;
    use oipa_topics::LogisticAdoption;

    fn fig1_instance(theta: usize) -> (MrrPool, LogisticAdoption) {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, theta, 61);
        (pool, LogisticAdoption::example())
    }

    #[test]
    fn solves_fig1_exactly() {
        let (pool, model) = fig1_instance(80_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 2).unwrap();
        let mut solver = BranchAndBound::new(
            &instance,
            BabConfig {
                gap: 0.0,
                ..BabConfig::bab()
            },
        );
        let sol = solver.solve();
        assert_eq!(sol.plan.set(0), &[0], "t1 -> a");
        assert_eq!(sol.plan.set(1), &[4], "t2 -> e");
        assert!((sol.utility - 1.045).abs() < 0.05, "σ = {}", sol.utility);
        assert!(sol.upper_bound + 1e-9 >= sol.utility);
    }

    #[test]
    fn bab_p_matches_bab_on_fig1() {
        let (pool, model) = fig1_instance(60_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 2).unwrap();
        let bab = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        let bab_p = BranchAndBound::new(&instance, BabConfig::bab_p(0.5)).solve();
        assert_eq!(bab.plan, bab_p.plan, "BAB-P diverged on a trivial instance");
        assert!((bab.utility - bab_p.utility).abs() < 1e-9);
    }

    #[test]
    fn respects_budget() {
        let (pool, model) = fig1_instance(20_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 3).unwrap();
        let sol = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        assert!(sol.plan.size() <= 3);
    }

    #[test]
    fn budget_larger_than_pool_terminates() {
        let (pool, model) = fig1_instance(10_000);
        // 2 pieces × 5 promoters = 10 possible assignments; ask for 10.
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 10).unwrap();
        let sol = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        assert!(sol.plan.size() <= 10);
        assert!(sol.utility > 0.0);
    }

    #[test]
    fn node_cap_respected() {
        let (pool, model) = fig1_instance(10_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 4).unwrap();
        let mut solver = BranchAndBound::new(
            &instance,
            BabConfig {
                max_nodes: Some(3),
                gap: 0.0,
                ..BabConfig::bab()
            },
        );
        let sol = solver.solve();
        assert!(sol.stats.nodes_expanded <= 3);
        assert!(sol.utility > 0.0, "incumbent must still exist");
    }

    #[test]
    fn monotone_in_budget() {
        let (pool, model) = fig1_instance(40_000);
        let mut prev = 0.0;
        for k in 1..=4usize {
            let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], k).unwrap();
            let sol = BranchAndBound::new(&instance, BabConfig::bab()).solve();
            assert!(
                sol.utility + 1e-6 >= prev,
                "utility dropped from {prev} to {} at k={k}",
                sol.utility
            );
            prev = sol.utility;
        }
    }

    #[test]
    fn stats_populated() {
        let (pool, model) = fig1_instance(10_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 2).unwrap();
        let sol = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        assert!(sol.stats.bounds_computed >= 1);
        assert!(sol.stats.tau_evaluations > 0);
        // The incremental default records trail traffic and a root miss.
        assert!(sol.stats.trail_pushes > 0);
        assert!(sol.stats.seed_cache_hits + sol.stats.seed_cache_misses >= 1);
    }

    #[test]
    fn engines_agree_on_fig1() {
        let (pool, model) = fig1_instance(30_000);
        let instance = OipaInstance::new(&pool, model, vec![0, 1, 2, 3, 4], 3).unwrap();
        let reference = BranchAndBound::new(
            &instance,
            BabConfig {
                engine: SolverEngine::Reference,
                gap: 0.0,
                ..BabConfig::bab()
            },
        )
        .solve();
        let incremental = BranchAndBound::new(
            &instance,
            BabConfig {
                engine: SolverEngine::Incremental,
                gap: 0.0,
                ..BabConfig::bab()
            },
        )
        .solve();
        assert_eq!(reference.plan, incremental.plan);
        assert_eq!(reference.utility.to_bits(), incremental.utility.to_bits());
        assert_eq!(
            reference.upper_bound.to_bits(),
            incremental.upper_bound.to_bits()
        );
        assert_eq!(
            reference.stats.nodes_expanded,
            incremental.stats.nodes_expanded
        );
        assert!(incremental.stats.tau_evaluations <= reference.stats.tau_evaluations);
    }

    #[test]
    fn single_piece_campaign_reduces_to_im() {
        // ℓ = 1: OIPA degenerates to (a logistic-weighted) IM; the solver
        // must pick the highest-spread promoter.
        let (g, table, _) = fig1();
        let campaign = oipa_topics::Campaign::new(vec![oipa_topics::Piece::new(
            "only",
            oipa_topics::TopicVector::one_hot(2, 0).unwrap(),
        )])
        .unwrap();
        let pool = MrrPool::generate(&g, &table, &campaign, 40_000, 71);
        let instance =
            OipaInstance::new(&pool, LogisticAdoption::example(), vec![0, 1, 2, 3, 4], 1).unwrap();
        let sol = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        // Under t1 the best single promoter is a (covers a, b, c, d).
        assert_eq!(sol.plan.set(0), &[0]);
    }
}
