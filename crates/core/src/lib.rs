//! # oipa-core
//!
//! The paper's contribution: the **Optimal Influential Pieces Assignment**
//! (OIPA) problem and its solvers.
//!
//! Given a social graph with topic-aware influence probabilities, a
//! campaign of ℓ viral pieces, a promoter pool `V^p` and a budget `k`,
//! find the assignment plan `S̄ = {S_1..S_ℓ}` (|S̄| ≤ k) maximizing the
//! adoption utility under the logistic model of Eqn. (1).
//!
//! Module map (paper section → code):
//!
//! | Paper | Module |
//! |---|---|
//! | §III-B plans, containment, unions | [`plan`] |
//! | §V-A MRR-based AU estimation (Eqn. 6) | [`estimator`] |
//! | Fig. 2 + Appendix `Refine` tangent construction | [`tangent`] |
//! | Definition 6 upper bound τ over MRR sets | [`tau`] |
//! | Algorithm 2 `ComputeBound` (greedy, CELF-accelerated) | [`greedy`] |
//! | Algorithm 3 `ComputeBoundPro` (progressive thresholds) | [`progressive`] |
//! | Algorithm 1 branch-and-bound driver | [`bab`] |
//! | exact enumeration for validation | [`brute`] |
//! | §IV-A non-submodularity / monotonicity witnesses | tests throughout |
//!
//! The solvers operate on an [`OipaInstance`]: an [`MrrPool`]
//! (pre-sampled), a [`LogisticAdoption`] model, a promoter pool, and a
//! budget. All returned utilities are in *user* units (scaled by `n/θ`).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod auto;
pub mod bab;
pub mod brute;
mod celf;
pub mod error;
pub mod estimator;
pub mod greedy;
pub mod hetero;
pub mod plan;
pub mod progressive;
pub mod relaxed;
pub mod tangent;
pub mod tau;

pub use bab::{BabConfig, BabStats, BoundMethod, BranchAndBound, SolverEngine};
pub use error::OipaError;
pub use estimator::AuEstimator;
pub use greedy::SeedEntry;
pub use plan::AssignmentPlan;
pub use tangent::{TangentLine, TangentTable};
pub use tau::TrailMark;

use oipa_graph::NodeId;
use oipa_sampler::MrrPool;
use oipa_topics::LogisticAdoption;

/// A fully specified OIPA problem instance over a pre-sampled MRR pool.
///
/// The pool carries the graph scale (`n`, θ, ℓ); the instance adds the
/// adoption model, the eligible promoter pool `V^p`, and the budget `k`.
pub struct OipaInstance<'a> {
    /// Pre-sampled MRR sets (θ samples × ℓ pieces).
    pub pool: &'a MrrPool,
    /// Logistic adoption parameters (α, β).
    pub model: LogisticAdoption,
    /// Eligible promoters `V^p` (deduplicated, sorted on construction).
    pub promoters: Vec<NodeId>,
    /// Budget `k` = total number of promoter assignments.
    pub budget: usize,
}

impl<'a> OipaInstance<'a> {
    /// Creates an instance, normalizing the promoter pool (sort + dedup).
    ///
    /// Input validation is typed rather than panicking: a zero budget, an
    /// empty promoter pool, or a promoter id outside the graph produce the
    /// corresponding [`OipaError`] variant with an actionable message.
    pub fn new(
        pool: &'a MrrPool,
        model: LogisticAdoption,
        mut promoters: Vec<NodeId>,
        budget: usize,
    ) -> Result<Self, OipaError> {
        if budget == 0 {
            return Err(OipaError::InvalidBudget);
        }
        promoters.sort_unstable();
        promoters.dedup();
        if let Some(&bad) = promoters
            .iter()
            .find(|&&v| (v as usize) >= pool.node_count())
        {
            return Err(OipaError::PromoterOutOfRange {
                promoter: bad,
                node_count: pool.node_count(),
            });
        }
        if promoters.is_empty() {
            return Err(OipaError::EmptyPromoters);
        }
        Ok(OipaInstance {
            pool,
            model,
            promoters,
            budget,
        })
    }

    /// Number of pieces ℓ.
    #[inline]
    pub fn ell(&self) -> usize {
        self.pool.ell()
    }

    /// The paper's experimental promoter pool: a uniform `fraction` of all
    /// users (§VI-A uses 10%).
    pub fn sample_promoters<R: rand::Rng + ?Sized>(
        rng: &mut R,
        node_count: usize,
        fraction: f64,
    ) -> Vec<NodeId> {
        assert!((0.0..=1.0).contains(&fraction));
        let target = ((node_count as f64 * fraction).round() as usize).max(1);
        rand::seq::index::sample(rng, node_count, target.min(node_count))
            .into_iter()
            .map(|i| i as NodeId)
            .collect()
    }
}

/// A solver result: the plan, its estimated utility (user units), the final
/// upper bound, and search statistics.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The assignment plan found.
    pub plan: AssignmentPlan,
    /// MRR-estimated adoption utility σ̂(plan), in users.
    pub utility: f64,
    /// The global upper bound at termination (≥ utility up to the
    /// configured gap).
    pub upper_bound: f64,
    /// Search statistics.
    pub stats: BabStats,
}
