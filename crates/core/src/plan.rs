//! Assignment plans `S̄ = {S_1, …, S_ℓ}` and the lattice operations of
//! §III-B (containment, union, i-union).

use oipa_graph::NodeId;
use serde::{Deserialize, Serialize};

/// An assignment plan: one seed set per viral piece.
///
/// Seed sets are kept sorted and duplicate-free, so containment and union
/// are linear merges and equality is structural.
///
/// ```
/// use oipa_core::AssignmentPlan;
///
/// let mut plan = AssignmentPlan::empty(2);
/// plan.insert(0, 7);
/// plan.insert(1, 3);
/// assert_eq!(plan.size(), 2);
/// let bigger = plan.i_union(0, &[9]);
/// assert!(plan.contained_in(&bigger));   // Definition 2
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentPlan {
    sets: Vec<Vec<NodeId>>,
}

impl AssignmentPlan {
    /// The empty plan `{∅, …, ∅}` for ℓ pieces.
    pub fn empty(ell: usize) -> Self {
        assert!(ell >= 1, "plans need at least one piece");
        AssignmentPlan {
            sets: vec![Vec::new(); ell],
        }
    }

    /// Builds a plan from per-piece seed lists (sorted/deduplicated here).
    pub fn from_sets(mut sets: Vec<Vec<NodeId>>) -> Self {
        assert!(!sets.is_empty(), "plans need at least one piece");
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        AssignmentPlan { sets }
    }

    /// Number of pieces ℓ.
    #[inline]
    pub fn ell(&self) -> usize {
        self.sets.len()
    }

    /// Total assignments `|S̄| = Σ_j |S_j|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the plan assigns nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(|s| s.is_empty())
    }

    /// The seed set `S_j`.
    #[inline]
    pub fn set(&self, j: usize) -> &[NodeId] {
        &self.sets[j]
    }

    /// Iterates `(piece, node)` assignments.
    pub fn assignments(&self) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(j, s)| s.iter().map(move |&v| (j, v)))
    }

    /// Whether `v ∈ S_j`.
    pub fn contains(&self, j: usize, v: NodeId) -> bool {
        self.sets[j].binary_search(&v).is_ok()
    }

    /// Adds `v` to `S_j` (the i-union with a singleton, Definition 4).
    /// Returns `false` if already present.
    pub fn insert(&mut self, j: usize, v: NodeId) -> bool {
        match self.sets[j].binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.sets[j].insert(pos, v);
                true
            }
        }
    }

    /// Definition 2: containment `self ⊆ other` iff `S_j ⊆ S'_j` ∀j.
    pub fn contained_in(&self, other: &AssignmentPlan) -> bool {
        if self.ell() != other.ell() {
            return false;
        }
        self.sets
            .iter()
            .zip(&other.sets)
            .all(|(a, b)| a.iter().all(|v| b.binary_search(v).is_ok()))
    }

    /// Definition 3: plan union (piece-wise set union).
    pub fn union(&self, other: &AssignmentPlan) -> AssignmentPlan {
        assert_eq!(self.ell(), other.ell(), "union requires equal piece counts");
        let sets = self
            .sets
            .iter()
            .zip(&other.sets)
            .map(|(a, b)| {
                // Linear merge of two sorted deduplicated lists.
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            out.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend_from_slice(&a[i..]);
                out.extend_from_slice(&b[j..]);
                out
            })
            .collect();
        AssignmentPlan { sets }
    }

    /// Definition 4: the i-union `S̄ ∪_i S` adding a whole seed set to one
    /// piece.
    pub fn i_union(&self, i: usize, seeds: &[NodeId]) -> AssignmentPlan {
        let mut out = self.clone();
        for &v in seeds {
            out.insert(i, v);
        }
        out
    }

    /// The per-piece seed vectors (for the simulator API).
    pub fn to_vecs(&self) -> Vec<Vec<NodeId>> {
        self.sets.clone()
    }
}

impl std::fmt::Display for AssignmentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (j, s) in self.sets.iter().enumerate() {
            if j > 0 {
                write!(f, ", ")?;
            }
            write!(f, "S{j}={s:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan() {
        let p = AssignmentPlan::empty(3);
        assert_eq!(p.ell(), 3);
        assert_eq!(p.size(), 0);
        assert!(p.is_empty());
    }

    #[test]
    fn insert_and_contains() {
        let mut p = AssignmentPlan::empty(2);
        assert!(p.insert(0, 5));
        assert!(!p.insert(0, 5));
        assert!(p.insert(0, 2));
        assert_eq!(p.set(0), &[2, 5]);
        assert!(p.contains(0, 5));
        assert!(!p.contains(1, 5));
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn from_sets_normalizes() {
        let p = AssignmentPlan::from_sets(vec![vec![3, 1, 3], vec![]]);
        assert_eq!(p.set(0), &[1, 3]);
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn containment_definition2() {
        let small = AssignmentPlan::from_sets(vec![vec![1], vec![]]);
        let big = AssignmentPlan::from_sets(vec![vec![1, 2], vec![7]]);
        assert!(small.contained_in(&big));
        assert!(!big.contained_in(&small));
        assert!(small.contained_in(&small));
        // Same elements on a different piece do not count.
        let moved = AssignmentPlan::from_sets(vec![vec![], vec![1]]);
        assert!(!moved.contained_in(&big.clone()) || big.set(1).contains(&1));
        assert!(!small.contained_in(&moved));
    }

    #[test]
    fn union_definition3() {
        let a = AssignmentPlan::from_sets(vec![vec![1, 3], vec![5]]);
        let b = AssignmentPlan::from_sets(vec![vec![2, 3], vec![]]);
        let u = a.union(&b);
        assert_eq!(u.set(0), &[1, 2, 3]);
        assert_eq!(u.set(1), &[5]);
        assert!(a.contained_in(&u) && b.contained_in(&u));
    }

    #[test]
    fn i_union_definition4() {
        let a = AssignmentPlan::from_sets(vec![vec![1], vec![9]]);
        let u = a.i_union(0, &[4, 1]);
        assert_eq!(u.set(0), &[1, 4]);
        assert_eq!(u.set(1), &[9]);
    }

    #[test]
    fn assignments_iterator() {
        let p = AssignmentPlan::from_sets(vec![vec![2], vec![7, 8]]);
        let all: Vec<_> = p.assignments().collect();
        assert_eq!(all, vec![(0, 2), (1, 7), (1, 8)]);
    }

    #[test]
    fn display_compact() {
        let p = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        assert_eq!(format!("{p}"), "{S0=[0], S1=[4]}");
    }
}
