//! Golden-equivalence and trail-invariance suite for the incremental
//! branch-and-bound engine.
//!
//! The incremental engine (trail-based τ push/pop + cross-node seed
//! caching) promises **bitwise identical** solver output to the reference
//! engine (full `reset_to` replay + fresh gain scans per bound) — faster,
//! not different. These tests enforce that promise on seeded random
//! instances across bound methods and configurations, and property-test
//! the underlying trail invariant: any interleaving of
//! `assign`/`add`/`pop_to`/`reset_to` leaves τ/σ totals bit-identical to
//! a fresh replay of the equivalent plan.

use oipa_core::tangent::TangentTable;
use oipa_core::tau::TauState;
use oipa_core::{
    AssignmentPlan, BabConfig, BoundMethod, BranchAndBound, OipaInstance, Solution, SolverEngine,
};
use oipa_sampler::testkit::small_random_instance;
use oipa_sampler::MrrPool;
use oipa_topics::LogisticAdoption;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One seeded random instance: pool + promoters + model.
struct Instance {
    pool: MrrPool,
    model: LogisticAdoption,
    promoters: Vec<u32>,
    k: usize,
}

fn random_instance(
    seed: u64,
    n: u32,
    m: usize,
    ell: usize,
    theta: usize,
    k: usize,
    alpha: f64,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, table, campaign) = small_random_instance(&mut rng, n, m, ell + 1, ell);
    let pool = MrrPool::generate(&g, &table, &campaign, theta, seed ^ 0xbeef);
    let promoters: Vec<u32> = (0..n).step_by(3).collect();
    // α deep in the coverage range keeps the logistic genuinely
    // non-concave over integer coverage, so the branch-and-bound really
    // branches (α ≤ 2 with β = 1 makes σ integer-concave and the search
    // collapses to pure greedy at the root).
    Instance {
        pool,
        model: LogisticAdoption::new(alpha, 1.0),
        promoters,
        k,
    }
}

fn solve_with(inst: &Instance, config: BabConfig) -> Solution {
    let oipa = OipaInstance::new(&inst.pool, inst.model, inst.promoters.clone(), inst.k).unwrap();
    BranchAndBound::new(&oipa, config).solve()
}

/// Asserts the two engines produced bit-identical search output.
fn assert_solutions_identical(reference: &Solution, incremental: &Solution, label: &str) {
    assert_eq!(reference.plan, incremental.plan, "{label}: plans diverged");
    assert_eq!(
        reference.utility.to_bits(),
        incremental.utility.to_bits(),
        "{label}: utility diverged ({} vs {})",
        reference.utility,
        incremental.utility
    );
    assert_eq!(
        reference.upper_bound.to_bits(),
        incremental.upper_bound.to_bits(),
        "{label}: upper bound diverged"
    );
    assert_eq!(
        reference.stats.nodes_expanded, incremental.stats.nodes_expanded,
        "{label}: node counts diverged"
    );
    assert_eq!(
        reference.stats.bounds_computed, incremental.stats.bounds_computed,
        "{label}: bound counts diverged"
    );
    assert_eq!(
        reference.stats.nodes_pruned, incremental.stats.nodes_pruned,
        "{label}: prune counts diverged"
    );
    assert!(
        incremental.stats.tau_evaluations <= reference.stats.tau_evaluations,
        "{label}: incremental engine used MORE τ evaluations ({} vs {})",
        incremental.stats.tau_evaluations,
        reference.stats.tau_evaluations
    );
}

/// The golden test: BAB (CELF), BAB (plain) and BAB-P return bitwise
/// identical plans/bounds/search shapes under both engines on three
/// seeded random instances, at both the paper gap and the exact fixpoint.
#[test]
fn golden_engines_identical_on_random_instances() {
    let instances = [
        ("rand-40", random_instance(11, 40, 260, 2, 12_000, 3, 3.0)),
        ("rand-60", random_instance(23, 60, 420, 3, 16_000, 4, 3.5)),
        ("rand-80", random_instance(37, 80, 640, 3, 20_000, 4, 4.0)),
    ];
    let methods = [
        ("celf", BoundMethod::Greedy),
        ("plain", BoundMethod::PlainGreedy),
        ("bab-p", BoundMethod::Progressive { eps: 0.5 }),
    ];
    for (iname, inst) in &instances {
        for (mname, method) in methods {
            for gap in [0.01, 0.0] {
                let base = BabConfig {
                    method,
                    gap,
                    max_nodes: Some(200),
                    ..BabConfig::bab()
                };
                let reference = solve_with(
                    inst,
                    BabConfig {
                        engine: SolverEngine::Reference,
                        ..base
                    },
                );
                let incremental = solve_with(
                    inst,
                    BabConfig {
                        engine: SolverEngine::Incremental,
                        ..base
                    },
                );
                let label = format!("{iname}/{mname}/gap={gap}");
                assert_solutions_identical(&reference, &incremental, &label);
            }
        }
    }
}

/// The cache also has to stay exact with anchor refinement disabled (the
/// ablation table) and across seed-slack settings, including a slack cap
/// of 1 (exclude-reuse only) and a huge cap (maximal inflation reuse).
#[test]
fn golden_equivalence_across_configurations() {
    let inst = random_instance(51, 50, 340, 3, 10_000, 4, 3.5);
    for refine in [true, false] {
        for slack in [1.0, 2.0, 1e9] {
            let base = BabConfig {
                gap: 0.0,
                max_nodes: Some(150),
                refine_anchors: refine,
                max_seed_slack: slack,
                ..BabConfig::bab()
            };
            let reference = solve_with(
                &inst,
                BabConfig {
                    engine: SolverEngine::Reference,
                    ..base
                },
            );
            let incremental = solve_with(
                &inst,
                BabConfig {
                    engine: SolverEngine::Incremental,
                    ..base
                },
            );
            let label = format!("refine={refine}/slack={slack}");
            assert_solutions_identical(&reference, &incremental, &label);
        }
    }
}

/// The headline perf claim: on a mid-size instance the incremental engine
/// needs at most half the τ evaluations of the reference engine for the
/// default (CELF) bound.
#[test]
fn incremental_engine_halves_tau_evaluations() {
    let inst = random_instance(29, 120, 900, 4, 20_000, 6, 4.5);
    let base = BabConfig {
        max_nodes: Some(120),
        ..BabConfig::bab()
    };
    let reference = solve_with(
        &inst,
        BabConfig {
            engine: SolverEngine::Reference,
            ..base
        },
    );
    let incremental = solve_with(
        &inst,
        BabConfig {
            engine: SolverEngine::Incremental,
            ..base
        },
    );
    assert_solutions_identical(&reference, &incremental, "halving");
    assert!(
        2 * incremental.stats.tau_evaluations <= reference.stats.tau_evaluations,
        "expected ≥2× fewer τ evaluations: incremental {} vs reference {}",
        incremental.stats.tau_evaluations,
        reference.stats.tau_evaluations
    );
    assert!(incremental.stats.seed_cache_hits > 0, "cache never hit");
    assert!(incremental.stats.trail_pops > 0, "trail never popped");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trail invariance: a random interleaving of `assign`, `add`,
    /// `pop_to` and `reset_to` leaves `tau_total`/`sigma_total`
    /// bit-identical to a fresh `TauState` replay of the plan the
    /// surviving operations describe — and so are all singleton gains.
    #[test]
    fn trail_interleavings_match_fresh_replay(
        seed in 0u64..500,
        ops in proptest::collection::vec((0u8..4, 0usize..2, 0u32..30), 1..40),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, table, campaign) = small_random_instance(&mut rng, 30, 180, 3, 2);
        let pool = MrrPool::generate(&g, &table, &campaign, 2_000, seed ^ 0xfeed);
        let model = LogisticAdoption::new(2.0, 1.0);
        let tangent = TangentTable::new(model, 2);

        let mut state = TauState::new(&pool, &tangent, model);
        // Shadow model: the stack of (plan, mark) the trail should mirror.
        // `adds` tracks exploratory adds applied on top of the last level.
        let mut plan_stack: Vec<(AssignmentPlan, oipa_core::TrailMark)> = Vec::new();
        let mut plan = AssignmentPlan::empty(2);
        let mut adds = AssignmentPlan::empty(2);

        for &(op, j, v) in &ops {
            match op {
                // assign: push a checkpoint and extend the partial plan.
                // (Only legal with no outstanding exploratory adds.)
                0 if adds.is_empty() => {
                    let mark = state.mark();
                    state.assign(j, v);
                    plan_stack.push((plan.clone(), mark));
                    plan.insert(j, v);
                }
                // add: exploratory commit on top.
                1 => {
                    state.add(j, v);
                    adds.insert(j, v);
                }
                // pop: rewind to the previous checkpoint.
                2 if !plan_stack.is_empty() => {
                    let (prev_plan, mark) = plan_stack.pop().unwrap();
                    state.pop_to(mark);
                    plan = prev_plan;
                    adds = AssignmentPlan::empty(2);
                }
                // reset: full re-anchor on a fresh plan.
                3 => {
                    plan = AssignmentPlan::from_sets(vec![vec![v % 30], vec![(v + 7) % 30]]);
                    state.reset_to(&plan);
                    plan_stack.clear();
                    adds = AssignmentPlan::empty(2);
                }
                _ => continue,
            }

            // Fresh replay of the equivalent state: reset to the partial
            // plan, then re-apply the exploratory adds.
            let mut fresh = TauState::new(&pool, &tangent, model);
            fresh.reset_to(&plan);
            for (aj, av) in adds.assignments() {
                fresh.add(aj, av);
            }
            let (tau_a, sigma_a) = state.totals();
            let (tau_b, sigma_b) = fresh.totals();
            prop_assert_eq!(tau_a.to_bits(), tau_b.to_bits(), "τ diverged: {} vs {}", tau_a, tau_b);
            prop_assert_eq!(sigma_a.to_bits(), sigma_b.to_bits(), "σ diverged: {} vs {}", sigma_a, sigma_b);
            for gj in 0..2usize {
                for gv in (0..30u32).step_by(5) {
                    prop_assert_eq!(
                        state.gain(gj, gv).to_bits(),
                        fresh.gain(gj, gv).to_bits(),
                        "gain({}, {}) diverged", gj, gv
                    );
                }
            }
        }
    }
}
