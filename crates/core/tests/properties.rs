//! Property-based invariants of the solver core, parameterized over the
//! adoption model itself (the unit suites fix (α, β); here they vary).

use oipa_core::tangent::{refine, TangentTable};
use oipa_core::tau::TauState;
use oipa_core::{AssignmentPlan, AuEstimator};
use oipa_sampler::MrrPool;
use oipa_topics::{sigmoid, LogisticAdoption};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary adoption models over the experimentally relevant range.
fn model_strategy() -> impl Strategy<Value = LogisticAdoption> {
    (0.5f64..6.0, 0.2f64..2.0).prop_map(|(alpha, beta)| LogisticAdoption::new(alpha, beta))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tangent table dominates the true objective, is monotone and
    /// concave per anchor, and refinement tightens — for any (α, β, ℓ).
    #[test]
    fn tangent_table_axioms(model in model_strategy(), ell in 1usize..8) {
        let table = TangentTable::new(model, ell);
        for c0 in 0..=ell {
            let mut prev_value = f64::NEG_INFINITY;
            let mut prev_marginal = f64::INFINITY;
            for c in c0..=ell {
                let v = table.value(c0, c);
                // Dominance over the true objective.
                prop_assert!(v + 1e-9 >= model.adoption_prob(c));
                prop_assert!(v <= 1.0 + 1e-9);
                // Monotone in coverage.
                prop_assert!(v + 1e-12 >= prev_value);
                prev_value = v;
                if c < ell {
                    let m = table.marginal(c0, c);
                    prop_assert!(m >= -1e-12);
                    // Concave: marginals nonincreasing.
                    prop_assert!(m <= prev_marginal + 1e-12);
                    prev_marginal = m;
                }
            }
            // Refinement tightens.
            if c0 > 0 {
                for c in c0..=ell {
                    prop_assert!(table.value(c0, c) <= table.value(c0 - 1, c) + 1e-9);
                }
            }
        }
        // Anchor-0 starts at the true zero.
        prop_assert_eq!(table.value(0, 0), 0.0);
    }

    /// Algorithm 4's binary search returns a line that passes through the
    /// anchor and dominates the curve to the right, for any convex-region
    /// anchor.
    #[test]
    fn refine_axioms(x0 in -8.0f64..-0.01) {
        let line = refine(x0, 1e-12);
        prop_assert!(line.w > 0.0 && line.w <= 0.25 + 1e-12);
        // Through the anchor.
        prop_assert!((line.w * x0 + line.b - sigmoid(x0)).abs() < 1e-6);
        // Dominates the curve on a grid.
        let mut x = x0;
        while x < 8.0 {
            prop_assert!(line.value(x) + 1e-7 >= sigmoid(x), "x = {x}");
            x += 0.25;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// τ bookkeeping invariants under random instances and models:
    /// gain == commit delta, τ ≥ σ throughout, reset is idempotent.
    #[test]
    fn tau_state_invariants(seed in 0u64..1000, model in model_strategy()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, table, campaign) =
            oipa_sampler::testkit::small_random_instance(&mut rng, 25, 100, 3, 2);
        let pool = MrrPool::generate(&g, &table, &campaign, 3_000, seed);
        let tangent = TangentTable::new(model, 2);
        let mut state = TauState::new(&pool, &tangent, model);
        state.reset_to(&AssignmentPlan::empty(2));
        let tau_empty = state.tau_total();
        prop_assert!((tau_empty).abs() < 1e-9, "τ(∅) must be 0, got {tau_empty}");
        for step in 0..4u32 {
            let (j, v) = ((step % 2) as usize, (seed as u32 + step * 7) % 25);
            let before = state.tau_total();
            let gain = state.gain(j, v);
            state.add(j, v);
            prop_assert!((state.tau_total() - before - gain).abs() < 1e-9);
            prop_assert!(state.tau_total() + 1e-9 >= state.sigma_total());
        }
        // Reset returns to the clean state.
        state.reset_to(&AssignmentPlan::empty(2));
        prop_assert!((state.tau_total() - tau_empty).abs() < 1e-9);
        prop_assert_eq!(state.sigma_total(), 0.0);
    }

    /// The estimator's σ agrees with TauState's incremental σ for any plan
    /// and model (two independent implementations of Eqn. 6).
    #[test]
    fn estimator_cross_implementation(seed in 0u64..1000, model in model_strategy()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, table, campaign) =
            oipa_sampler::testkit::small_random_instance(&mut rng, 20, 80, 3, 2);
        let pool = MrrPool::generate(&g, &table, &campaign, 2_000, seed ^ 3);
        let plan = AssignmentPlan::from_sets(vec![
            vec![seed as u32 % 20, (seed as u32 + 5) % 20],
            vec![(seed as u32 + 11) % 20],
        ]);
        let mut est = AuEstimator::new(&pool, model);
        let via_estimator = est.evaluate(&plan);
        let tangent = TangentTable::new(model, 2);
        let mut state = TauState::new(&pool, &tangent, model);
        state.reset_to(&plan);
        let via_state = state.sigma_total() * pool.scale();
        prop_assert!(
            (via_estimator - via_state).abs() < 1e-9,
            "estimator {via_estimator} vs state {via_state}"
        );
    }
}
