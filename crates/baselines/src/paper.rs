//! The paper's baseline methods for OIPA (§VI-A "Compared Methods").
//!
//! Neither baseline reasons about multiple pieces jointly — that is the
//! point of the comparison:
//!
//! * **IM** — run classical IM on the *topic-oblivious* graph `G` (edge
//!   probabilities collapsed across topics) to get one seed set `S` of
//!   size `k`; then spread each piece `t_i` from `S` in turn and keep the
//!   single piece with the highest adoption utility.
//! * **TIM** — build the per-piece influence graph `G_{t_i}` for every
//!   piece, run IM on each to get `S_i`, and keep the single best
//!   `(S_i, t_i)` pair by adoption utility.
//!
//! Both therefore spend the entire budget on one piece — users receive at
//! most one piece, which the logistic model punishes (§VI-D explains the
//! observed quality collapse). Utility evaluation reuses the same MRR pool
//! and estimator as the proposed methods, exactly like the paper (same
//! θ; seed-selection inputs differ).

use oipa_core::{AssignmentPlan, AuEstimator};
use oipa_graph::{DiGraph, NodeId};
use oipa_sampler::{MrrPool, RrPool};
use oipa_topics::EdgeTopicProbs;
use std::time::{Duration, Instant};

/// A baseline outcome.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The produced plan (all budget on one piece).
    pub plan: AssignmentPlan,
    /// MRR-estimated adoption utility (user units).
    pub utility: f64,
    /// Which piece received the budget.
    pub chosen_piece: usize,
    /// Seed-selection plus evaluation time (sampling time excluded, per
    /// the paper's methodology).
    pub elapsed: Duration,
}

/// The `IM` baseline. `flat_pool` must be an [`RrPool`] sampled on the
/// collapsed (topic-oblivious) graph — see
/// [`EdgeTopicProbs::collapse_mean`]; `mrr` is the shared evaluation pool.
pub fn im_baseline(
    flat_pool: &RrPool,
    mrr: &MrrPool,
    estimator: &mut AuEstimator<'_>,
    promoters: &[NodeId],
    k: usize,
) -> BaselineResult {
    let start = Instant::now();
    let (seeds, _) = crate::maxcover::greedy_max_coverage(flat_pool.store(), promoters, k);
    let (plan, utility, chosen_piece) = best_single_piece(mrr, estimator, &seeds);
    BaselineResult {
        plan,
        utility,
        chosen_piece,
        elapsed: start.elapsed(),
    }
}

/// The `TIM` baseline: per-piece greedy over the MRR pool's own per-piece
/// RR stores (each store *is* the influence graph `G_{t_i}` sample).
pub fn tim_baseline(
    mrr: &MrrPool,
    estimator: &mut AuEstimator<'_>,
    promoters: &[NodeId],
    k: usize,
) -> BaselineResult {
    let start = Instant::now();
    let ell = mrr.ell();
    let mut best: Option<(AssignmentPlan, f64, usize)> = None;
    for j in 0..ell {
        let (seeds, _) = crate::maxcover::greedy_max_coverage(mrr.piece_store(j), promoters, k);
        let mut plan = AssignmentPlan::empty(ell);
        for v in seeds {
            plan.insert(j, v);
        }
        let utility = estimator.evaluate(&plan);
        if best.as_ref().is_none_or(|&(_, u, _)| utility > u) {
            best = Some((plan, utility, j));
        }
    }
    let (plan, utility, chosen_piece) = best.expect("campaign has at least one piece");
    BaselineResult {
        plan,
        utility,
        chosen_piece,
        elapsed: start.elapsed(),
    }
}

/// Helper shared by `IM`: assigns `seeds` to each piece in turn and keeps
/// the best by estimated utility.
fn best_single_piece(
    mrr: &MrrPool,
    estimator: &mut AuEstimator<'_>,
    seeds: &[NodeId],
) -> (AssignmentPlan, f64, usize) {
    let ell = mrr.ell();
    let mut best: Option<(AssignmentPlan, f64, usize)> = None;
    for j in 0..ell {
        let mut plan = AssignmentPlan::empty(ell);
        for &v in seeds {
            plan.insert(j, v);
        }
        let utility = estimator.evaluate(&plan);
        if best.as_ref().is_none_or(|&(_, u, _)| utility > u) {
            best = Some((plan, utility, j));
        }
    }
    best.expect("campaign has at least one piece")
}

/// Convenience: builds the collapsed-probability RR pool the `IM` baseline
/// needs (classical IC on mean edge probabilities).
pub fn collapsed_pool(graph: &DiGraph, table: &EdgeTopicProbs, theta: usize, seed: u64) -> RrPool {
    let flat = oipa_sampler::MaterializedProbs(table.collapse_mean());
    RrPool::generate(graph, &flat, theta, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_core::{BabConfig, BranchAndBound, OipaInstance};
    use oipa_sampler::testkit::fig1;
    use oipa_topics::LogisticAdoption;

    fn setup(theta: usize) -> (DiGraph, EdgeTopicProbs, oipa_topics::Campaign, MrrPool) {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, theta, 107);
        (g, table, campaign, pool)
    }

    #[test]
    fn baselines_assign_single_piece() {
        let (g, table, _campaign, mrr) = setup(20_000);
        let model = LogisticAdoption::example();
        let mut est = AuEstimator::new(&mrr, model);
        let promoters = vec![0, 1, 2, 3, 4];

        let flat = collapsed_pool(&g, &table, 20_000, 3);
        let im = im_baseline(&flat, &mrr, &mut est, &promoters, 2);
        let nonempty = (0..2).filter(|&j| !im.plan.set(j).is_empty()).count();
        assert_eq!(nonempty, 1, "IM must give all budget to one piece");
        assert_eq!(im.plan.size(), 2);

        let tim = tim_baseline(&mrr, &mut est, &promoters, 2);
        let nonempty = (0..2).filter(|&j| !tim.plan.set(j).is_empty()).count();
        assert_eq!(nonempty, 1, "TIM must give all budget to one piece");
    }

    #[test]
    fn tim_at_least_as_good_as_im_on_fig1() {
        // TIM optimizes per-piece spread; IM ignores topics entirely. On
        // the topic-separable Fig. 1 instance TIM must not lose.
        let (g, table, _campaign, mrr) = setup(40_000);
        let model = LogisticAdoption::example();
        let mut est = AuEstimator::new(&mrr, model);
        let promoters = vec![0, 1, 2, 3, 4];
        let flat = collapsed_pool(&g, &table, 40_000, 3);
        let im = im_baseline(&flat, &mrr, &mut est, &promoters, 2);
        let tim = tim_baseline(&mrr, &mut est, &promoters, 2);
        assert!(
            tim.utility + 1e-9 >= im.utility,
            "TIM {} < IM {}",
            tim.utility,
            im.utility
        );
    }

    #[test]
    fn bab_beats_both_baselines_on_fig1() {
        // The headline comparison in miniature: multifaceted optimization
        // must beat single-piece baselines when adoption needs ≥ 2 pieces.
        let (g, table, _campaign, mrr) = setup(60_000);
        let model = LogisticAdoption::example();
        let promoters = vec![0u32, 1, 2, 3, 4];
        let mut est = AuEstimator::new(&mrr, model);
        let flat = collapsed_pool(&g, &table, 60_000, 3);
        let im = im_baseline(&flat, &mrr, &mut est, &promoters, 2);
        let tim = tim_baseline(&mrr, &mut est, &promoters, 2);
        let instance = OipaInstance::new(&mrr, model, promoters, 2).unwrap();
        let bab = BranchAndBound::new(&instance, BabConfig::bab()).solve();
        assert!(
            bab.utility > im.utility && bab.utility > tim.utility,
            "BAB {} vs IM {} / TIM {}",
            bab.utility,
            im.utility,
            tim.utility
        );
    }

    #[test]
    fn baseline_budget_respected() {
        let (g, table, _campaign, mrr) = setup(10_000);
        let mut est = AuEstimator::new(&mrr, LogisticAdoption::example());
        let promoters = vec![0, 1, 2, 3, 4];
        let flat = collapsed_pool(&g, &table, 10_000, 3);
        for k in 1..=4 {
            let im = im_baseline(&flat, &mrr, &mut est, &promoters, k);
            assert!(im.plan.size() <= k);
            let tim = tim_baseline(&mrr, &mut est, &promoters, k);
            assert!(tim.plan.size() <= k);
        }
    }
}
