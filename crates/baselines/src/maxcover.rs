//! Lazy-greedy (CELF) maximum coverage over RR sets.
//!
//! Given θ RR sets and a budget `k`, pick `k` nodes maximizing the number
//! of covered sets — the standard reduction of influence maximization to
//! max coverage [Borgs et al.; TIM/TIM+; IMM]. Greedy gives `(1 − 1/e)`
//! on this coverage objective; CELF's lazy evaluation is exact for it.

use oipa_graph::NodeId;
use oipa_sampler::RrStore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry {
    gain: u32,
    v: NodeId,
    round: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .cmp(&other.gain)
            .then_with(|| other.v.cmp(&self.v))
    }
}

/// Greedy max coverage restricted to `candidates`; returns the chosen
/// seeds (≤ k, fewer when coverage saturates) and the number of RR sets
/// covered.
pub fn greedy_max_coverage(
    store: &RrStore,
    candidates: &[NodeId],
    k: usize,
) -> (Vec<NodeId>, usize) {
    let mut covered = vec![false; store.len()];
    let mut covered_count = 0usize;
    let mut heap: BinaryHeap<Entry> = candidates
        .iter()
        .map(|&v| Entry {
            gain: store.samples_containing(v).len() as u32,
            v,
            round: 0,
        })
        .filter(|e| e.gain > 0)
        .collect();
    let mut seeds = Vec::with_capacity(k);
    let mut round = 0u32;
    while seeds.len() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            if top.gain == 0 {
                break;
            }
            for &i in store.samples_containing(top.v) {
                if !covered[i as usize] {
                    covered[i as usize] = true;
                    covered_count += 1;
                }
            }
            seeds.push(top.v);
            round += 1;
        } else {
            let fresh = store
                .samples_containing(top.v)
                .iter()
                .filter(|&&i| !covered[i as usize])
                .count() as u32;
            if fresh > 0 {
                heap.push(Entry {
                    gain: fresh,
                    v: top.v,
                    round,
                });
            }
        }
    }
    (seeds, covered_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::{MaterializedProbs, RrPool};

    #[test]
    fn picks_the_hub_on_a_star() {
        // Star 0 -> {1..9} with certainty: node 0 covers every RR set.
        let edges: Vec<(u32, u32)> = (1..10).map(|v| (0, v)).collect();
        let g = oipa_graph::DiGraph::from_edges(10, &edges).unwrap();
        let p = MaterializedProbs(vec![1.0; g.edge_count()]);
        let pool = RrPool::generate(&g, &p, 2000, 5);
        let all: Vec<u32> = (0..10).collect();
        let (seeds, covered) = greedy_max_coverage(pool.store(), &all, 1);
        assert_eq!(seeds, vec![0]);
        assert_eq!(covered, 2000);
    }

    #[test]
    fn respects_candidate_restriction() {
        let edges: Vec<(u32, u32)> = (1..10).map(|v| (0, v)).collect();
        let g = oipa_graph::DiGraph::from_edges(10, &edges).unwrap();
        let p = MaterializedProbs(vec![1.0; g.edge_count()]);
        let pool = RrPool::generate(&g, &p, 1000, 5);
        // Hub excluded from the candidate pool.
        let candidates: Vec<u32> = (1..10).collect();
        let (seeds, _) = greedy_max_coverage(pool.store(), &candidates, 3);
        assert!(!seeds.contains(&0));
        assert_eq!(seeds.len(), 3);
    }

    #[test]
    fn stops_when_saturated() {
        let g = oipa_graph::DiGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let p = MaterializedProbs(vec![1.0, 1.0]);
        let pool = RrPool::generate(&g, &p, 500, 2);
        let (seeds, covered) = greedy_max_coverage(pool.store(), &[0, 1, 2], 3);
        // Node 0 covers everything; further picks add nothing and greedy
        // halts early.
        assert_eq!(seeds, vec![0]);
        assert_eq!(covered, 500);
    }

    #[test]
    fn lazy_equals_naive_on_random_pool() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 60, 360);
        let p = MaterializedProbs(vec![0.25; g.edge_count()]);
        let pool = RrPool::generate(&g, &p, 5000, 9);
        let all: Vec<u32> = (0..60).collect();
        let (lazy, lazy_cov) = greedy_max_coverage(pool.store(), &all, 5);

        // Naive greedy reference.
        let mut covered = vec![false; pool.theta()];
        let mut naive = Vec::new();
        for _ in 0..5 {
            let mut best = (0u32, 0usize);
            for &v in &all {
                if naive.contains(&v) {
                    continue;
                }
                let gain = pool
                    .store()
                    .samples_containing(v)
                    .iter()
                    .filter(|&&i| !covered[i as usize])
                    .count();
                if gain > best.1 || (gain == best.1 && v < best.0) {
                    best = (v, gain);
                }
            }
            if best.1 == 0 {
                break;
            }
            for &i in pool.store().samples_containing(best.0) {
                covered[i as usize] = true;
            }
            naive.push(best.0);
        }
        let naive_cov = covered.iter().filter(|&&c| c).count();
        assert_eq!(lazy, naive);
        assert_eq!(lazy_cov, naive_cov);
    }

    #[test]
    fn empty_candidates() {
        let g = oipa_graph::DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let p = MaterializedProbs(vec![1.0]);
        let pool = RrPool::generate(&g, &p, 100, 1);
        let (seeds, covered) = greedy_max_coverage(pool.store(), &[], 2);
        assert!(seeds.is_empty());
        assert_eq!(covered, 0);
    }
}
