//! Non-optimizing seed heuristics: degree, PageRank, random.
//!
//! The IM literature's sanity baselines. They pick promoters by a
//! centrality proxy, assign all of them to the single best piece (like
//! `IM`/`TIM`), and exist to separate "knows the hubs" from "optimizes
//! the assignment" in the evaluation.

use oipa_core::{AssignmentPlan, AuEstimator};
use oipa_graph::pagerank::{pagerank, top_k_by_score, PageRankParams};
use oipa_graph::{DiGraph, NodeId};
use oipa_sampler::MrrPool;
use rand::seq::SliceRandom;
use rand::Rng;

/// Seed-selection heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heuristic {
    /// Top-k by out-degree.
    OutDegree,
    /// Top-k by PageRank on the reversed graph (influence flows along
    /// out-edges, so authority in the reverse graph ≈ spread potential).
    PageRank,
    /// Uniformly random promoters.
    Random,
}

/// Picks `k` seeds from `candidates` by the heuristic.
pub fn pick_seeds<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    candidates: &[NodeId],
    k: usize,
    heuristic: Heuristic,
) -> Vec<NodeId> {
    match heuristic {
        Heuristic::OutDegree => {
            let scores: Vec<f64> = (0..graph.node_count() as NodeId)
                .map(|v| graph.out_degree(v) as f64)
                .collect();
            top_k_restricted(&scores, candidates, k)
        }
        Heuristic::PageRank => {
            let reversed = graph.reversed();
            let scores = pagerank(&reversed, PageRankParams::default());
            top_k_restricted(&scores, candidates, k)
        }
        Heuristic::Random => {
            let mut pool: Vec<NodeId> = candidates.to_vec();
            pool.shuffle(rng);
            pool.truncate(k);
            pool.sort_unstable();
            pool
        }
    }
}

fn top_k_restricted(scores: &[f64], candidates: &[NodeId], k: usize) -> Vec<NodeId> {
    let restricted: Vec<f64> = candidates.iter().map(|&v| scores[v as usize]).collect();
    top_k_by_score(&restricted, k)
        .into_iter()
        .map(|i| candidates[i as usize])
        .collect()
}

/// Runs a heuristic baseline end to end: pick seeds, give them to the
/// single piece with the best estimated utility.
pub fn heuristic_baseline<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    pool: &MrrPool,
    estimator: &mut AuEstimator<'_>,
    candidates: &[NodeId],
    k: usize,
    heuristic: Heuristic,
) -> (AssignmentPlan, f64) {
    let seeds = pick_seeds(rng, graph, candidates, k, heuristic);
    let ell = pool.ell();
    let mut best: Option<(AssignmentPlan, f64)> = None;
    for j in 0..ell {
        let mut plan = AssignmentPlan::empty(ell);
        for &v in &seeds {
            plan.insert(j, v);
        }
        let u = estimator.evaluate(&plan);
        if best.as_ref().is_none_or(|&(_, bu)| u > bu) {
            best = Some((plan, u));
        }
    }
    best.expect("at least one piece")
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::testkit::fig1;
    use oipa_topics::LogisticAdoption;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_picks_hubs() {
        let edges: Vec<(u32, u32)> = (1..8).map(|v| (0, v)).chain([(1, 2)]).collect();
        let g = DiGraph::from_edges(8, &edges).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let all: Vec<u32> = (0..8).collect();
        let seeds = pick_seeds(&mut rng, &g, &all, 2, Heuristic::OutDegree);
        assert_eq!(seeds, vec![0, 1]);
    }

    #[test]
    fn pagerank_finds_the_influencer() {
        // Star out of node 0: in the reversed graph everyone points at 0,
        // so reverse-PageRank ranks 0 first.
        let edges: Vec<(u32, u32)> = (1..10).map(|v| (0, v)).collect();
        let g = DiGraph::from_edges(10, &edges).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let all: Vec<u32> = (0..10).collect();
        let seeds = pick_seeds(&mut rng, &g, &all, 1, Heuristic::PageRank);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn random_respects_candidates_and_k() {
        let g = DiGraph::from_edges(10, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let candidates = vec![2u32, 4, 6, 8];
        let seeds = pick_seeds(&mut rng, &g, &candidates, 3, Heuristic::Random);
        assert_eq!(seeds.len(), 3);
        assert!(seeds.iter().all(|s| candidates.contains(s)));
    }

    #[test]
    fn heuristics_trail_optimization_on_fig1() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 40_000, 3);
        let model = LogisticAdoption::example();
        let mut est = AuEstimator::new(&pool, model);
        let mut rng = StdRng::seed_from_u64(4);
        let all: Vec<u32> = (0..5).collect();
        let (_, degree_u) =
            heuristic_baseline(&mut rng, &g, &pool, &mut est, &all, 2, Heuristic::OutDegree);
        // BAB reference (the known optimum {{a},{e}} ≈ 1.045).
        let opt_plan = AssignmentPlan::from_sets(vec![vec![0], vec![4]]);
        let opt = est.evaluate(&opt_plan);
        assert!(
            degree_u <= opt + 1e-9,
            "single-piece heuristic {degree_u} cannot beat the optimum {opt}"
        );
    }

    #[test]
    fn candidate_restriction_respected() {
        let (g, table, campaign) = fig1();
        let pool = MrrPool::generate(&g, &table, &campaign, 5_000, 3);
        let mut est = AuEstimator::new(&pool, LogisticAdoption::example());
        let mut rng = StdRng::seed_from_u64(5);
        let candidates = vec![1u32, 2];
        for h in [Heuristic::OutDegree, Heuristic::PageRank, Heuristic::Random] {
            let (plan, _) = heuristic_baseline(&mut rng, &g, &pool, &mut est, &candidates, 2, h);
            for (_, v) in plan.assignments() {
                assert!(candidates.contains(&v), "{h:?} escaped the pool");
            }
        }
    }
}
