//! IMM — Influence Maximization via Martingales (Tang, Shi, Xiao; SIGMOD
//! 2015), the "state-of-the-art IM algorithm" the paper's `IM` baseline
//! builds on (ref 32).
//!
//! Two phases:
//!
//! 1. **Sampling** — estimate a lower bound `LB` on `OPT_k` by a
//!    geometric search over guesses `x = n/2^i`: for each guess, draw
//!    enough RR sets (`θ_i = λ'/x`), run greedy, and accept the guess once
//!    the covered fraction certifies `n·F(S) ≥ (1+ε')·x`.
//! 2. **Selection** — draw `θ = λ*/LB` RR sets and return the greedy seed
//!    set, which is `(1 − 1/e − ε)`-optimal with probability `1 − 1/n^ρ`.
//!
//! This module keeps its own incremental RR-set collection (sets are added
//! across phases), independent of the fixed-size pools in `oipa-sampler`.

use crate::maxcover::greedy_max_coverage;
use oipa_graph::traverse::BfsScratch;
use oipa_graph::{DiGraph, NodeId};
use oipa_sampler::theta::ln_choose;
use oipa_sampler::EdgeProb;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// IMM parameters.
#[derive(Debug, Clone, Copy)]
pub struct ImmParams {
    /// Approximation slack ε in `(1 − 1/e − ε)`.
    pub eps: f64,
    /// Failure-probability exponent ρ: guarantee holds w.p. `1 − 1/n^ρ`.
    pub rho: f64,
    /// RNG seed.
    pub seed: u64,
    /// Hard cap on generated RR sets (memory guard; `None` = theory-driven).
    pub max_rr_sets: Option<usize>,
}

impl Default for ImmParams {
    fn default() -> Self {
        ImmParams {
            eps: 0.3,
            rho: 1.0,
            seed: 0x1111,
            max_rr_sets: Some(2_000_000),
        }
    }
}

/// IMM result.
#[derive(Debug, Clone)]
pub struct ImmResult {
    /// The selected seed set (size ≤ k).
    pub seeds: Vec<NodeId>,
    /// Estimated spread of the seeds on the final RR collection.
    pub spread: f64,
    /// Total RR sets generated across both phases.
    pub rr_sets: usize,
    /// The certified lower bound on OPT from phase 1.
    pub opt_lower: f64,
}

/// Incremental RR-set collection with per-node coverage lists.
struct Collection {
    n: usize,
    sets: Vec<Vec<NodeId>>,
    by_node: Vec<Vec<u32>>,
}

impl Collection {
    fn new(n: usize) -> Self {
        Collection {
            n,
            sets: Vec::new(),
            by_node: vec![Vec::new(); n],
        }
    }

    fn extend_to<P: EdgeProb + ?Sized>(
        &mut self,
        graph: &DiGraph,
        probs: &P,
        target: usize,
        rng: &mut SmallRng,
        scratch: &mut BfsScratch,
    ) {
        let pick = Uniform::new(0, self.n as NodeId);
        let mut buf = Vec::new();
        while self.sets.len() < target {
            let root = pick.sample(rng);
            oipa_sampler::sample_rr_set(rng, graph, probs, root, scratch, &mut buf);
            let id = self.sets.len() as u32;
            for &v in &buf {
                self.by_node[v as usize].push(id);
            }
            self.sets.push(buf.clone());
        }
    }

    /// Greedy coverage directly on the incremental collection.
    fn greedy(&self, candidates: &[NodeId], k: usize) -> (Vec<NodeId>, usize) {
        // Reuse the CELF implementation by building a transient RrStore.
        let store = oipa_sampler::RrStore::from_sets(&self.sets, self.n);
        greedy_max_coverage(&store, candidates, k)
    }
}

/// Runs IMM for `k` seeds over the homogeneous influence graph given by
/// `probs`. `candidates` restricts the seed universe (pass all nodes for
/// classical IM).
pub fn imm<P: EdgeProb + ?Sized>(
    graph: &DiGraph,
    probs: &P,
    candidates: &[NodeId],
    k: usize,
    params: ImmParams,
) -> ImmResult {
    let n = graph.node_count();
    assert!(n >= 2, "IMM needs at least two nodes");
    assert!(k >= 1 && !candidates.is_empty());
    let k = k.min(candidates.len());
    let eps = params.eps;
    let ln_n = (n as f64).ln();
    let delta_ln = params.rho * ln_n; // ln(n^ρ)
    let lnck = ln_choose(n, k);

    // λ' for the phase-1 estimator (IMM Lemma 6 shape).
    let eps_prime = std::f64::consts::SQRT_2 * eps;
    let lambda_prime = (2.0 + 2.0 / 3.0 * eps_prime)
        * (lnck + delta_ln + (ln_n.max(1.0)).ln().max(1.0))
        * n as f64
        / (eps_prime * eps_prime);

    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut scratch = BfsScratch::new(n);
    let mut collection = Collection::new(n);
    let mut opt_lower = 1.0f64;

    let max_rounds = (n as f64).log2().floor() as u32;
    for i in 1..=max_rounds.max(1) {
        let x = n as f64 / 2f64.powi(i as i32);
        if x < 1.0 {
            break;
        }
        let mut theta_i = (lambda_prime / x).ceil() as usize;
        if let Some(cap) = params.max_rr_sets {
            theta_i = theta_i.min(cap);
        }
        collection.extend_to(graph, probs, theta_i, &mut rng, &mut scratch);
        let (seeds, covered) = collection.greedy(candidates, k);
        let frac = covered as f64 / collection.sets.len() as f64;
        let _ = seeds;
        if n as f64 * frac >= (1.0 + eps_prime) * x {
            opt_lower = n as f64 * frac / (1.0 + eps_prime);
            break;
        }
        if params.max_rr_sets == Some(collection.sets.len()) {
            opt_lower = (n as f64 * frac / (1.0 + eps_prime)).max(1.0);
            break;
        }
    }

    // Phase 2: θ = λ* / LB.
    let e = std::f64::consts::E;
    let alpha = (delta_ln + ln_n.ln().max(0.0)).sqrt().max(1.0);
    let beta = ((1.0 - 1.0 / e) * (lnck + delta_ln)).sqrt();
    let lambda_star = 2.0 * n as f64 * ((1.0 - 1.0 / e) * alpha + beta).powi(2) / (eps * eps);
    let mut theta = (lambda_star / opt_lower).ceil() as usize;
    if let Some(cap) = params.max_rr_sets {
        theta = theta.min(cap);
    }
    collection.extend_to(
        graph,
        probs,
        theta.max(collection.sets.len()),
        &mut rng,
        &mut scratch,
    );
    let (seeds, covered) = collection.greedy(candidates, k);
    let spread = n as f64 * covered as f64 / collection.sets.len() as f64;
    ImmResult {
        seeds,
        spread,
        rr_sets: collection.sets.len(),
        opt_lower,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::{simulate, MaterializedProbs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_the_hub() {
        let edges: Vec<(u32, u32)> = (1..30).map(|v| (0, v)).collect();
        let g = DiGraph::from_edges(30, &edges).unwrap();
        let p = MaterializedProbs(vec![0.9; g.edge_count()]);
        let all: Vec<u32> = (0..30).collect();
        let r = imm(
            &g,
            &p,
            &all,
            1,
            ImmParams {
                max_rr_sets: Some(50_000),
                ..Default::default()
            },
        );
        assert_eq!(r.seeds, vec![0]);
        assert!(r.spread > 20.0, "hub spread {}", r.spread);
    }

    #[test]
    fn spread_close_to_simulation() {
        let mut rng = StdRng::seed_from_u64(15);
        let g = oipa_graph::generators::barabasi_albert(&mut rng, 150, 3);
        let p = MaterializedProbs(vec![0.2; g.edge_count()]);
        let all: Vec<u32> = (0..150).collect();
        let r = imm(
            &g,
            &p,
            &all,
            5,
            ImmParams {
                eps: 0.2,
                max_rr_sets: Some(200_000),
                ..Default::default()
            },
        );
        assert_eq!(r.seeds.len(), 5);
        let truth =
            simulate::simulate_spread(&mut StdRng::seed_from_u64(7), &g, &p, &r.seeds, 4000);
        let rel = (r.spread - truth).abs() / truth.max(1.0);
        assert!(rel < 0.1, "IMM {} vs MC {} (rel {rel})", r.spread, truth);
    }

    #[test]
    fn candidate_restriction_honored() {
        let edges: Vec<(u32, u32)> = (1..20).map(|v| (0, v)).collect();
        let g = DiGraph::from_edges(20, &edges).unwrap();
        let p = MaterializedProbs(vec![1.0; g.edge_count()]);
        let candidates: Vec<u32> = (1..20).collect();
        let r = imm(
            &g,
            &p,
            &candidates,
            2,
            ImmParams {
                max_rr_sets: Some(20_000),
                ..Default::default()
            },
        );
        assert!(!r.seeds.contains(&0));
    }

    #[test]
    fn respects_rr_cap() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = oipa_graph::generators::erdos_renyi_gnm(&mut rng, 50, 250);
        let p = MaterializedProbs(vec![0.1; g.edge_count()]);
        let all: Vec<u32> = (0..50).collect();
        let r = imm(
            &g,
            &p,
            &all,
            3,
            ImmParams {
                max_rr_sets: Some(5_000),
                ..Default::default()
            },
        );
        assert!(r.rr_sets <= 5_000);
        assert_eq!(r.seeds.len(), 3);
    }
}
