//! The original greedy of Kempe, Kleinberg & Tardos (KDD 2003) (ref 16):
//! hill-climbing on Monte-Carlo spread estimates, with CELF lazy
//! evaluation (Leskovec et al. (ref 19)).
//!
//! Quadratically slower than RR-set methods — it re-simulates cascades
//! for every candidate — but it is the historical reference point and a
//! valuable cross-check: on small graphs its seed sets should essentially
//! agree with IMM's, since both approximate the same submodular function.

use oipa_graph::{DiGraph, NodeId};
use oipa_sampler::{simulate, EdgeProb};
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry {
    gain: f64,
    v: NodeId,
    round: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .expect("finite gains")
            .then_with(|| other.v.cmp(&self.v))
    }
}

/// KKT greedy: `k` seeds maximizing MC-estimated IC spread, with `runs`
/// cascade simulations per estimate. Returns `(seeds, estimated spread)`.
///
/// CELF caveat: MC noise breaks exact submodularity of the *estimates*,
/// so lazy evaluation is approximate here — the classic practical
/// compromise (noise shrinks as `runs` grows).
pub fn kempe_greedy<R: Rng + ?Sized, P: EdgeProb + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    probs: &P,
    candidates: &[NodeId],
    k: usize,
    runs: usize,
) -> (Vec<NodeId>, f64) {
    assert!(runs > 0);
    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut current_spread = 0.0f64;
    let mut heap: BinaryHeap<Entry> = candidates
        .iter()
        .map(|&v| Entry {
            gain: f64::INFINITY, // force first-touch evaluation
            v,
            round: u32::MAX,
        })
        .collect();
    let mut round = 0u32;
    let mut scratch: Vec<NodeId> = Vec::new();
    while seeds.len() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            if top.gain <= 0.0 {
                break;
            }
            seeds.push(top.v);
            current_spread += top.gain;
            round += 1;
        } else {
            scratch.clear();
            scratch.extend_from_slice(&seeds);
            scratch.push(top.v);
            let with = simulate::simulate_spread(rng, graph, probs, &scratch, runs);
            let gain = with - current_spread;
            if gain > 0.0 {
                heap.push(Entry {
                    gain,
                    v: top.v,
                    round,
                });
            }
        }
    }
    // Final unbiased estimate of the chosen set.
    let spread = if seeds.is_empty() {
        0.0
    } else {
        simulate::simulate_spread(rng, graph, probs, &seeds, runs * 4)
    };
    (seeds, spread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oipa_sampler::MaterializedProbs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn picks_the_hub() {
        let edges: Vec<(u32, u32)> = (1..15).map(|v| (0, v)).collect();
        let g = DiGraph::from_edges(15, &edges).unwrap();
        let p = MaterializedProbs(vec![0.8; g.edge_count()]);
        let mut rng = StdRng::seed_from_u64(1);
        let all: Vec<u32> = (0..15).collect();
        let (seeds, spread) = kempe_greedy(&mut rng, &g, &p, &all, 1, 300);
        assert_eq!(seeds, vec![0]);
        assert!(spread > 8.0, "hub spread {spread}");
    }

    #[test]
    fn agrees_with_rr_based_greedy() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = oipa_graph::generators::barabasi_albert(&mut rng, 60, 3);
        let p = MaterializedProbs(vec![0.3; g.edge_count()]);
        let all: Vec<u32> = (0..60).collect();
        let (mc_seeds, mc_spread) = kempe_greedy(&mut rng, &g, &p, &all, 3, 400);

        let pool = oipa_sampler::RrPool::generate(&g, &p, 40_000, 17);
        let (rr_seeds, _) = crate::maxcover::greedy_max_coverage(pool.store(), &all, 3);
        let rr_spread = pool.estimate_spread(&rr_seeds);
        // The seed sets may differ node-by-node (MC noise) but the achieved
        // spreads must agree closely.
        let rel = (mc_spread - rr_spread).abs() / rr_spread.max(1.0);
        assert!(
            rel < 0.15,
            "KKT {mc_spread} vs RR {rr_spread} diverged ({rel})"
        );
        assert_eq!(mc_seeds.len(), 3);
    }

    #[test]
    fn zero_probability_graph_stops_early() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = MaterializedProbs(vec![0.0; g.edge_count()]);
        let mut rng = StdRng::seed_from_u64(2);
        let (seeds, spread) = kempe_greedy(&mut rng, &g, &p, &[0, 1, 2, 3], 2, 50);
        // Every candidate gains exactly 1 (itself); greedy still fills k.
        assert_eq!(seeds.len(), 2);
        assert!((spread - 2.0).abs() < 1e-9);
    }
}
