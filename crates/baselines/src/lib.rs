//! # oipa-baselines
//!
//! Classical influence-maximization machinery and the paper's two baseline
//! methods for OIPA (§VI-A, "Compared Methods"):
//!
//! * [`maxcover`] — lazy-greedy (CELF) maximum coverage over a fixed pool
//!   of RR sets: the core subroutine of every RR-set IM algorithm.
//! * [`imm`] — a full implementation of IMM (Tang, Shi, Xiao — SIGMOD
//!   2015): martingale-based sampling with an OPT lower-bound search, for
//!   callers who want IM with end-to-end `(1 − 1/e − ε)` guarantees
//!   rather than a fixed θ.
//! * [`paper`] — the `IM` and `TIM` baselines exactly as the paper adapts
//!   them to OIPA: run classical IM (topic-oblivious for `IM`,
//!   per-piece for `TIM`), then give the whole budget to the single best
//!   piece.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod heuristics;
pub mod imm;
pub mod kempe;
pub mod maxcover;
pub mod paper;

pub use maxcover::greedy_max_coverage;
pub use paper::{im_baseline, tim_baseline, BaselineResult};
