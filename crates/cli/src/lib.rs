//! # oipa-cli
//!
//! A command-line driver for the full OIPA pipeline, file-based so each
//! stage can be cached and re-run independently:
//!
//! ```text
//! oipa-cli generate --dataset lastfm --out-graph g.bin --out-probs p.bin
//! oipa-cli import   --edges graph.txt --out-graph g.bin               # SNAP-style text
//! oipa-cli stats    --graph g.bin [--probs p.bin]
//! oipa-cli sample   --graph g.bin --probs p.bin --ell 3 --theta 100000 \
//!                   --out-pool pool.bin --out-campaign campaign.json
//! oipa-cli solve    --pool pool.bin --method bab-p --k 20 --ratio 0.5 \
//!                   --out-plan plan.json
//! oipa-cli simulate --graph g.bin --probs p.bin --campaign campaign.json \
//!                   --plan plan.json --ratio 0.5 --runs 500
//! oipa-cli batch    --requests requests.jsonl --graph g.bin --probs p.bin \
//!                   --out responses.jsonl
//! ```
//!
//! `solve`, `simulate`, and `batch` run through the `PlannerService`
//! session engine (`oipa-service`): `batch` in particular streams JSONL
//! requests through one session, so its pool arena amortizes MRR sampling
//! across every request sharing a (campaign, θ, seed) key.
//!
//! All commands are pure functions over files plus a seed, so a pipeline
//! is reproducible end to end. The library half (`run`) is unit-testable;
//! `main.rs` is a thin shim.
//!
//! Exit codes: `0` success, `2` user error (bad flags or request fields,
//! with a "did you mean" hint for typo'd flags), `1` environment (I/O)
//! failure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod commands;
mod opts;

pub use commands::run;
pub use opts::{CliError, ParsedArgs};

/// Entry point used by the binary: parses, runs, prints. Returns the
/// process exit code: `0` on success, `2` for user errors, `1` for
/// environment failures (see [`oipa_core::OipaError::exit_code`]).
pub fn main_with_args(args: Vec<String>) -> i32 {
    match opts::ParsedArgs::parse(args) {
        Ok(parsed) => match commands::run(&parsed) {
            Ok(report) => {
                println!("{report}");
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                e.exit_code()
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n{}", opts::USAGE);
            2
        }
    }
}
