//! Thin binary shim; all logic lives in the library for testability.

fn main() {
    let code = oipa_cli::main_with_args(std::env::args().skip(1).collect());
    std::process::exit(code);
}
