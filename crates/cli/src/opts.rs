//! Flag parsing for the CLI (no external argument-parsing crate).

use std::collections::BTreeMap;

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage: oipa-cli <command> [flags]

commands:
  generate  --dataset lastfm|dblp|tweet [--scale tiny|small|medium|full]
            [--seed N] --out-graph FILE --out-probs FILE
  import    --edges FILE --out-graph FILE [--topics N] [--avg-support F]
            [--max-prob F] [--seed N] [--out-probs FILE]
  stats     --graph FILE [--probs FILE]
  sample    --graph FILE --probs FILE --ell N [--theta N] [--seed N]
            [--threads N] --out-pool FILE --out-campaign FILE
  solve     --pool FILE [--method bab|bab-p|plain|greedy|im|tim]
            [--k N] [--ratio F] [--eps F] [--promoter-fraction F]
            [--max-nodes N] [--seed N] [--out-plan FILE]
  simulate  --graph FILE --probs FILE --campaign FILE --plan FILE
            [--ratio F] [--runs N] [--seed N]
  bench     solver [--smoke true] [--seed N] [--out FILE]";

/// A parse/validation error.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError(s.to_string())
    }
}

/// Parsed command plus `--flag value` map.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// The subcommand.
    pub command: String,
    /// The positional subject (only the `bench` command takes one: the
    /// suite name, e.g. `bench solver`).
    pub positional: Option<String>,
    flags: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parses raw arguments (without `argv(0)`).
    pub fn parse(args: Vec<String>) -> Result<ParsedArgs, CliError> {
        let mut it = args.into_iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| CliError("missing command".to_string()))?;
        if !matches!(
            command.as_str(),
            "generate" | "import" | "stats" | "sample" | "solve" | "simulate" | "bench"
        ) {
            return Err(CliError(format!("unknown command {command:?}")));
        }
        let positional = if command == "bench" {
            match it.peek() {
                Some(word) if !word.starts_with("--") => it.next(),
                _ => None,
            }
        } else {
            None
        };
        let mut flags = BTreeMap::new();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError(format!("expected --flag, got {flag:?}")));
            };
            let value = it
                .next()
                .ok_or_else(|| CliError(format!("--{name} needs a value")))?;
            flags.insert(name.to_string(), value);
        }
        Ok(ParsedArgs {
            command,
            positional,
            flags,
        })
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flags
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| CliError(format!("missing required --{name}")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// An optional parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError(format!("bad value for --{name}: {raw:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = ParsedArgs::parse(args(&["solve", "--pool", "x.bin", "--k", "7"])).unwrap();
        assert_eq!(p.command, "solve");
        assert_eq!(p.required("pool").unwrap(), "x.bin");
        assert_eq!(p.parsed_or("k", 1usize).unwrap(), 7);
        assert_eq!(p.parsed_or("ratio", 0.5f64).unwrap(), 0.5);
        assert!(p.optional("eps").is_none());
    }

    #[test]
    fn rejects_unknown_command() {
        assert!(ParsedArgs::parse(args(&["frobnicate"])).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(ParsedArgs::parse(args(&["stats", "--graph"])).is_err());
    }

    #[test]
    fn rejects_positional_garbage() {
        assert!(ParsedArgs::parse(args(&["stats", "graph.bin"])).is_err());
    }

    #[test]
    fn required_reports_flag_name() {
        let p = ParsedArgs::parse(args(&["stats"])).unwrap();
        let e = p.required("graph").unwrap_err();
        assert!(e.0.contains("--graph"));
    }

    #[test]
    fn bad_number_reported() {
        let p = ParsedArgs::parse(args(&["solve", "--k", "banana"])).unwrap();
        assert!(p.parsed_or("k", 1usize).is_err());
    }
}
