//! Flag parsing for the CLI (no external argument-parsing crate).
//!
//! Every command declares its flag set in [`COMMANDS`]; unknown flags are
//! rejected at parse time with a "did you mean" hint, so typos like
//! `--thread` or `--thета` fail loudly instead of being silently ignored.

use std::collections::BTreeMap;

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage: oipa-cli <command> [flags]

commands:
  generate  --dataset lastfm|dblp|tweet [--scale tiny|small|medium|full]
            [--seed N] --out-graph FILE --out-probs FILE
  import    --edges FILE --out-graph FILE [--topics N] [--avg-support F]
            [--max-prob F] [--seed N] [--out-probs FILE]
  stats     --graph FILE [--probs FILE]
  sample    --graph FILE --probs FILE --ell N [--theta N] [--seed N]
            [--threads N] --out-pool FILE --out-campaign FILE
  solve     (--pool FILE | --graph FILE --probs FILE --ell N)
            [--method bab|bab-p|plain|greedy|brute|im|tim]
            [--k N] [--ratio F] [--eps F] [--gap F] [--promoter-fraction F]
            [--max-nodes N] [--seed N] [--theta N] [--out-plan FILE]
            [--store-dir DIR] [--shards N] [--eviction lru|lfu]
            [--region-bytes N] [--fault-schedule SPEC]
  simulate  --graph FILE --probs FILE --campaign FILE --plan FILE
            [--ratio F] [--runs N] [--seed N]
  batch     --requests FILE (--graph FILE --probs FILE | --pool FILE)
            [--out FILE] [--check true] [--store-dir DIR] [--shards N]
            [--eviction lru|lfu] [--region-bytes N] [--threads N]
            [--fault-schedule SPEC]
  bench     solver|service|store|concurrent|serve [--smoke true] [--seed N]
            [--out FILE] [--store-dir DIR] [--rate RPS]
            [--fault-schedule SPEC]
  store     ls|verify|gc --dir DIR
  obs       dump --addr HOST:PORT

--fault-schedule (dev): inject disk faults into the attached store, e.g.
  \"write:enospc=1,seed=7\" or \"crash=12\" or \"down\" — see oipa-store docs";

/// One command's grammar: its name, whether it takes a positional
/// subject, and the flags it accepts.
struct CommandSpec {
    name: &'static str,
    takes_positional: bool,
    flags: &'static [&'static str],
}

/// The complete CLI grammar. `ParsedArgs::parse` validates against this,
/// so adding a flag to a command means adding it here.
const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "generate",
        takes_positional: false,
        flags: &["dataset", "scale", "seed", "out-graph", "out-probs"],
    },
    CommandSpec {
        name: "import",
        takes_positional: false,
        flags: &[
            "edges",
            "out-graph",
            "topics",
            "avg-support",
            "max-prob",
            "seed",
            "out-probs",
        ],
    },
    CommandSpec {
        name: "stats",
        takes_positional: false,
        flags: &["graph", "probs"],
    },
    CommandSpec {
        name: "sample",
        takes_positional: false,
        flags: &[
            "graph",
            "probs",
            "ell",
            "theta",
            "seed",
            "threads",
            "out-pool",
            "out-campaign",
        ],
    },
    CommandSpec {
        name: "solve",
        takes_positional: false,
        flags: &[
            "pool",
            "method",
            "k",
            "ratio",
            "eps",
            "gap",
            "promoter-fraction",
            "max-nodes",
            "seed",
            "out-plan",
            "graph",
            "probs",
            "theta",
            "ell",
            "store-dir",
            "shards",
            "eviction",
            "region-bytes",
            "fault-schedule",
        ],
    },
    CommandSpec {
        name: "simulate",
        takes_positional: false,
        flags: &[
            "graph", "probs", "campaign", "plan", "ratio", "runs", "seed",
        ],
    },
    CommandSpec {
        name: "batch",
        takes_positional: false,
        flags: &[
            "requests",
            "graph",
            "probs",
            "pool",
            "out",
            "check",
            "store-dir",
            "shards",
            "eviction",
            "region-bytes",
            "threads",
            "fault-schedule",
        ],
    },
    CommandSpec {
        name: "bench",
        takes_positional: true,
        flags: &[
            "smoke",
            "seed",
            "out",
            "store-dir",
            "rate",
            "fault-schedule",
        ],
    },
    CommandSpec {
        name: "store",
        takes_positional: true,
        flags: &["dir"],
    },
    CommandSpec {
        name: "obs",
        takes_positional: true,
        flags: &["addr"],
    },
];

/// A parse/validation error.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError(s.to_string())
    }
}

/// Levenshtein edit distance, for "did you mean" hints.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest candidate within an edit distance of 2, if any.
fn suggest<'c>(got: &str, candidates: impl Iterator<Item = &'c str>) -> Option<&'c str> {
    candidates
        .map(|c| (edit_distance(got, c), c))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

fn hint(got: &str, candidates: &[&'static str]) -> String {
    match suggest(got, candidates.iter().copied()) {
        Some(s) => format!(" (did you mean --{s}?)"),
        None => String::new(),
    }
}

/// Parsed command plus `--flag value` map.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// The subcommand.
    pub command: String,
    /// The positional subject (only the `bench` command takes one: the
    /// suite name, e.g. `bench solver`).
    pub positional: Option<String>,
    flags: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parses raw arguments (without `argv(0)`), validating flags against
    /// the command's declared set.
    pub fn parse(args: Vec<String>) -> Result<ParsedArgs, CliError> {
        let mut it = args.into_iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| CliError("missing command".to_string()))?;
        let Some(spec) = COMMANDS.iter().find(|s| s.name == command) else {
            let names: Vec<&str> = COMMANDS.iter().map(|s| s.name).collect();
            let hint = match suggest(&command, names.iter().copied()) {
                Some(s) => format!(" (did you mean {s}?)"),
                None => String::new(),
            };
            return Err(CliError(format!("unknown command {command:?}{hint}")));
        };
        let positional = if spec.takes_positional {
            match it.peek() {
                Some(word) if !word.starts_with("--") => it.next(),
                _ => None,
            }
        } else {
            None
        };
        let mut flags = BTreeMap::new();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError(format!("expected --flag, got {flag:?}")));
            };
            if !spec.flags.contains(&name) {
                return Err(CliError(format!(
                    "unknown flag --{name} for {command}{}",
                    hint(name, spec.flags)
                )));
            }
            let value = it
                .next()
                .ok_or_else(|| CliError(format!("--{name} needs a value")))?;
            flags.insert(name.to_string(), value);
        }
        Ok(ParsedArgs {
            command,
            positional,
            flags,
        })
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flags
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| CliError(format!("missing required --{name}")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// An optional parsed flag (`None` when absent).
    pub fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError(format!("bad value for --{name}: {raw:?}"))),
        }
    }

    /// An optional parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        Ok(self.parsed(name)?.unwrap_or(default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = ParsedArgs::parse(args(&["solve", "--pool", "x.bin", "--k", "7"])).unwrap();
        assert_eq!(p.command, "solve");
        assert_eq!(p.required("pool").unwrap(), "x.bin");
        assert_eq!(p.parsed_or("k", 1usize).unwrap(), 7);
        assert_eq!(p.parsed_or("ratio", 0.5f64).unwrap(), 0.5);
        assert!(p.optional("eps").is_none());
    }

    #[test]
    fn rejects_unknown_command() {
        assert!(ParsedArgs::parse(args(&["frobnicate"])).is_err());
        let e = ParsedArgs::parse(args(&["solv"])).unwrap_err();
        assert!(e.0.contains("did you mean solve?"), "{e}");
    }

    #[test]
    fn rejects_unknown_flag_with_hint() {
        let e = ParsedArgs::parse(args(&["solve", "--thета", "4000"])).unwrap_err();
        assert!(e.0.contains("unknown flag"), "{e}");
        let e = ParsedArgs::parse(args(&["sample", "--thread", "4"])).unwrap_err();
        assert!(e.0.contains("did you mean --threads?"), "{e}");
        let e = ParsedArgs::parse(args(&["solve", "--methd", "bab"])).unwrap_err();
        assert!(e.0.contains("did you mean --method?"), "{e}");
        // A flag valid for another command is still unknown here.
        let e = ParsedArgs::parse(args(&["stats", "--pool", "x.bin"])).unwrap_err();
        assert!(e.0.contains("unknown flag --pool for stats"), "{e}");
    }

    #[test]
    fn rejects_missing_value() {
        assert!(ParsedArgs::parse(args(&["stats", "--graph"])).is_err());
    }

    #[test]
    fn rejects_positional_garbage() {
        assert!(ParsedArgs::parse(args(&["stats", "graph.bin"])).is_err());
    }

    #[test]
    fn required_reports_flag_name() {
        let p = ParsedArgs::parse(args(&["stats"])).unwrap();
        let e = p.required("graph").unwrap_err();
        assert!(e.0.contains("--graph"));
    }

    #[test]
    fn bad_number_reported() {
        let p = ParsedArgs::parse(args(&["solve", "--k", "banana"])).unwrap();
        assert!(p.parsed_or("k", 1usize).is_err());
    }

    #[test]
    fn edit_distance_sanity() {
        assert_eq!(edit_distance("theta", "theta"), 0);
        assert_eq!(edit_distance("thread", "threads"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert!(suggest("zzzzzz", ["theta", "seed"].into_iter()).is_none());
    }
}
