//! Command implementations.

use crate::opts::{CliError, ParsedArgs};
use oipa_baselines::{im_baseline, paper::collapsed_pool, tim_baseline};
use oipa_core::{AuEstimator, BabConfig, BranchAndBound, OipaInstance};
use oipa_datasets::Scale;
use oipa_graph::{binio as graph_io, DiGraph};
use oipa_sampler::{binio as pool_io, simulate, MrrPool};
use oipa_topics::{binio as probs_io, Campaign, EdgeTopicProbs, LogisticAdoption};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::fmt::Write as _;

/// Runs one parsed command, returning its human-readable report.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "import" => cmd_import(args),
        "stats" => cmd_stats(args),
        "sample" => cmd_sample(args),
        "solve" => cmd_solve(args),
        "simulate" => cmd_simulate(args),
        "bench" => cmd_bench(args),
        other => Err(CliError(format!("unknown command {other:?}"))),
    }
}

/// `oipa-cli bench solver` — reproduces the `BENCH_solver.json` perf
/// artifact (the incremental-vs-reference solver engine suite).
fn cmd_bench(args: &ParsedArgs) -> Result<String, CliError> {
    let suite = args.positional.as_deref().unwrap_or("solver");
    match suite {
        "solver" => {
            let config = oipa_bench::solver_suite::SolverSuiteConfig {
                smoke: args.parsed_or("smoke", false)?,
                seed: args.parsed_or("seed", 0u64)?,
            };
            let report = oipa_bench::solver_suite::run_solver_suite(config);
            oipa_bench::solver_suite::validate_report(&report)
                .map_err(|e| CliError(format!("solver bench invariants violated: {e}")))?;
            let out = args.optional("out").unwrap_or("BENCH_solver.json");
            save_json(&report, out, "bench report")?;
            let mut text = oipa_bench::solver_suite::summary_text(&report);
            write!(text, "wrote {out} ({} records)", report.records.len()).expect("string write");
            Ok(text)
        }
        other => Err(CliError(format!(
            "unknown bench suite {other:?} (available: solver)"
        ))),
    }
}

fn load_graph(path: &str) -> Result<DiGraph, CliError> {
    graph_io::read_graph_file(path).map_err(|e| CliError(format!("reading graph {path}: {e}")))
}

fn load_probs(path: &str, graph: &DiGraph) -> Result<EdgeTopicProbs, CliError> {
    let table = probs_io::read_table_file(path)
        .map_err(|e| CliError(format!("reading probabilities {path}: {e}")))?;
    table
        .check_against(graph)
        .map_err(|e| CliError(format!("probability table mismatch: {e}")))?;
    Ok(table)
}

fn load_json<T: serde::de::DeserializeOwned>(path: &str, what: &str) -> Result<T, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("reading {what} {path}: {e}")))?;
    serde_json::from_str(&text).map_err(|e| CliError(format!("parsing {what} {path}: {e}")))
}

fn save_json<T: Serialize>(value: &T, path: &str, what: &str) -> Result<(), CliError> {
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| CliError(format!("serializing {what}: {e}")))?;
    std::fs::write(path, text).map_err(|e| CliError(format!("writing {what} {path}: {e}")))
}

fn cmd_generate(args: &ParsedArgs) -> Result<String, CliError> {
    let name = args.required("dataset")?;
    let scale_str = args.optional("scale").unwrap_or("tiny");
    let scale =
        Scale::parse(scale_str).ok_or_else(|| CliError(format!("bad --scale {scale_str:?}")))?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let dataset = match name {
        "lastfm" => oipa_datasets::lastfm_like(scale, seed),
        "dblp" => oipa_datasets::dblp_like(scale, seed),
        "tweet" => oipa_datasets::tweet_like(scale, seed),
        other => return Err(CliError(format!("unknown dataset {other:?}"))),
    };
    let out_graph = args.required("out-graph")?;
    let out_probs = args.required("out-probs")?;
    graph_io::write_graph_file(&dataset.graph, out_graph)
        .map_err(|e| CliError(format!("writing graph: {e}")))?;
    probs_io::write_table_file(&dataset.table, out_probs)
        .map_err(|e| CliError(format!("writing probabilities: {e}")))?;
    let s = dataset.stats();
    Ok(format!(
        "generated {name} ({scale_str}): {} nodes, {} edges, {} topics -> {out_graph}, {out_probs}",
        s.nodes, s.edges, dataset.topics
    ))
}

fn cmd_import(args: &ParsedArgs) -> Result<String, CliError> {
    let edges_path = args.required("edges")?;
    let graph = oipa_graph::io::read_edge_list_file(edges_path, oipa_graph::DedupPolicy::Simple)
        .map_err(|e| CliError(format!("reading edge list {edges_path}: {e}")))?;
    let out_graph = args.required("out-graph")?;
    graph_io::write_graph_file(&graph, out_graph)
        .map_err(|e| CliError(format!("writing graph: {e}")))?;
    let mut report = format!(
        "imported {} nodes, {} edges -> {out_graph}",
        graph.node_count(),
        graph.edge_count()
    );
    // Optional: synthesize a probability table for graphs without one.
    if let Some(out_probs) = args.optional("out-probs") {
        let topics: usize = args.parsed_or("topics", 10)?;
        let avg_support: f64 = args.parsed_or("avg-support", 1.5)?;
        let max_prob: f32 = args.parsed_or("max-prob", 1.0)?;
        let seed: u64 = args.parsed_or("seed", 42)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let table = oipa_topics::synthesize_random(
            &mut rng,
            &graph,
            oipa_topics::SynthesisParams {
                topic_count: topics,
                avg_support,
                max_prob,
                weighted_cascade: true,
            },
        );
        probs_io::write_table_file(&table, out_probs)
            .map_err(|e| CliError(format!("writing probabilities: {e}")))?;
        write!(report, "; synthesized {topics}-topic table -> {out_probs}").expect("string write");
    }
    Ok(report)
}

fn cmd_stats(args: &ParsedArgs) -> Result<String, CliError> {
    let graph = load_graph(args.required("graph")?)?;
    let s = oipa_graph::stats::graph_stats(&graph);
    let mut out = format!(
        "nodes {}\nedges {}\navg_degree {:.2}\nmax_out_degree {}\nmax_in_degree {}\nisolated {}",
        s.nodes, s.edges, s.avg_degree, s.max_out_degree, s.max_in_degree, s.isolated
    );
    if let Some(alpha) =
        oipa_graph::stats::power_law_exponent_mle(graph.nodes().map(|v| graph.out_degree(v)), 3)
    {
        write!(out, "\nout_degree_power_law_alpha {alpha:.2}").expect("string write");
    }
    if let Some(probs_path) = args.optional("probs") {
        let table = load_probs(probs_path, &graph)?;
        write!(
            out,
            "\ntopics {}\navg_topic_support {:.2}\nmean_nonzero_prob {:.4}",
            table.topic_count(),
            table.avg_support(),
            table.mean_nonzero_prob()
        )
        .expect("string write");
    }
    Ok(out)
}

fn cmd_sample(args: &ParsedArgs) -> Result<String, CliError> {
    let graph = load_graph(args.required("graph")?)?;
    let table = load_probs(args.required("probs")?, &graph)?;
    let ell: usize = args.parsed_or("ell", 3)?;
    let theta: usize = args.parsed_or("theta", 100_000)?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let threads: usize = args.parsed_or(
        "threads",
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    )?;
    if ell == 0 {
        return Err(CliError("--ell must be at least 1".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let campaign = Campaign::sample_one_hot(&mut rng, table.topic_count(), ell);
    let start = std::time::Instant::now();
    let pool = MrrPool::generate_parallel(&graph, &table, &campaign, theta, seed, threads);
    let sample_time = start.elapsed();
    let out_pool = args.required("out-pool")?;
    pool_io::write_pool_file(&pool, out_pool)
        .map_err(|e| CliError(format!("writing pool: {e}")))?;
    let out_campaign = args.required("out-campaign")?;
    save_json(&campaign, out_campaign, "campaign")?;
    Ok(format!(
        "sampled θ={theta} MRR sets for ℓ={ell} pieces in {:.2}s ({} total RR entries) -> {out_pool}, {out_campaign}",
        sample_time.as_secs_f64(),
        pool.total_nodes()
    ))
}

/// JSON report emitted by `solve`.
#[derive(Debug, Serialize)]
struct SolveReport {
    method: String,
    k: usize,
    utility: f64,
    upper_bound: Option<f64>,
    plan: oipa_core::AssignmentPlan,
    seconds: f64,
}

fn cmd_solve(args: &ParsedArgs) -> Result<String, CliError> {
    let pool = pool_io::read_pool_file(args.required("pool")?)
        .map_err(|e| CliError(format!("reading pool: {e}")))?;
    let method = args.optional("method").unwrap_or("bab-p");
    let k: usize = args.parsed_or("k", 10)?;
    let ratio: f64 = args.parsed_or("ratio", 0.5)?;
    let eps: f64 = args.parsed_or("eps", 0.5)?;
    let fraction: f64 = args.parsed_or("promoter-fraction", 0.1)?;
    let max_nodes: usize = args.parsed_or("max-nodes", 64)?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    if !(0.0..=1.0).contains(&fraction) || fraction <= 0.0 {
        return Err(CliError("--promoter-fraction must be in (0, 1]".into()));
    }
    let model = LogisticAdoption::from_ratio(ratio);
    let mut rng = StdRng::seed_from_u64(seed);
    let promoters = OipaInstance::sample_promoters(&mut rng, pool.node_count(), fraction);
    let start = std::time::Instant::now();
    let (plan, utility, upper) = match method {
        "bab" | "plain" | "bab-p" => {
            let instance = OipaInstance::new(&pool, model, promoters, k);
            let config = match method {
                "bab" => BabConfig {
                    max_nodes: Some(max_nodes),
                    ..BabConfig::bab()
                },
                "plain" => BabConfig {
                    max_nodes: Some(max_nodes),
                    method: oipa_core::BoundMethod::PlainGreedy,
                    ..BabConfig::bab()
                },
                _ => BabConfig {
                    max_nodes: Some(max_nodes),
                    ..BabConfig::bab_p(eps)
                },
            };
            let sol = BranchAndBound::new(&instance, config).solve();
            (sol.plan, sol.utility, Some(sol.upper_bound))
        }
        "greedy" => {
            // The tractable-relaxation heuristic (§VII).
            let (plan, utility) =
                oipa_core::relaxed::envelope_heuristic(&pool, model, &promoters, k);
            (plan, utility, None)
        }
        "tim" => {
            let mut est = AuEstimator::new(&pool, model);
            let r = tim_baseline(&pool, &mut est, &promoters, k);
            (r.plan, r.utility, None)
        }
        "im" => {
            // The topic-oblivious baseline needs the graph to build its
            // collapsed-probability RR pool.
            let graph = load_graph(args.required("graph")?)?;
            let table = load_probs(args.required("probs")?, &graph)?;
            let theta: usize = args.parsed_or("theta", pool.theta())?;
            let (plan, utility) =
                im_end_to_end(&graph, &table, &pool, model, &promoters, k, theta, seed);
            (plan, utility, None)
        }
        other => return Err(CliError(format!("unknown method {other:?}"))),
    };
    let seconds = start.elapsed().as_secs_f64();
    let report = SolveReport {
        method: method.to_string(),
        k,
        utility,
        upper_bound: upper,
        plan,
        seconds,
    };
    if let Some(out) = args.optional("out-plan") {
        save_json(&report, out, "plan")?;
    }
    serde_json::to_string_pretty(&report).map_err(|e| CliError(format!("report: {e}")))
}

fn cmd_simulate(args: &ParsedArgs) -> Result<String, CliError> {
    let graph = load_graph(args.required("graph")?)?;
    let table = load_probs(args.required("probs")?, &graph)?;
    let campaign: Campaign = load_json(args.required("campaign")?, "campaign")?;
    // Accept either a bare plan or a solve report containing one.
    let plan: oipa_core::AssignmentPlan = {
        let path = args.required("plan")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("reading plan {path}: {e}")))?;
        if let Ok(report) = serde_json::from_str::<serde_json::Value>(&text) {
            if let Some(inner) = report.get("plan") {
                serde_json::from_value(inner.clone())
                    .map_err(|e| CliError(format!("parsing plan: {e}")))?
            } else {
                serde_json::from_str(&text).map_err(|e| CliError(format!("parsing plan: {e}")))?
            }
        } else {
            return Err(CliError("plan file is not JSON".into()));
        }
    };
    if plan.ell() != campaign.len() {
        return Err(CliError(format!(
            "plan has {} pieces but campaign has {}",
            plan.ell(),
            campaign.len()
        )));
    }
    let ratio: f64 = args.parsed_or("ratio", 0.5)?;
    let runs: usize = args.parsed_or("runs", 500)?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let model = LogisticAdoption::from_ratio(ratio);
    let utility = simulate::simulate_adoption(
        &mut StdRng::seed_from_u64(seed),
        &graph,
        &table,
        &campaign,
        &plan.to_vecs(),
        model,
        runs,
    );
    Ok(format!(
        "simulated adoption utility over {runs} runs: {utility:.3} users"
    ))
}

/// Runs the IM baseline end to end (needs graph + pool).
#[allow(clippy::too_many_arguments)]
fn im_end_to_end(
    graph: &DiGraph,
    table: &EdgeTopicProbs,
    pool: &MrrPool,
    model: LogisticAdoption,
    promoters: &[u32],
    k: usize,
    theta: usize,
    seed: u64,
) -> (oipa_core::AssignmentPlan, f64) {
    let flat = collapsed_pool(graph, table, theta, seed);
    let mut est = AuEstimator::new(pool, model);
    let r = im_baseline(&flat, pool, &mut est, promoters, k);
    (r.plan, r.utility)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_words(words: &[&str]) -> Result<String, CliError> {
        let parsed =
            ParsedArgs::parse(words.iter().map(|s| s.to_string()).collect()).expect("parseable");
        run(&parsed)
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("oipa-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn full_pipeline_via_files() {
        let g = tmp("pipe.graph");
        let p = tmp("pipe.probs");
        let pool = tmp("pipe.pool");
        let campaign = tmp("pipe.campaign.json");
        let plan = tmp("pipe.plan.json");

        let report = run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        assert!(report.contains("generated lastfm"));

        let report = run_words(&["stats", "--graph", &g, "--probs", &p]).unwrap();
        assert!(report.contains("topics 20"));

        let report = run_words(&[
            "sample",
            "--graph",
            &g,
            "--probs",
            &p,
            "--ell",
            "2",
            "--theta",
            "8000",
            "--seed",
            "7",
            "--threads",
            "2",
            "--out-pool",
            &pool,
            "--out-campaign",
            &campaign,
        ])
        .unwrap();
        assert!(report.contains("θ=8000"));

        let report = run_words(&[
            "solve",
            "--pool",
            &pool,
            "--method",
            "bab-p",
            "--k",
            "4",
            "--ratio",
            "0.5",
            "--max-nodes",
            "4",
            "--seed",
            "7",
            "--out-plan",
            &plan,
        ])
        .unwrap();
        assert!(report.contains("\"utility\""));

        let report = run_words(&[
            "simulate",
            "--graph",
            &g,
            "--probs",
            &p,
            "--campaign",
            &campaign,
            "--plan",
            &plan,
            "--ratio",
            "0.5",
            "--runs",
            "100",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(report.contains("simulated adoption utility"));
    }

    #[test]
    fn import_with_synthesized_probs() {
        let edges = tmp("imp.edges");
        std::fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        let g = tmp("imp.graph");
        let p = tmp("imp.probs");
        let report = run_words(&[
            "import",
            "--edges",
            &edges,
            "--out-graph",
            &g,
            "--out-probs",
            &p,
            "--topics",
            "4",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(report.contains("imported 3 nodes, 3 edges"));
        let stats = run_words(&["stats", "--graph", &g, "--probs", &p]).unwrap();
        assert!(stats.contains("topics 4"));
    }

    #[test]
    fn solve_greedy_and_tim_methods() {
        let g = tmp("m.graph");
        let p = tmp("m.probs");
        let pool = tmp("m.pool");
        let campaign = tmp("m.campaign.json");
        run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "8",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        run_words(&[
            "sample",
            "--graph",
            &g,
            "--probs",
            &p,
            "--ell",
            "2",
            "--theta",
            "4000",
            "--seed",
            "8",
            "--out-pool",
            &pool,
            "--out-campaign",
            &campaign,
        ])
        .unwrap();
        for method in ["greedy", "tim", "bab", "plain"] {
            let report = run_words(&[
                "solve",
                "--pool",
                &pool,
                "--method",
                method,
                "--k",
                "3",
                "--max-nodes",
                "2",
            ])
            .unwrap();
            assert!(report.contains("\"utility\""), "{method}: {report}");
        }
        // IM additionally needs the graph and table for its collapsed pool.
        let report = run_words(&[
            "solve", "--pool", &pool, "--method", "im", "--k", "3", "--graph", &g, "--probs", &p,
            "--theta", "4000",
        ])
        .unwrap();
        assert!(report.contains("\"utility\""), "im: {report}");
    }

    #[test]
    fn bench_solver_smoke() {
        let out = tmp("bench_solver.json");
        let report = run_words(&["bench", "solver", "--smoke", "true", "--out", &out]).unwrap();
        assert!(report.contains("bab-celf"), "{report}");
        assert!(report.contains("speedup"), "{report}");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("oipa.bench.solver/v1"));
        // Unknown suites are rejected with the available list.
        let err = run_words(&["bench", "nope"]).unwrap_err();
        assert!(err.0.contains("available: solver"));
    }

    #[test]
    fn helpful_errors() {
        assert!(run_words(&["stats"]).unwrap_err().0.contains("--graph"));
        assert!(run_words(&["solve", "--pool", "/nonexistent.pool"])
            .unwrap_err()
            .0
            .contains("reading pool"));
        let p = ParsedArgs::parse(vec!["solve".into(), "--method".into(), "magic".into()]);
        assert!(p.is_ok()); // parse ok, run fails
    }

    #[test]
    fn plan_campaign_mismatch_detected() {
        let g = tmp("mm.graph");
        let p = tmp("mm.probs");
        run_words(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "tiny",
            "--seed",
            "9",
            "--out-graph",
            &g,
            "--out-probs",
            &p,
        ])
        .unwrap();
        let campaign = tmp("mm.campaign.json");
        let plan = tmp("mm.plan.json");
        // 3-piece campaign, 2-piece plan.
        let mut rng = StdRng::seed_from_u64(1);
        save_json(
            &Campaign::sample_one_hot(&mut rng, 20, 3),
            &campaign,
            "campaign",
        )
        .unwrap();
        save_json(&oipa_core::AssignmentPlan::empty(2), &plan, "plan").unwrap();
        let err = run_words(&[
            "simulate",
            "--graph",
            &g,
            "--probs",
            &p,
            "--campaign",
            &campaign,
            "--plan",
            &plan,
        ])
        .unwrap_err();
        assert!(err.0.contains("pieces"));
    }
}
